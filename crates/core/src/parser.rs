//! Recursive-descent parser for SQL + A-SQL.
//!
//! Parse errors carry a byte [`Span`] into the statement text whenever
//! the offending token is known.  The parser also accepts the
//! prepared-statement parameter placeholders `?` (positional, numbered
//! left to right) and `$n` (explicit 1-based slot); [`parse_prepared`]
//! reports how many parameter slots a statement declares.

use bdbms_common::{BdbmsError, DataType, Result, Span, Value};

use crate::ast::*;
use crate::lexer::{lex_spanned, Spanned, Token};

/// Parse one statement (trailing `;` allowed).
pub fn parse(input: &str) -> Result<Statement> {
    Ok(parse_prepared(input)?.0)
}

/// Parse one statement, additionally returning the number of parameter
/// slots (`?` / `$n` placeholders) it declares.  `$n` placeholders
/// reserve slots `0..n`, so `$3` alone means three parameters.
pub fn parse_prepared(input: &str) -> Result<(Statement, usize)> {
    let tokens = lex_spanned(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end: input.len(),
        param_slots: 0,
    };
    let stmt = p.statement()?;
    p.accept_sym(";");
    if p.pos != p.tokens.len() {
        let t = &p.tokens[p.pos];
        return Err(BdbmsError::syntax(format!(
            "unexpected trailing tokens starting at {:?}",
            t.tok
        ))
        .with_span(t.span));
    }
    Ok((stmt, p.param_slots))
}

/// Keywords that terminate a table alias position.
const CLAUSE_KEYWORDS: &[&str] = &[
    "WHERE",
    "AWHERE",
    "GROUP",
    "HAVING",
    "AHAVING",
    "FILTER",
    "ORDER",
    "INTERSECT",
    "UNION",
    "EXCEPT",
    "ON",
    "SET",
    "VALUES",
    "ANNOTATION",
    "JOIN",
    "AND",
    "BETWEEN",
    "LIMIT",
];

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Byte length of the input (end-of-input error span).
    end: usize,
    /// Total parameter slots declared so far.  A positional `?` claims
    /// the next slot *after* everything declared before it (SQLite's
    /// rule), so `?` never silently aliases an explicit `$n`.
    param_slots: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    /// Span of the token at `pos` (or a zero-width end-of-input span).
    fn span_here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|s| s.span)
            .unwrap_or_else(|| Span::new(self.end, self.end))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, what: &str) -> BdbmsError {
        let e = match self.peek() {
            Some(t) => BdbmsError::syntax(format!("expected {what}, found {t:?}")),
            None => BdbmsError::syntax(format!("expected {what}, found end of input")),
        };
        e.with_span(self.span_here())
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(&format!("keyword {kw}")))
        }
    }

    fn accept_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.accept_sym(s) {
            Ok(())
        } else {
            Err(self.err_here(&format!("`{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("identifier"))
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("string literal"))
            }
        }
    }

    fn uint(&mut self) -> Result<u64> {
        match self.bump() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as u64),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("non-negative integer"))
            }
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement> {
        let t = self.peek().ok_or_else(|| self.err_here("statement"))?;
        match t {
            t if t.is_kw("CREATE") => self.create_stmt(),
            t if t.is_kw("DROP") => self.drop_stmt(),
            t if t.is_kw("ADD") => self.add_annotation(),
            t if t.is_kw("ARCHIVE") => self.archive_restore(true),
            t if t.is_kw("RESTORE") => self.archive_restore(false),
            t if t.is_kw("SELECT") => Ok(Statement::Select(self.select()?)),
            t if t.is_kw("INSERT") => self.insert(),
            t if t.is_kw("UPDATE") => self.update(),
            t if t.is_kw("DELETE") => self.delete(),
            t if t.is_kw("GRANT") => self.grant(true),
            t if t.is_kw("REVOKE") => self.grant(false),
            t if t.is_kw("START") => self.start_approval(),
            t if t.is_kw("STOP") => self.stop_approval(),
            t if t.is_kw("APPROVE") => {
                self.bump();
                self.expect_kw("OPERATION")?;
                Ok(Statement::ApproveOperation { id: self.uint()? })
            }
            t if t.is_kw("DISAPPROVE") => {
                self.bump();
                self.expect_kw("OPERATION")?;
                Ok(Statement::DisapproveOperation { id: self.uint()? })
            }
            t if t.is_kw("SHOW") => self.show(),
            t if t.is_kw("EXPLAIN") => {
                self.bump();
                let analyze = self.accept_kw("ANALYZE");
                let stmt = Box::new(self.statement()?);
                Ok(Statement::Explain { analyze, stmt })
            }
            t if t.is_kw("CHECK") => {
                self.bump();
                self.accept_kw("TABLE");
                let table = match self.peek() {
                    Some(Token::Ident(_)) => Some(self.ident()?),
                    _ => None,
                };
                Ok(Statement::Check { table })
            }
            t if t.is_kw("ANALYZE") => {
                self.bump();
                Ok(Statement::Analyze {
                    table: self.ident()?,
                })
            }
            t if t.is_kw("VALIDATE") => self.validate(),
            t if t.is_kw("COPY") => self.copy_stmt(),
            t if t.is_kw("BEGIN") => {
                self.bump();
                self.accept_txn_noise();
                Ok(Statement::Begin)
            }
            t if t.is_kw("COMMIT") => {
                self.bump();
                self.accept_txn_noise();
                Ok(Statement::Commit)
            }
            t if t.is_kw("ROLLBACK") => self.rollback(),
            t if t.is_kw("SAVEPOINT") => {
                self.bump();
                Ok(Statement::Savepoint {
                    name: self.ident()?,
                })
            }
            t if t.is_kw("RELEASE") => {
                self.bump();
                self.accept_kw("SAVEPOINT");
                Ok(Statement::Release {
                    name: self.ident()?,
                })
            }
            _ => Err(self.err_here("statement keyword")),
        }
    }

    /// The optional `TRANSACTION` / `WORK` noise word after
    /// `BEGIN` / `COMMIT` / `ROLLBACK`.
    fn accept_txn_noise(&mut self) {
        let _ = self.accept_kw("TRANSACTION") || self.accept_kw("WORK");
    }

    /// `ROLLBACK [TRANSACTION | WORK] [TO [SAVEPOINT] name]`.
    fn rollback(&mut self) -> Result<Statement> {
        self.expect_kw("ROLLBACK")?;
        self.accept_txn_noise();
        if self.accept_kw("TO") {
            self.accept_kw("SAVEPOINT");
            return Ok(Statement::RollbackTo {
                name: self.ident()?,
            });
        }
        Ok(Statement::Rollback)
    }

    fn create_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.accept_kw("TABLE") {
            let name = self.ident()?;
            self.expect_sym("(")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = DataType::parse(&self.ident()?)?;
                columns.push((col, ty));
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.accept_kw("ANNOTATION") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let on = self.ident()?;
            let mut cell_scheme = false;
            if self.accept_kw("SCHEME") {
                let scheme = self.ident()?;
                cell_scheme = match scheme.to_ascii_uppercase().as_str() {
                    "CELL" => true,
                    "RECTANGLE" | "RECT" => false,
                    other => {
                        return Err(BdbmsError::syntax(format!(
                            "unknown annotation scheme `{other}`"
                        )))
                    }
                };
            }
            return Ok(Statement::CreateAnnotationTable {
                name,
                on,
                cell_scheme,
            });
        }
        if self.accept_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym("(")?;
            let column = self.ident()?;
            self.expect_sym(")")?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
            });
        }
        if self.accept_kw("SEQUENCE") {
            self.expect_kw("INDEX")?;
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect_sym("(")?;
            let column = self.ident()?;
            self.expect_sym(")")?;
            let kind = if self.accept_kw("USING") {
                let k = self.ident()?;
                match k.to_ascii_uppercase().as_str() {
                    "SBC" => SeqIndexKind::Sbc,
                    "SUFFIX" => SeqIndexKind::Suffix,
                    other => {
                        return Err(BdbmsError::syntax(format!(
                            "unknown sequence index kind `{other}` (SBC or SUFFIX)"
                        )))
                    }
                }
            } else {
                SeqIndexKind::Sbc
            };
            return Ok(Statement::CreateSequenceIndex {
                name,
                table,
                column,
                kind,
            });
        }
        if self.accept_kw("USER") {
            let name = self.ident()?;
            let mut groups = Vec::new();
            if self.accept_kw("IN") {
                self.expect_kw("GROUP")?;
                loop {
                    groups.push(self.ident()?);
                    if !self.accept_sym(",") {
                        break;
                    }
                }
            }
            return Ok(Statement::CreateUser { name, groups });
        }
        if self.accept_kw("DEPENDENCY") {
            self.expect_kw("RULE")?;
            let name = self.ident()?;
            self.expect_kw("FROM")?;
            let mut from = Vec::new();
            loop {
                from.push(self.qualified()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_kw("TO")?;
            let to = self.qualified()?;
            self.expect_kw("VIA")?;
            self.expect_kw("PROCEDURE")?;
            let procedure = self.string()?;
            let mut executable = false;
            let mut invertible = false;
            loop {
                if self.accept_kw("EXECUTABLE") {
                    executable = true;
                } else if self.accept_kw("INVERTIBLE") {
                    invertible = true;
                } else {
                    break;
                }
            }
            let link = if self.accept_kw("LINK") {
                let a = self.qualified()?;
                self.expect_sym("=")?;
                let b = self.qualified()?;
                Some((format!("{}.{}", a.0, a.1), format!("{}.{}", b.0, b.1)))
            } else {
                None
            };
            return Ok(Statement::CreateDependencyRule {
                name,
                from: from.into_iter().collect(),
                to,
                procedure,
                executable,
                invertible,
                link,
            });
        }
        Err(self
            .err_here("TABLE, INDEX, SEQUENCE INDEX, ANNOTATION TABLE, USER, or DEPENDENCY RULE"))
    }

    /// `COPY table FROM 'path' [FORMAT FASTA|TSV]`.
    fn copy_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("COPY")?;
        let table = self.ident()?;
        self.expect_kw("FROM")?;
        let path = self.string()?;
        let format = if self.accept_kw("FORMAT") {
            let f = self.ident()?;
            Some(match f.to_ascii_uppercase().as_str() {
                "FASTA" => CopyFormat::Fasta,
                "TSV" => CopyFormat::Tsv,
                other => {
                    return Err(BdbmsError::syntax(format!(
                        "unknown COPY format `{other}` (FASTA or TSV)"
                    )))
                }
            })
        } else {
            None
        };
        Ok(Statement::Copy {
            table,
            path,
            format,
        })
    }

    /// `table.column` (both parts required here).
    fn qualified(&mut self) -> Result<(String, String)> {
        let a = self.ident()?;
        self.expect_sym(".")?;
        let b = self.ident()?;
        Ok((a, b))
    }

    fn drop_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        if self.accept_kw("TABLE") {
            return Ok(Statement::DropTable {
                name: self.ident()?,
            });
        }
        if self.accept_kw("ANNOTATION") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let on = self.ident()?;
            return Ok(Statement::DropAnnotationTable { name, on });
        }
        if self.accept_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            return Ok(Statement::DropIndex { name, table });
        }
        if self.accept_kw("SEQUENCE") {
            self.expect_kw("INDEX")?;
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            return Ok(Statement::DropSequenceIndex { name, table });
        }
        if self.accept_kw("DEPENDENCY") {
            self.expect_kw("RULE")?;
            return Ok(Statement::DropDependencyRule {
                name: self.ident()?,
            });
        }
        Err(self.err_here("TABLE, INDEX, SEQUENCE INDEX, ANNOTATION TABLE, or DEPENDENCY RULE"))
    }

    /// `t.a` pairs for ADD/ARCHIVE/RESTORE ANNOTATION.
    fn ann_table_list(&mut self) -> Result<Vec<(String, String)>> {
        let mut out = Vec::new();
        loop {
            out.push(self.qualified()?);
            if !self.accept_sym(",") {
                break;
            }
        }
        Ok(out)
    }

    fn add_annotation(&mut self) -> Result<Statement> {
        self.expect_kw("ADD")?;
        self.expect_kw("ANNOTATION")?;
        self.expect_kw("TO")?;
        let to = self.ann_table_list()?;
        self.expect_kw("VALUE")?;
        let value = self.string()?;
        self.expect_kw("ON")?;
        self.expect_sym("(")?;
        let on = match self.peek() {
            Some(t) if t.is_kw("SELECT") => AnnTarget::Select(Box::new(self.select()?)),
            Some(t) if t.is_kw("INSERT") => AnnTarget::Insert(Box::new(self.insert()?)),
            Some(t) if t.is_kw("UPDATE") => AnnTarget::Update(Box::new(self.update()?)),
            Some(t) if t.is_kw("DELETE") => AnnTarget::Delete(Box::new(self.delete()?)),
            _ => return Err(self.err_here("SELECT, INSERT, UPDATE, or DELETE")),
        };
        self.expect_sym(")")?;
        Ok(Statement::AddAnnotation { to, value, on })
    }

    fn archive_restore(&mut self, archive: bool) -> Result<Statement> {
        self.bump(); // ARCHIVE | RESTORE
        self.expect_kw("ANNOTATION")?;
        self.expect_kw("FROM")?;
        let from = self.ann_table_list()?;
        let between = if self.accept_kw("BETWEEN") {
            let a = self.uint()?;
            self.expect_kw("AND")?;
            let b = self.uint()?;
            Some((a, b))
        } else {
            None
        };
        self.expect_kw("ON")?;
        self.expect_sym("(")?;
        let on = self.select()?;
        self.expect_sym(")")?;
        Ok(if archive {
            Statement::ArchiveAnnotation { from, between, on }
        } else {
            Statement::RestoreAnnotation { from, between, on }
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.accept_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.accept_sym(",") {
                break;
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn grant(&mut self, grant: bool) -> Result<Statement> {
        self.bump(); // GRANT | REVOKE
        let mut privileges = Vec::new();
        loop {
            let name = self.ident()?;
            let p = Privilege::parse(&name)
                .ok_or_else(|| BdbmsError::syntax(format!("unknown privilege `{name}`")))?;
            privileges.push(p);
            if !self.accept_sym(",") {
                break;
            }
        }
        self.expect_kw("ON")?;
        let table = self.ident()?;
        if grant {
            self.expect_kw("TO")?;
            Ok(Statement::Grant {
                privileges,
                table,
                to: self.ident()?,
            })
        } else {
            self.expect_kw("FROM")?;
            Ok(Statement::Revoke {
                privileges,
                table,
                from: self.ident()?,
            })
        }
    }

    fn start_approval(&mut self) -> Result<Statement> {
        self.expect_kw("START")?;
        self.expect_kw("CONTENT")?;
        self.expect_kw("APPROVAL")?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.accept_kw("COLUMNS") {
            loop {
                columns.push(self.ident()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        self.expect_kw("APPROVED")?;
        self.expect_kw("BY")?;
        let approved_by = self.ident()?;
        Ok(Statement::StartContentApproval {
            table,
            columns,
            approved_by,
        })
    }

    fn stop_approval(&mut self) -> Result<Statement> {
        self.expect_kw("STOP")?;
        self.expect_kw("CONTENT")?;
        self.expect_kw("APPROVAL")?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.accept_kw("COLUMNS") {
            loop {
                columns.push(self.ident()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        Ok(Statement::StopContentApproval { table, columns })
    }

    fn show(&mut self) -> Result<Statement> {
        self.expect_kw("SHOW")?;
        if self.accept_kw("PENDING") {
            self.expect_kw("OPERATIONS")?;
            let table = if self.accept_kw("ON") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::ShowPending { table });
        }
        if self.accept_kw("OUTDATED") {
            let table = if self.accept_kw("ON") {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::ShowOutdated { table });
        }
        if self.accept_kw("SLOW") {
            self.expect_kw("QUERIES")?;
            return Ok(Statement::ShowSlowQueries);
        }
        Err(self.err_here("PENDING OPERATIONS, OUTDATED, or SLOW QUERIES"))
    }

    fn validate(&mut self) -> Result<Statement> {
        self.expect_kw("VALIDATE")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.accept_kw("COLUMNS") {
            loop {
                columns.push(self.ident()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Validate {
            table,
            columns,
            where_clause,
        })
    }

    // ---- SELECT ----

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        let projection = self.projection()?;
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            from.push(self.table_ref()?);
            if !self.accept_sym(",") {
                break;
            }
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let awhere = if self.accept_kw("AWHERE") {
            Some(self.ann_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.maybe_qualified()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        let having = if self.accept_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let ahaving = if self.accept_kw("AHAVING") {
            Some(self.ann_expr()?)
        } else {
            None
        };
        let filter = if self.accept_kw("FILTER") {
            Some(self.ann_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.maybe_qualified()?;
                let desc = if self.accept_kw("DESC") {
                    true
                } else {
                    self.accept_kw("ASC");
                    false
                };
                order_by.push((col, desc));
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        let mut limit = if self.accept_kw("LIMIT") {
            Some(self.uint()?)
        } else {
            None
        };
        let mut set_op = if self.accept_kw("INTERSECT") {
            Some((SetOp::Intersect, Box::new(self.select()?)))
        } else if self.accept_kw("UNION") {
            Some((SetOp::Union, Box::new(self.select()?)))
        } else if self.accept_kw("EXCEPT") {
            Some((SetOp::Except, Box::new(self.select()?)))
        } else {
            None
        };
        // A trailing ORDER BY / LIMIT after a set operation binds to the
        // whole compound (standard SQL), but right-recursion hands it to
        // the rightmost SELECT — hoist it up.  (Inner ORDER BY is
        // meaningless on set-operation inputs anyway.)
        if let Some((_, right)) = &mut set_op {
            if order_by.is_empty() && !right.order_by.is_empty() {
                order_by = std::mem::take(&mut right.order_by);
            }
            if limit.is_none() && right.limit.is_some() {
                limit = right.limit.take();
            }
        }
        Ok(Select {
            distinct,
            projection,
            from,
            where_clause,
            awhere,
            group_by,
            having,
            ahaving,
            filter,
            order_by,
            limit,
            set_op,
        })
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.accept_sym("*") {
            return Ok(Projection::Star(None));
        }
        // alias.* form
        if let (Some(Token::Ident(a)), Some(Token::Sym(".")), Some(Token::Sym("*"))) = (
            self.tokens.get(self.pos).map(|s| &s.tok),
            self.tokens.get(self.pos + 1).map(|s| &s.tok),
            self.tokens.get(self.pos + 2).map(|s| &s.tok),
        ) {
            let alias = a.clone();
            self.pos += 3;
            return Ok(Projection::Star(Some(alias)));
        }
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let mut promote = Vec::new();
            if self.accept_kw("PROMOTE") {
                self.expect_sym("(")?;
                loop {
                    promote.push(self.maybe_qualified()?);
                    if !self.accept_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            }
            let alias = if self.accept_kw("AS") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(SelectItem {
                expr,
                alias,
                promote,
            });
            if !self.accept_sym(",") {
                break;
            }
        }
        Ok(Projection::Items(items))
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let mut annotations = Vec::new();
        if self.accept_kw("ANNOTATION") {
            self.expect_sym("(")?;
            loop {
                annotations.push(self.ident()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !CLAUSE_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                let a = s.clone();
                self.pos += 1;
                Some(a)
            }
            _ => None,
        };
        Ok(TableRef {
            table,
            alias,
            annotations,
        })
    }

    /// `[alias.]column`.
    fn maybe_qualified(&mut self) -> Result<(Option<String>, String)> {
        let first = self.ident()?;
        if self.accept_sym(".") {
            let second = self.ident()?;
            Ok((Some(first), second))
        } else {
            Ok((None, first))
        }
    }

    // ---- scalar expressions ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary(Box::new(left), BinaryOp::Or, Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary(Box::new(left), BinaryOp::And, Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(left), negated));
        }
        // [NOT] LIKE / [NOT] IN / [NOT] CONTAINS SEQ
        let negated = self.accept_kw("NOT");
        if self.accept_kw("LIKE") {
            let pat = self.string()?;
            return Ok(Expr::Like(Box::new(left), pat, negated));
        }
        if self.accept_kw("CONTAINS") {
            self.expect_kw("SEQ")?;
            let pat = self.string()?;
            return Ok(Expr::ContainsSeq(Box::new(left), pat, negated));
        }
        if self.accept_kw("IN") {
            self.expect_sym("(")?;
            let mut items = Vec::new();
            loop {
                items.push(self.expr()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList(Box::new(left), items, negated));
        }
        if negated {
            return Err(self.err_here("LIKE, IN, or CONTAINS SEQ after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Sym("=")) => Some(BinaryOp::Eq),
            Some(Token::Sym("<>")) => Some(BinaryOp::Ne),
            Some(Token::Sym("<")) => Some(BinaryOp::Lt),
            Some(Token::Sym("<=")) => Some(BinaryOp::Le),
            Some(Token::Sym(">")) => Some(BinaryOp::Gt),
            Some(Token::Sym(">=")) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary(Box::new(left), op, Box::new(right)));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => BinaryOp::Add,
                Some(Token::Sym("-")) => BinaryOp::Sub,
                Some(Token::Sym("||")) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => BinaryOp::Mul,
                Some(Token::Sym("/")) => BinaryOp::Div,
                Some(Token::Sym("%")) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept_sym("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Sym("?")) => {
                // positional placeholder: the next slot after everything
                // declared so far (left to right, past any $n seen)
                let slot = self.param_slots;
                self.param_slots += 1;
                Ok(Expr::Param(slot))
            }
            Some(Token::Param(n)) => {
                if n == 0 {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(BdbmsError::syntax("parameter numbers start at $1")
                        .with_span(self.span_here()));
                }
                self.param_slots = self.param_slots.max(n);
                Ok(Expr::Param(n - 1))
            }
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                // aggregate?
                let agg = match upper.as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(agg) = agg {
                    if self.accept_sym("(") {
                        if self.accept_sym("*") {
                            self.expect_sym(")")?;
                            return Ok(Expr::Aggregate(agg, None));
                        }
                        let inner = self.expr()?;
                        self.expect_sym(")")?;
                        return Ok(Expr::Aggregate(agg, Some(Box::new(inner))));
                    }
                    // not a call: fall through to column reference
                }
                // scalar function call?
                if self.accept_sym("(") {
                    let mut args = Vec::new();
                    if !self.accept_sym(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.accept_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                    }
                    return Ok(Expr::Call(upper, args));
                }
                // qualified column?
                if self.accept_sym(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column(Some(name), col));
                }
                Ok(Expr::Column(None, name))
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(
                    BdbmsError::syntax(format!("expected expression, found {other:?}"))
                        .with_span(self.span_here()),
                )
            }
        }
    }

    // ---- annotation expressions (AWHERE / AHAVING / FILTER) ----

    fn ann_expr(&mut self) -> Result<AnnExpr> {
        self.ann_or()
    }

    fn ann_or(&mut self) -> Result<AnnExpr> {
        let mut left = self.ann_and()?;
        while self.accept_kw("OR") {
            let right = self.ann_and()?;
            left = AnnExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn ann_and(&mut self) -> Result<AnnExpr> {
        let mut left = self.ann_not()?;
        while self.accept_kw("AND") {
            let right = self.ann_not()?;
            left = AnnExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn ann_not(&mut self) -> Result<AnnExpr> {
        if self.accept_kw("NOT") {
            let inner = self.ann_not()?;
            return Ok(AnnExpr::Not(Box::new(inner)));
        }
        self.ann_primary()
    }

    fn ann_primary(&mut self) -> Result<AnnExpr> {
        if self.accept_sym("(") {
            let e = self.ann_expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        if self.accept_kw("CONTAINS") {
            return Ok(AnnExpr::Contains(self.string()?));
        }
        if self.accept_kw("FROM") {
            return Ok(AnnExpr::FromTable(self.ident()?));
        }
        if self.accept_kw("PATH") {
            let path = self.string()?;
            self.expect_sym("=")?;
            let value = self.string()?;
            return Ok(AnnExpr::PathEq(path, value));
        }
        if self.accept_kw("BEFORE") {
            return Ok(AnnExpr::Before(self.uint()?));
        }
        if self.accept_kw("AFTER") {
            return Ok(AnnExpr::After(self.uint()?));
        }
        Err(self.err_here("CONTAINS, FROM, PATH, BEFORE, AFTER, NOT, or `(`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE DB1_Gene (GID TEXT, GName TEXT, GSequence TEXT)").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "DB1_Gene");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2], ("GSequence".to_string(), DataType::Text));
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn create_and_drop_index() {
        assert_eq!(
            parse("CREATE INDEX gid_idx ON Gene (GID)").unwrap(),
            Statement::CreateIndex {
                name: "gid_idx".into(),
                table: "Gene".into(),
                column: "GID".into(),
            }
        );
        assert_eq!(
            parse("DROP INDEX gid_idx ON Gene").unwrap(),
            Statement::DropIndex {
                name: "gid_idx".into(),
                table: "Gene".into(),
            }
        );
        assert!(
            parse("CREATE INDEX i ON t").is_err(),
            "column list required"
        );
        assert!(parse("DROP INDEX i").is_err(), "table required");
    }

    #[test]
    fn create_annotation_table_fig4() {
        let s = parse("CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene").unwrap();
        assert_eq!(
            s,
            Statement::CreateAnnotationTable {
                name: "GAnnotation".into(),
                on: "DB2_Gene".into(),
                cell_scheme: false,
            }
        );
        let s = parse("CREATE ANNOTATION TABLE A ON T SCHEME CELL").unwrap();
        assert!(matches!(
            s,
            Statement::CreateAnnotationTable {
                cell_scheme: true,
                ..
            }
        ));
        let s = parse("DROP ANNOTATION TABLE GAnnotation ON DB2_Gene").unwrap();
        assert!(matches!(s, Statement::DropAnnotationTable { .. }));
    }

    #[test]
    fn add_annotation_column_granularity_paper_example() {
        // verbatim from §3.2 (column-level annotation B3)
        let s = parse(
            "ADD ANNOTATION TO DB2_Gene.GAnnotation \
             VALUE '<Annotation>obtained from GenoBase</Annotation>' \
             ON (Select G.GSequence From DB2_Gene G)",
        )
        .unwrap();
        match s {
            Statement::AddAnnotation { to, value, on } => {
                assert_eq!(
                    to,
                    vec![("DB2_Gene".to_string(), "GAnnotation".to_string())]
                );
                assert!(value.contains("GenoBase"));
                match on {
                    AnnTarget::Select(sel) => {
                        assert_eq!(sel.from[0].alias.as_deref(), Some("G"));
                    }
                    _ => panic!("expected SELECT target"),
                }
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn add_annotation_tuple_granularity_paper_example() {
        // verbatim from §3.2 (tuple-level annotation B5)
        let s = parse(
            "ADD ANNOTATION TO DB2_Gene.GAnnotation \
             VALUE '<Annotation>This gene has an unknown function</Annotation>' \
             ON (Select G.* From DB2_Gene G WHERE GID = 'JW0080')",
        )
        .unwrap();
        match s {
            Statement::AddAnnotation {
                on: AnnTarget::Select(sel),
                ..
            } => {
                assert!(matches!(sel.projection, Projection::Star(Some(_))));
                assert!(sel.where_clause.is_some());
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn archive_with_time_window_fig6() {
        let s = parse(
            "ARCHIVE ANNOTATION FROM T.Comments BETWEEN 5 AND 10 \
             ON (SELECT GID FROM T)",
        )
        .unwrap();
        match s {
            Statement::ArchiveAnnotation { from, between, .. } => {
                assert_eq!(from.len(), 1);
                assert_eq!(between, Some((5, 10)));
            }
            _ => panic!("wrong statement"),
        }
        assert!(matches!(
            parse("RESTORE ANNOTATION FROM T.C ON (SELECT GID FROM T)").unwrap(),
            Statement::RestoreAnnotation { between: None, .. }
        ));
    }

    #[test]
    fn asql_select_fig7_full_form() {
        let s = parse(
            "SELECT DISTINCT GID PROMOTE (GSequence, GName), GName \
             FROM DB1_Gene ANNOTATION(Prov, Comments) G, DB2_Gene H \
             WHERE G.GID = H.GID \
             AWHERE CONTAINS 'RegulonDB' \
             GROUP BY GID \
             HAVING COUNT(*) > 1 \
             AHAVING FROM Prov \
             FILTER NOT CONTAINS 'obsolete' \
             ORDER BY GID DESC",
        )
        .unwrap();
        let sel = match s {
            Statement::Select(sel) => sel,
            _ => panic!("wrong statement"),
        };
        assert!(sel.distinct);
        match &sel.projection {
            Projection::Items(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].promote.len(), 2);
            }
            _ => panic!("expected items"),
        }
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].annotations, vec!["Prov", "Comments"]);
        assert_eq!(sel.from[0].alias.as_deref(), Some("G"));
        assert!(sel.awhere.is_some());
        assert!(sel.having.is_some());
        assert!(matches!(sel.ahaving, Some(AnnExpr::FromTable(_))));
        assert!(matches!(sel.filter, Some(AnnExpr::Not(_))));
        assert_eq!(sel.order_by.len(), 1);
        assert!(sel.order_by[0].1);
    }

    #[test]
    fn intersect_paper_step_a() {
        let s = parse(
            "SELECT GID, GName, GSequence FROM DB1_Gene \
             INTERSECT \
             SELECT GID, GName, GSequence FROM DB2_Gene",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(sel.set_op, Some((SetOp::Intersect, _))));
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn dml_statements() {
        assert!(matches!(
            parse("INSERT INTO T VALUES ('a', 1), ('b', 2)").unwrap(),
            Statement::Insert { rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse("UPDATE Gene SET GSequence = 'ATG' WHERE GID = 'JW0080'").unwrap(),
            Statement::Update { sets, .. } if sets.len() == 1
        ));
        assert!(matches!(
            parse("DELETE FROM Gene WHERE GID = 'JW0080'").unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn approval_fig11() {
        let s =
            parse("START CONTENT APPROVAL ON Gene COLUMNS GSequence APPROVED BY labadmin").unwrap();
        assert_eq!(
            s,
            Statement::StartContentApproval {
                table: "Gene".into(),
                columns: vec!["GSequence".into()],
                approved_by: "labadmin".into(),
            }
        );
        assert!(matches!(
            parse("STOP CONTENT APPROVAL ON Gene").unwrap(),
            Statement::StopContentApproval { .. }
        ));
        assert!(matches!(
            parse("APPROVE OPERATION 7").unwrap(),
            Statement::ApproveOperation { id: 7 }
        ));
        assert!(matches!(
            parse("DISAPPROVE OPERATION 9").unwrap(),
            Statement::DisapproveOperation { id: 9 }
        ));
        assert!(matches!(
            parse("SHOW PENDING OPERATIONS ON Gene").unwrap(),
            Statement::ShowPending { table: Some(_) }
        ));
    }

    #[test]
    fn dependency_rule_paper_rule1() {
        let s = parse(
            "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
             VIA PROCEDURE 'P' EXECUTABLE LINK Gene.GID = Protein.GID",
        )
        .unwrap();
        match s {
            Statement::CreateDependencyRule {
                name,
                from,
                to,
                procedure,
                executable,
                invertible,
                link,
            } => {
                assert_eq!(name, "r1");
                assert_eq!(from, vec![("Gene".to_string(), "GSequence".to_string())]);
                assert_eq!(to, ("Protein".to_string(), "PSequence".to_string()));
                assert_eq!(procedure, "P");
                assert!(executable);
                assert!(!invertible);
                assert_eq!(
                    link,
                    Some(("Gene.GID".to_string(), "Protein.GID".to_string()))
                );
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn dependency_rule_multi_source_rule3() {
        // Rule 3: GeneMatching.Gene1, Gene2 -> Evalue via BLAST-2.2.15
        let s = parse(
            "CREATE DEPENDENCY RULE r3 FROM GeneMatching.Gene1, GeneMatching.Gene2 \
             TO GeneMatching.Evalue VIA PROCEDURE 'BLAST-2.2.15' EXECUTABLE",
        )
        .unwrap();
        match s {
            Statement::CreateDependencyRule { from, link, .. } => {
                assert_eq!(from.len(), 2);
                assert_eq!(link, None);
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn grant_revoke_users() {
        assert!(matches!(
            parse("CREATE USER alice IN GROUP lab1").unwrap(),
            Statement::CreateUser { groups, .. } if groups == vec!["lab1".to_string()]
        ));
        match parse("GRANT SELECT, UPDATE ON Gene TO alice").unwrap() {
            Statement::Grant { privileges, .. } => {
                assert_eq!(privileges, vec![Privilege::Select, Privilege::Update]);
            }
            _ => panic!("wrong statement"),
        }
        assert!(matches!(
            parse("REVOKE UPDATE ON Gene FROM alice").unwrap(),
            Statement::Revoke { .. }
        ));
    }

    #[test]
    fn expressions() {
        let s =
            parse("SELECT * FROM T WHERE NOT (a + 1 >= 2 * b) AND c LIKE 'JW%' OR d IS NOT NULL")
                .unwrap();
        assert!(matches!(s, Statement::Select(_)));
        let s = parse("SELECT LENGTH(GSequence), COUNT(*) FROM G GROUP BY GID").unwrap();
        assert!(matches!(s, Statement::Select(_)));
        let s = parse("SELECT * FROM T WHERE x IN (1, 2, 3) AND y NOT IN (4)").unwrap();
        assert!(matches!(s, Statement::Select(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("CREATE TABLE t").is_err());
        assert!(parse("FROB THE DATABASE").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("GRANT FLY ON t TO u").is_err());
        assert!(parse("SELECT * FROM t; extra").is_err());
    }

    #[test]
    fn parameter_placeholders_count_slots() {
        let (_, n) = parse_prepared("SELECT * FROM t WHERE a = ? AND b = ?").unwrap();
        assert_eq!(n, 2);
        // numbered slots may repeat and appear in any order
        let (_, n) = parse_prepared("UPDATE t SET a = $2 WHERE b = $1 AND c = $1").unwrap();
        assert_eq!(n, 2);
        // $3 alone reserves slots 1..3
        let (_, n) = parse_prepared("SELECT * FROM t WHERE a = $3").unwrap();
        assert_eq!(n, 3);
        // mixing: a later `?` claims the slot after the largest declared
        let (stmt, n) = parse_prepared("SELECT * FROM t WHERE a = $1 AND b = ?").unwrap();
        assert_eq!(n, 2);
        match stmt {
            Statement::Select(sel) => {
                let w = sel.where_clause.unwrap();
                match w {
                    Expr::Binary(l, BinaryOp::And, r) => {
                        assert!(matches!(&*l, Expr::Binary(_, _, b) if **b == Expr::Param(0)));
                        assert!(matches!(&*r, Expr::Binary(_, _, b) if **b == Expr::Param(1)));
                    }
                    _ => panic!("expected AND"),
                }
            }
            _ => panic!("wrong statement"),
        }
        let (stmt, n) = parse_prepared("INSERT INTO t VALUES (?, ?, 3)").unwrap();
        assert_eq!(n, 2);
        match stmt {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Expr::Param(0));
                assert_eq!(rows[0][1], Expr::Param(1));
            }
            _ => panic!("wrong statement"),
        }
        assert!(
            parse("SELECT * FROM t WHERE a = $0").is_err(),
            "slots are 1-based"
        );
    }

    #[test]
    fn parse_errors_carry_spans() {
        let sql = "SELECT GID FRM Gene";
        let err = parse(sql).unwrap_err();
        let span = err.span.expect("span on parse error");
        assert_eq!(&sql[span.start..span.end], "FRM");
        // a truncated statement still points somewhere useful
        let err = parse("SELECT * FROM t WHERE").unwrap_err();
        assert!(err.span.is_some());
    }

    #[test]
    fn transaction_control_statements() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("begin work;").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("COMMIT WORK").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(parse("ROLLBACK TRANSACTION").unwrap(), Statement::Rollback);
        assert_eq!(
            parse("SAVEPOINT sp1").unwrap(),
            Statement::Savepoint { name: "sp1".into() }
        );
        assert_eq!(
            parse("ROLLBACK TO sp1").unwrap(),
            Statement::RollbackTo { name: "sp1".into() }
        );
        assert_eq!(
            parse("ROLLBACK WORK TO SAVEPOINT sp1").unwrap(),
            Statement::RollbackTo { name: "sp1".into() }
        );
        assert_eq!(
            parse("RELEASE sp1").unwrap(),
            Statement::Release { name: "sp1".into() }
        );
        assert_eq!(
            parse("RELEASE SAVEPOINT sp1").unwrap(),
            Statement::Release { name: "sp1".into() }
        );
        assert!(parse("SAVEPOINT").is_err(), "savepoint needs a name");
        assert!(parse("ROLLBACK TO").is_err(), "rollback-to needs a name");
        assert!(parse("BEGIN extra").is_err(), "trailing tokens rejected");
    }

    #[test]
    fn copy_statement() {
        assert_eq!(
            parse("COPY Gene FROM '/tmp/genes.fasta' FORMAT FASTA").unwrap(),
            Statement::Copy {
                table: "Gene".into(),
                path: "/tmp/genes.fasta".into(),
                format: Some(CopyFormat::Fasta),
            }
        );
        assert_eq!(
            parse("copy gene from 'rows.tsv' format tsv").unwrap(),
            Statement::Copy {
                table: "gene".into(),
                path: "rows.tsv".into(),
                format: Some(CopyFormat::Tsv),
            }
        );
        assert!(matches!(
            parse("COPY Gene FROM 'x.fa'").unwrap(),
            Statement::Copy { format: None, .. }
        ));
        assert!(parse("COPY Gene FROM 'x' FORMAT CSV").is_err());
        assert!(parse("COPY FROM 'x'").is_err(), "table required");
    }

    #[test]
    fn sequence_index_statements() {
        assert_eq!(
            parse("CREATE SEQUENCE INDEX seq_idx ON Gene (GSequence)").unwrap(),
            Statement::CreateSequenceIndex {
                name: "seq_idx".into(),
                table: "Gene".into(),
                column: "GSequence".into(),
                kind: SeqIndexKind::Sbc,
            }
        );
        assert_eq!(
            parse("CREATE SEQUENCE INDEX s ON t (c) USING SUFFIX").unwrap(),
            Statement::CreateSequenceIndex {
                name: "s".into(),
                table: "t".into(),
                column: "c".into(),
                kind: SeqIndexKind::Suffix,
            }
        );
        assert_eq!(
            parse("DROP SEQUENCE INDEX seq_idx ON Gene").unwrap(),
            Statement::DropSequenceIndex {
                name: "seq_idx".into(),
                table: "Gene".into(),
            }
        );
        assert!(parse("CREATE SEQUENCE INDEX s ON t (c) USING HASH").is_err());
        assert!(parse("DROP SEQUENCE INDEX s").is_err(), "table required");
    }

    #[test]
    fn contains_seq_predicate() {
        let s = parse("SELECT * FROM Gene WHERE GSequence CONTAINS SEQ 'ATG'").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(
                    sel.where_clause.unwrap(),
                    Expr::ContainsSeq(
                        Box::new(Expr::Column(None, "GSequence".into())),
                        "ATG".into(),
                        false
                    )
                );
            }
            _ => panic!("wrong statement"),
        }
        let s = parse("SELECT * FROM Gene WHERE GSequence NOT CONTAINS SEQ 'ATG'").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.where_clause.unwrap(),
                    Expr::ContainsSeq(_, _, true)
                ));
            }
            _ => panic!("wrong statement"),
        }
        assert!(
            parse("SELECT * FROM t WHERE c CONTAINS 'x'").is_err(),
            "SEQ required"
        );
    }

    #[test]
    fn validate_and_show_outdated() {
        assert!(matches!(
            parse("VALIDATE Protein COLUMNS PFunction WHERE GID = 'JW0080'").unwrap(),
            Statement::Validate { columns, .. } if columns == vec!["PFunction".to_string()]
        ));
        assert!(matches!(
            parse("SHOW OUTDATED ON Protein").unwrap(),
            Statement::ShowOutdated { table: Some(_) }
        ));
    }
}
