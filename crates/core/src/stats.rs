//! Table and column statistics for the cost-based planner.
//!
//! Every [`crate::catalog::Table`] carries a [`TableStats`]: per column, a
//! count of NULLs, running min/max bounds, and a distinct-value estimate.
//! The stats are maintained *incrementally* on every INSERT / UPDATE /
//! DELETE (they are never absent, so the planner can always cost a
//! probe), and `ANALYZE <table>` rebuilds them exactly from the live
//! rows.
//!
//! Incremental maintenance is deliberately conservative:
//!
//! * min/max only *widen* on insert — deletes never shrink them (the
//!   true range stays inside the recorded one, so range-selectivity
//!   estimates err toward *larger* result sets, never smaller);
//! * the distinct estimator is a KMV (k-minimum-values) sketch, which
//!   supports observation but not retraction — deletes leave it alone,
//!   again overestimating distincts at worst (an overestimated distinct
//!   count *under*estimates equality cost symmetrically for all
//!   candidate indexes, so index choice stays sane);
//! * `ANALYZE` throws both away and recomputes from a scan.
//!
//! Everything here is deterministic: the sketch hashes the canonical
//! [`Value`] encoding with FNV-1a (no per-process hash seeds), so a
//! given insert history always produces the same estimates — the planner
//! tests pin plan decisions on that.

use std::collections::BTreeSet;

use bdbms_common::Value;

/// Sketch size: the `k` of the k-minimum-values estimator.  256 keeps
/// the estimate within a few percent, which is far more precision than
/// index choice needs.
const SKETCH_K: usize = 256;

/// FNV-1a over the canonical value encoding (deterministic across runs,
/// unlike `std`'s seeded SipHash).
fn hash_value(v: &Value) -> u64 {
    let mut buf = Vec::with_capacity(16);
    v.encode(&mut buf);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in buf {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A KMV (k-minimum-values) distinct-count sketch: keep the `k` smallest
/// hashes seen; the k-th smallest estimates the hash-space density.
#[derive(Debug, Clone, Default)]
pub struct DistinctSketch {
    mins: BTreeSet<u64>,
}

impl DistinctSketch {
    /// Feed one value into the sketch.
    pub fn observe(&mut self, v: &Value) {
        let h = hash_value(v);
        if self.mins.len() < SKETCH_K {
            self.mins.insert(h);
        } else {
            let max = *self.mins.iter().next_back().expect("non-empty at K");
            if h < max && self.mins.insert(h) {
                self.mins.pop_last();
            }
        }
    }

    /// Estimated number of distinct values observed.
    pub fn estimate(&self) -> u64 {
        if self.mins.len() < SKETCH_K {
            // fewer than K distinct hashes ever seen: the sketch is exact
            self.mins.len() as u64
        } else {
            let kth = *self.mins.iter().next_back().expect("non-empty at K");
            let frac = kth as f64 / u64::MAX as f64;
            ((SKETCH_K as f64 - 1.0) / frac.max(f64::MIN_POSITIVE)) as u64
        }
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Smallest non-NULL value seen (by [`Value`]'s total order); may be
    /// stale-wide after deletes until the next ANALYZE.
    pub min: Option<Value>,
    /// Largest non-NULL value seen.
    pub max: Option<Value>,
    /// Number of NULLs currently in the column (maintained exactly).
    pub null_count: u64,
    sketch: DistinctSketch,
}

impl ColumnStats {
    /// Estimated count of distinct non-NULL values.
    pub fn distinct(&self) -> u64 {
        self.sketch.estimate()
    }

    /// Record an inserted value.
    pub fn observe(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
        self.sketch.observe(v);
    }

    /// Record a deleted value.  Bounds and the sketch are left alone
    /// (conservative — see module docs); only the NULL count shrinks.
    pub fn retire(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count = self.null_count.saturating_sub(1);
        }
    }
}

/// Statistics for one table: a [`ColumnStats`] per column.  The live row
/// count is read from the table itself (it is already exact there).
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    cols: Vec<ColumnStats>,
}

impl TableStats {
    /// Zeroed stats for a table of the given arity.
    pub fn new(arity: usize) -> TableStats {
        TableStats {
            cols: vec![ColumnStats::default(); arity],
        }
    }

    /// Stats of one column (by schema position).
    pub fn column(&self, col: usize) -> &ColumnStats {
        &self.cols[col]
    }

    /// Record one inserted row.
    pub fn observe_row(&mut self, values: &[Value]) {
        for (c, v) in self.cols.iter_mut().zip(values) {
            c.observe(v);
        }
    }

    /// Record one deleted row.
    pub fn retire_row(&mut self, values: &[Value]) {
        for (c, v) in self.cols.iter_mut().zip(values) {
            c.retire(v);
        }
    }

    /// Record an in-place update of one column.
    pub fn update_cell(&mut self, col: usize, old: &Value, new: &Value) {
        self.cols[col].retire(old);
        self.cols[col].observe(new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_is_exact_below_k() {
        let mut s = DistinctSketch::default();
        for i in 0..100i64 {
            s.observe(&Value::Int(i % 10));
        }
        assert_eq!(s.estimate(), 10);
    }

    #[test]
    fn sketch_estimates_large_cardinalities() {
        let mut s = DistinctSketch::default();
        for i in 0..50_000i64 {
            s.observe(&Value::Int(i));
        }
        let est = s.estimate() as f64;
        assert!(
            (est - 50_000.0).abs() / 50_000.0 < 0.25,
            "estimate {est} too far from 50000"
        );
    }

    #[test]
    fn sketch_is_deterministic() {
        let run = || {
            let mut s = DistinctSketch::default();
            for i in 0..10_000i64 {
                s.observe(&Value::Int(i * 7));
            }
            s.estimate()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn column_stats_track_bounds_and_nulls() {
        let mut c = ColumnStats::default();
        c.observe(&Value::Int(5));
        c.observe(&Value::Int(-3));
        c.observe(&Value::Null);
        c.observe(&Value::Int(10));
        assert_eq!(c.min, Some(Value::Int(-3)));
        assert_eq!(c.max, Some(Value::Int(10)));
        assert_eq!(c.null_count, 1);
        assert_eq!(c.distinct(), 3);
        c.retire(&Value::Null);
        assert_eq!(c.null_count, 0);
        // deletes never shrink bounds
        c.retire(&Value::Int(-3));
        assert_eq!(c.min, Some(Value::Int(-3)));
    }

    #[test]
    fn table_stats_row_api() {
        let mut t = TableStats::new(2);
        t.observe_row(&[Value::Int(1), Value::Text("a".into())]);
        t.observe_row(&[Value::Int(2), Value::Text("a".into())]);
        assert_eq!(t.column(0).distinct(), 2);
        assert_eq!(t.column(1).distinct(), 1);
        t.update_cell(0, &Value::Int(2), &Value::Int(9));
        assert_eq!(t.column(0).max, Some(Value::Int(9)));
        t.retire_row(&[Value::Int(1), Value::Text("a".into())]);
        assert_eq!(t.column(0).null_count, 0);
    }
}
