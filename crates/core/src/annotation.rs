//! The annotation manager (§3 of the paper).
//!
//! A user relation may have **multiple annotation tables** attached
//! (categorization at the storage level — §3.1): one per category, each an
//! [`AnnotationSet`].  Every annotation carries an XML (or free-text) body,
//! a creation timestamp (used by `ARCHIVE … BETWEEN t1 AND t2`), an
//! archived flag (§3.3 — archived annotations are not propagated but can
//! be restored), and a creator.
//!
//! Two attachment storage schemes are implemented, matching the paper's
//! Figures 3 and 5:
//!
//! * [`CellScheme`] — the naive scheme where every data cell carries its
//!   own annotation list (the paper's Figure 3, where annotation `A2` is
//!   repeated 6 times);
//! * [`RectScheme`] — the compact scheme of Figure 5: the table is viewed
//!   as a 2-D space (columns × tuples) and an annotation over any group of
//!   contiguous cells is **one rectangle record**, indexed by an R-tree
//!   for cell-stabbing lookups.
//!
//! Experiment **E05** compares the two schemes' storage and lookup costs.

use std::collections::BTreeMap;
use std::collections::HashMap;

use bdbms_common::ids::AnnotationId;
use bdbms_common::Result;
use bdbms_index::rtree::{RTree, Rect};

use crate::codec;
use crate::xml::XmlNode;

/// One annotation record.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Unique id within the annotation set.
    pub id: AnnotationId,
    /// Parsed body.
    pub body: XmlNode,
    /// Original body text as supplied.
    pub raw: String,
    /// Creation timestamp (logical clock tick).
    pub created: u64,
    /// User who added it.
    pub creator: String,
    /// Archived annotations are kept but not propagated (§3.3).
    pub archived: bool,
}

/// Attachment storage scheme.
pub enum Scheme {
    /// Per-cell lists (Figure 3).
    Cell(CellScheme),
    /// Compact rectangles + R-tree (Figure 5).
    Rect(RectScheme),
}

/// Naive per-cell attachment: every annotated cell stores the id list.
#[derive(Default)]
pub struct CellScheme {
    cells: HashMap<(u64, usize), Vec<AnnotationId>>,
}

impl CellScheme {
    fn attach(&mut self, ann: AnnotationId, rows: &[u64], cols: &[usize]) {
        for &r in rows {
            for &c in cols {
                self.cells.entry((r, c)).or_default().push(ann);
            }
        }
    }

    fn for_cell(&self, row: u64, col: usize) -> Vec<AnnotationId> {
        self.cells.get(&(row, col)).cloned().unwrap_or_default()
    }

    /// Drop every attachment of annotations at or past the id watermark
    /// (transaction rollback).  Cells left without attachments are
    /// removed so storage accounting matches a history where the
    /// annotations never existed.
    fn detach_from(&mut self, watermark: u64) {
        self.cells.retain(|_, ids| {
            ids.retain(|id| id.raw() < watermark);
            !ids.is_empty()
        });
    }

    /// Attachment records stored (one per annotated cell per annotation —
    /// the repetition the paper calls out).
    fn record_count(&self) -> usize {
        self.cells.values().map(|v| v.len()).sum()
    }

    /// 10 bytes of cell key + 8 bytes per referenced annotation id.
    fn storage_bytes(&self) -> usize {
        self.cells.len() * 10 + self.record_count() * 8
    }
}

/// Compact rectangle attachment over the (column, row) plane.
#[derive(Default)]
pub struct RectScheme {
    /// (col_lo, col_hi, row_lo, row_hi, ann).
    rects: Vec<(usize, usize, u64, u64, AnnotationId)>,
    /// R-tree over the rectangles (x = column span, y = row span).
    index: RTree,
}

impl RectScheme {
    fn attach(&mut self, ann: AnnotationId, rows: &[u64], cols: &[usize]) {
        // Decompose the (row set × col set) into maximal contiguous
        // rectangles, exactly as Figure 5 suggests.
        for (clo, chi) in contiguous_usize(cols) {
            for (rlo, rhi) in contiguous_u64(rows) {
                let idx = self.rects.len();
                self.rects.push((clo, chi, rlo, rhi, ann));
                self.index.insert(
                    Rect::new([clo as f64, rlo as f64], [chi as f64, rhi as f64]),
                    idx as u64,
                );
            }
        }
    }

    fn for_cell(&self, row: u64, col: usize) -> Vec<AnnotationId> {
        self.index
            .search(&Rect::point(col as f64, row as f64))
            .into_iter()
            .map(|(_, idx)| self.rects[idx as usize].4)
            .collect()
    }

    /// Linear-scan variant (ablation: what the R-tree buys on lookups).
    pub fn for_cell_scan(&self, row: u64, col: usize) -> Vec<AnnotationId> {
        self.rects
            .iter()
            .filter(|(clo, chi, rlo, rhi, _)| {
                *clo <= col && col <= *chi && *rlo <= row && row <= *rhi
            })
            .map(|(_, _, _, _, a)| *a)
            .collect()
    }

    fn record_count(&self) -> usize {
        self.rects.len()
    }

    /// Drop every rectangle of annotations at or past the id watermark
    /// (transaction rollback).  Annotations are appended in id order, so
    /// the survivors are a prefix of the rectangle list; rebuilding the
    /// R-tree over that prefix reproduces the pre-transaction structure
    /// exactly (same rectangles, same insertion order).
    fn detach_from(&mut self, watermark: u64) {
        let keep = self
            .rects
            .iter()
            .take_while(|(_, _, _, _, ann)| ann.raw() < watermark)
            .count();
        if keep == self.rects.len() {
            return;
        }
        self.rects.truncate(keep);
        self.index = RTree::default();
        for (idx, &(clo, chi, rlo, rhi, _)) in self.rects.iter().enumerate() {
            self.index.insert(
                Rect::new([clo as f64, rlo as f64], [chi as f64, rhi as f64]),
                idx as u64,
            );
        }
    }

    /// 40 bytes per rectangle record (4 coordinates + id), plus the R-tree.
    fn storage_bytes(&self) -> usize {
        self.rects.len() * 40 + self.index.storage_bytes()
    }
}

/// Sorted+deduped contiguous runs of row numbers.
fn contiguous_u64(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut v: Vec<u64> = xs.to_vec();
    v.sort_unstable();
    v.dedup();
    let mut out = Vec::new();
    let mut i = 0;
    while i < v.len() {
        let start = v[i];
        let mut end = start;
        while i + 1 < v.len() && v[i + 1] == end + 1 {
            i += 1;
            end = v[i];
        }
        out.push((start, end));
        i += 1;
    }
    out
}

fn contiguous_usize(xs: &[usize]) -> Vec<(usize, usize)> {
    contiguous_u64(&xs.iter().map(|&x| x as u64).collect::<Vec<_>>())
        .into_iter()
        .map(|(a, b)| (a as usize, b as usize))
        .collect()
}

/// One annotation table (category) attached to a user relation.
pub struct AnnotationSet {
    /// Category name (e.g. `GAnnotation`, `provenance`).
    pub name: String,
    /// Only users with the PROVENANCE privilege may write (§4).
    pub system_only: bool,
    /// Enforce the provenance XML schema on bodies (§4).
    pub schema_enforced: bool,
    annotations: BTreeMap<u64, Annotation>,
    scheme: Scheme,
    next_id: u64,
}

impl AnnotationSet {
    /// New annotation set with the chosen scheme.
    pub fn new(name: impl Into<String>, cell_scheme: bool) -> Self {
        AnnotationSet {
            name: name.into(),
            system_only: false,
            schema_enforced: false,
            annotations: BTreeMap::new(),
            scheme: if cell_scheme {
                Scheme::Cell(CellScheme::default())
            } else {
                Scheme::Rect(RectScheme::default())
            },
            next_id: 0,
        }
    }

    /// Add an annotation over `rows × cols` cells.
    pub fn add(
        &mut self,
        raw: &str,
        creator: &str,
        created: u64,
        rows: &[u64],
        cols: &[usize],
    ) -> AnnotationId {
        let id = AnnotationId(self.next_id);
        self.next_id += 1;
        let body = XmlNode::parse_or_wrap(raw);
        self.annotations.insert(
            id.raw(),
            Annotation {
                id,
                body,
                raw: raw.to_string(),
                created,
                creator: creator.to_string(),
                archived: false,
            },
        );
        match &mut self.scheme {
            Scheme::Cell(s) => s.attach(id, rows, cols),
            Scheme::Rect(s) => s.attach(id, rows, cols),
        }
        id
    }

    /// The annotation record by id.
    pub fn get(&self, id: AnnotationId) -> Option<&Annotation> {
        self.annotations.get(&id.raw())
    }

    /// Non-archived annotations attached to a cell.
    pub fn for_cell(&self, row: u64, col: usize) -> Vec<&Annotation> {
        self.ids_for_cell(row, col)
            .into_iter()
            .filter_map(|id| self.annotations.get(&id.raw()))
            .filter(|a| !a.archived)
            .collect()
    }

    /// All annotation ids attached to a cell (archived included).
    pub fn ids_for_cell(&self, row: u64, col: usize) -> Vec<AnnotationId> {
        let mut ids = match &self.scheme {
            Scheme::Cell(s) => s.for_cell(row, col),
            Scheme::Rect(s) => s.for_cell(row, col),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Archive (or restore) annotations attached to any of `cells`,
    /// optionally limited to a creation-time window (Figure 6b/6c).
    /// Returns how many annotation records changed state.
    pub fn set_archived(
        &mut self,
        cells: &[(u64, usize)],
        between: Option<(u64, u64)>,
        archived: bool,
    ) -> usize {
        let mut ids: Vec<AnnotationId> = cells
            .iter()
            .flat_map(|&(r, c)| self.ids_for_cell(r, c))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let mut changed = 0;
        for id in ids {
            if let Some(a) = self.annotations.get_mut(&id.raw()) {
                if let Some((lo, hi)) = between {
                    if a.created < lo || a.created > hi {
                        continue;
                    }
                }
                if a.archived != archived {
                    a.archived = archived;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// The id the next [`add`](Self::add) would allocate — the watermark
    /// a transaction snapshot records before the set is first mutated.
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The archived flag of every annotation, in id order (the other
    /// half of a transaction snapshot).
    pub(crate) fn archived_flags(&self) -> Vec<(u64, bool)> {
        self.annotations
            .iter()
            .map(|(&id, a)| (id, a.archived))
            .collect()
    }

    /// Restore the set to a snapshot: truncate annotations (and their
    /// scheme attachments) at or past the id watermark, rewind the id
    /// allocator, and put the survivors' archived flags back.
    pub(crate) fn rollback_to(&mut self, next_id: u64, flags: &[(u64, bool)]) {
        if self.next_id > next_id {
            self.annotations.retain(|&id, _| id < next_id);
            match &mut self.scheme {
                Scheme::Cell(s) => s.detach_from(next_id),
                Scheme::Rect(s) => s.detach_from(next_id),
            }
            self.next_id = next_id;
        }
        for &(id, archived) in flags {
            if let Some(a) = self.annotations.get_mut(&id) {
                a.archived = archived;
            }
        }
    }

    /// Number of annotation records.
    pub fn len(&self) -> usize {
        self.annotations.len()
    }

    /// True when no annotations stored.
    pub fn is_empty(&self) -> bool {
        self.annotations.is_empty()
    }

    /// Every annotation id referenced by an attachment record, sorted and
    /// deduplicated.  `CHECK` verifies these never dangle (each must
    /// resolve through [`get`](Self::get)).
    pub fn referenced_ids(&self) -> Vec<AnnotationId> {
        let mut ids: Vec<AnnotationId> = match &self.scheme {
            Scheme::Cell(s) => s.cells.values().flatten().copied().collect(),
            Scheme::Rect(s) => s.rects.iter().map(|r| r.4).collect(),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Attachment records stored by the scheme (the compactness metric of
    /// E05).
    pub fn attachment_records(&self) -> usize {
        match &self.scheme {
            Scheme::Cell(s) => s.record_count(),
            Scheme::Rect(s) => s.record_count(),
        }
    }

    /// Attachment storage bytes (annotation bodies excluded — identical in
    /// both schemes).
    pub fn attachment_bytes(&self) -> usize {
        match &self.scheme {
            Scheme::Cell(s) => s.storage_bytes(),
            Scheme::Rect(s) => s.storage_bytes(),
        }
    }

    /// Access the rectangle scheme, if that's what this set uses
    /// (benchmark ablation hook).
    pub fn rect_scheme(&self) -> Option<&RectScheme> {
        match &self.scheme {
            Scheme::Rect(s) => Some(s),
            Scheme::Cell(_) => None,
        }
    }

    /// Iterate all annotations (archived included).
    pub fn iter(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations.values()
    }

    /// Is this set stored in the per-cell scheme (Figure 3) rather than
    /// the rectangle scheme (Figure 5)?
    pub fn is_cell_scheme(&self) -> bool {
        matches!(self.scheme, Scheme::Cell(_))
    }

    // ---- durable form (checkpoint snapshots — see `crate::durability`) ----

    /// Serialize the whole set: annotation records (bodies as their raw
    /// text, re-parsed on load) plus the exact attachment-scheme state.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.name);
        codec::put_bool(out, self.system_only);
        codec::put_bool(out, self.schema_enforced);
        codec::put_u64(out, self.next_id);
        codec::put_u32(out, self.annotations.len() as u32);
        for a in self.annotations.values() {
            codec::put_u64(out, a.id.raw());
            codec::put_str(out, &a.raw);
            codec::put_u64(out, a.created);
            codec::put_str(out, &a.creator);
            codec::put_bool(out, a.archived);
        }
        match &self.scheme {
            Scheme::Cell(s) => {
                codec::put_u8(out, 0);
                // deterministic order: sorted by (row, col)
                let mut cells: Vec<(&(u64, usize), &Vec<AnnotationId>)> = s.cells.iter().collect();
                cells.sort_by_key(|(k, _)| **k);
                codec::put_u32(out, cells.len() as u32);
                for ((row, col), ids) in cells {
                    codec::put_u64(out, *row);
                    codec::put_u32(out, *col as u32);
                    codec::put_u32(out, ids.len() as u32);
                    for id in ids {
                        codec::put_u64(out, id.raw());
                    }
                }
            }
            Scheme::Rect(s) => {
                codec::put_u8(out, 1);
                codec::put_u32(out, s.rects.len() as u32);
                for &(clo, chi, rlo, rhi, ann) in &s.rects {
                    codec::put_u32(out, clo as u32);
                    codec::put_u32(out, chi as u32);
                    codec::put_u64(out, rlo);
                    codec::put_u64(out, rhi);
                    codec::put_u64(out, ann.raw());
                }
            }
        }
    }

    /// Inverse of [`encode`](Self::encode).  Rebuilds parsed bodies and
    /// the R-tree, reproducing the in-memory structure exactly (the
    /// rectangle list keeps its insertion order, which the rollback
    /// machinery's prefix-truncation relies on).
    pub(crate) fn decode(cur: &mut codec::Cur<'_>) -> Result<AnnotationSet> {
        let name = cur.str()?;
        let system_only = cur.bool()?;
        let schema_enforced = cur.bool()?;
        let next_id = cur.u64()?;
        let n = cur.len()?;
        let mut annotations = BTreeMap::new();
        for _ in 0..n {
            let id = cur.u64()?;
            let raw = cur.str()?;
            let created = cur.u64()?;
            let creator = cur.str()?;
            let archived = cur.bool()?;
            annotations.insert(
                id,
                Annotation {
                    id: AnnotationId(id),
                    body: XmlNode::parse_or_wrap(&raw),
                    raw,
                    created,
                    creator,
                    archived,
                },
            );
        }
        let scheme = match cur.u8()? {
            0 => {
                let n = cur.len()?;
                let mut cells = HashMap::with_capacity(n);
                for _ in 0..n {
                    let row = cur.u64()?;
                    let col = cur.u32()? as usize;
                    let k = cur.len()?;
                    let mut ids = Vec::with_capacity(k);
                    for _ in 0..k {
                        ids.push(AnnotationId(cur.u64()?));
                    }
                    cells.insert((row, col), ids);
                }
                Scheme::Cell(CellScheme { cells })
            }
            1 => {
                let n = cur.len()?;
                let mut s = RectScheme::default();
                for _ in 0..n {
                    let clo = cur.u32()? as usize;
                    let chi = cur.u32()? as usize;
                    let rlo = cur.u64()?;
                    let rhi = cur.u64()?;
                    let ann = AnnotationId(cur.u64()?);
                    let idx = s.rects.len();
                    s.rects.push((clo, chi, rlo, rhi, ann));
                    s.index.insert(
                        Rect::new([clo as f64, rlo as f64], [chi as f64, rhi as f64]),
                        idx as u64,
                    );
                }
                Scheme::Rect(s)
            }
            t => {
                return Err(bdbms_common::BdbmsError::corrupt(format!(
                    "unknown annotation scheme tag {t}"
                )))
            }
        };
        Ok(AnnotationSet {
            name,
            system_only,
            schema_enforced,
            annotations,
            scheme,
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_decomposition() {
        assert_eq!(
            contiguous_u64(&[1, 2, 3, 7, 8, 10]),
            vec![(1, 3), (7, 8), (10, 10)]
        );
        assert_eq!(contiguous_u64(&[5, 3, 4]), vec![(3, 5)]);
        assert_eq!(contiguous_u64(&[2, 2, 2]), vec![(2, 2)]);
        assert!(contiguous_u64(&[]).is_empty());
    }

    #[test]
    fn figure2_annotations_on_both_schemes() {
        // DB2_Gene: 3 columns (GID, GName, GSequence), 5 tuples.
        // B1 over rows {0,1,4} cells of all columns? In Figure 2, B1 covers
        // rows mraW, fixB, caiB on GID+GName; we model: rows 0,1,2 on cols 0,1.
        for cell_scheme in [true, false] {
            let mut set = AnnotationSet::new("GAnnotation", cell_scheme);
            let b1 = set.add("Curated by user admin", "admin", 1, &[0, 1, 2], &[0, 1]);
            let b3 = set.add(
                "<Annotation>obtained from GenoBase</Annotation>",
                "admin",
                2,
                &[0, 1, 2, 3, 4],
                &[2],
            );
            let b5 = set.add(
                "This gene has an unknown function",
                "alice",
                3,
                &[0],
                &[0, 1, 2],
            );
            // cell lookups
            let on_00: Vec<_> = set.for_cell(0, 0).iter().map(|a| a.id).collect();
            assert!(on_00.contains(&b1) && on_00.contains(&b5));
            let on_42 = set.for_cell(4, 2);
            assert_eq!(on_42.len(), 1);
            assert_eq!(on_42[0].id, b3);
            assert!(set.for_cell(4, 0).is_empty());
            // xml body parsed
            assert_eq!(
                set.get(b3).unwrap().body.full_text(),
                "obtained from GenoBase"
            );
        }
    }

    #[test]
    fn rect_scheme_is_compact_for_column_annotations() {
        // Column annotation over 1000 rows: 1 rectangle vs 1000 cell records.
        let rows: Vec<u64> = (0..1000).collect();
        let mut rect = AnnotationSet::new("a", false);
        rect.add("B3", "u", 1, &rows, &[2]);
        let mut cell = AnnotationSet::new("a", true);
        cell.add("B3", "u", 1, &rows, &[2]);
        assert_eq!(rect.attachment_records(), 1);
        assert_eq!(cell.attachment_records(), 1000);
        assert!(rect.attachment_bytes() * 10 < cell.attachment_bytes());
    }

    #[test]
    fn scattered_rows_make_multiple_rectangles() {
        let mut set = AnnotationSet::new("a", false);
        set.add("x", "u", 1, &[0, 1, 5, 6, 9], &[0, 1, 2]);
        // 3 row runs × 1 col run = 3 rectangles
        assert_eq!(set.attachment_records(), 3);
        assert_eq!(set.for_cell(5, 1).len(), 1);
        assert!(set.for_cell(3, 1).is_empty());
    }

    #[test]
    fn archive_and_restore_with_time_window() {
        let mut set = AnnotationSet::new("a", false);
        let _a1 = set.add("old", "u", 5, &[0], &[0]);
        let _a2 = set.add("new", "u", 15, &[0], &[0]);
        assert_eq!(set.for_cell(0, 0).len(), 2);
        // archive only the old one
        let changed = set.set_archived(&[(0, 0)], Some((0, 10)), true);
        assert_eq!(changed, 1);
        let live: Vec<_> = set.for_cell(0, 0).iter().map(|a| a.raw.clone()).collect();
        assert_eq!(live, vec!["new"]);
        // restore it
        let changed = set.set_archived(&[(0, 0)], None, false);
        assert_eq!(changed, 1);
        assert_eq!(set.for_cell(0, 0).len(), 2);
    }

    #[test]
    fn archived_not_propagated_but_queryable() {
        let mut set = AnnotationSet::new("a", true);
        let id = set.add("B5", "u", 1, &[3], &[1]);
        set.set_archived(&[(3, 1)], None, true);
        assert!(set.for_cell(3, 1).is_empty(), "archived must not propagate");
        assert!(set.get(id).unwrap().archived);
        assert_eq!(set.ids_for_cell(3, 1), vec![id]);
    }

    #[test]
    fn rect_scan_ablation_agrees_with_rtree() {
        let mut set = AnnotationSet::new("a", false);
        for i in 0..50u64 {
            set.add("x", "u", 1, &[i, i + 1], &[(i % 3) as usize]);
        }
        let rs = set.rect_scheme().unwrap();
        for row in 0..52u64 {
            for col in 0..3usize {
                let mut a = rs.for_cell_scan(row, col);
                let mut b = set.ids_for_cell(row, col);
                a.sort_unstable();
                a.dedup();
                b.sort_unstable();
                assert_eq!(a, b, "cell ({row},{col})");
            }
        }
    }

    #[test]
    fn duplicate_attachment_ids_deduped() {
        let mut set = AnnotationSet::new("a", false);
        // Overlapping rectangles from one annotation (rows given twice).
        let id = set.add("x", "u", 1, &[0, 0, 1], &[0]);
        assert_eq!(set.ids_for_cell(0, 0), vec![id]);
    }
}
