//! Content-based update authorization (§6, Figure 11).
//!
//! When content approval is active on a table, every INSERT / UPDATE /
//! DELETE by a non-approver is applied immediately (*"users may be allowed
//! to view the data pending its approval"*) **and** logged together with
//! an automatically generated inverse operation: *"for INSERT, a DELETE
//! statement will be generated, for DELETE, an INSERT statement [...] and
//! for UPDATE, another UPDATE statement that restores the old values"*.
//! The approver later approves (log entry closed) or disapproves (the
//! stored inverse is executed by the `Database`, which also routes the
//! undo through dependency tracking, as §6's last paragraph requires).

use std::collections::HashMap;

use bdbms_common::ids::OperationId;
use bdbms_common::{BdbmsError, Result, Value};

/// Approval configuration for one table (Figure 11's START command).
#[derive(Debug, Clone)]
pub struct ApprovalConfig {
    /// Monitored columns, lowercased (`None` = every column).
    pub columns: Option<Vec<String>>,
    /// User or group allowed to approve/disapprove.
    pub approver: String,
}

/// The inverse operation stored with each log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum InverseOp {
    /// Inverse of INSERT: delete the inserted row.
    DeleteRow {
        /// Row to delete.
        row_no: u64,
    },
    /// Inverse of DELETE: re-insert the old tuple under its old row number.
    InsertRow {
        /// Row number to restore.
        row_no: u64,
        /// The tuple at deletion time.
        values: Vec<Value>,
    },
    /// Inverse of UPDATE: restore the old cell values.
    RestoreCells {
        /// Row to patch.
        row_no: u64,
        /// `(column index, old value)` pairs.
        old: Vec<(usize, Value)>,
    },
}

/// Status of a logged operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// Awaiting a decision.
    Pending,
    /// Approved: permanent.
    Approved,
    /// Disapproved: inverse was executed.
    Disapproved,
}

impl std::fmt::Display for OpStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpStatus::Pending => "pending",
            OpStatus::Approved => "approved",
            OpStatus::Disapproved => "disapproved",
        };
        f.write_str(s)
    }
}

/// One logged update operation.
#[derive(Debug, Clone)]
pub struct LoggedOp {
    /// Log id.
    pub id: OperationId,
    /// Table the operation touched.
    pub table: String,
    /// Issuing user (§6: "the log stores also the user identifier who
    /// issued the update operation and the issuing time").
    pub user: String,
    /// Issuing time.
    pub time: u64,
    /// Human-readable description.
    pub description: String,
    /// The stored inverse.
    pub inverse: InverseOp,
    /// Current status.
    pub status: OpStatus,
}

/// The content-based approval manager.
#[derive(Default)]
pub struct ApprovalManager {
    configs: HashMap<String, ApprovalConfig>,
    log: Vec<LoggedOp>,
    next_id: u64,
}

impl ApprovalManager {
    /// Fresh manager with approval off everywhere.
    pub fn new() -> Self {
        ApprovalManager::default()
    }

    fn key(table: &str) -> String {
        table.to_ascii_lowercase()
    }

    /// Turn approval on for a table (Figure 11 START CONTENT APPROVAL).
    pub fn start(&mut self, table: &str, columns: Option<Vec<String>>, approver: &str) {
        self.configs.insert(
            Self::key(table),
            ApprovalConfig {
                columns: columns.map(|cs| cs.into_iter().map(|c| c.to_ascii_lowercase()).collect()),
                approver: approver.to_string(),
            },
        );
    }

    /// Turn approval off (STOP CONTENT APPROVAL).  With explicit columns,
    /// stops monitoring only those; stopping the last column clears the
    /// config.
    pub fn stop(&mut self, table: &str, columns: &[String]) {
        let key = Self::key(table);
        if columns.is_empty() {
            self.configs.remove(&key);
            return;
        }
        if let Some(cfg) = self.configs.get_mut(&key) {
            if let Some(cols) = &mut cfg.columns {
                cols.retain(|c| !columns.iter().any(|x| x.eq_ignore_ascii_case(c)));
                if cols.is_empty() {
                    self.configs.remove(&key);
                }
            }
            // configured for all columns: an explicit column list cannot
            // partially disable it; keep monitoring (caller may STOP fully).
        }
    }

    /// The active config for a table, if any.
    pub fn config(&self, table: &str) -> Option<&ApprovalConfig> {
        self.configs.get(&Self::key(table))
    }

    /// Should an operation touching `columns` (indices into the schema,
    /// by name lowercased) be logged for approval?
    pub fn monitors(&self, table: &str, touched_columns: &[String]) -> bool {
        match self.config(table) {
            None => false,
            Some(cfg) => match &cfg.columns {
                None => true,
                Some(watch) => touched_columns
                    .iter()
                    .any(|c| watch.iter().any(|w| w.eq_ignore_ascii_case(c))),
            },
        }
    }

    /// Append a pending operation to the log.
    pub fn log_operation(
        &mut self,
        table: &str,
        user: &str,
        time: u64,
        description: String,
        inverse: InverseOp,
    ) -> OperationId {
        let id = OperationId(self.next_id);
        self.next_id += 1;
        self.log.push(LoggedOp {
            id,
            table: table.to_string(),
            user: user.to_string(),
            time,
            description,
            inverse,
            status: OpStatus::Pending,
        });
        id
    }

    /// The full log (newest last).
    pub fn log(&self) -> &[LoggedOp] {
        &self.log
    }

    /// Pending entries, optionally filtered by table.
    pub fn pending(&self, table: Option<&str>) -> Vec<&LoggedOp> {
        self.log
            .iter()
            .filter(|op| op.status == OpStatus::Pending)
            .filter(|op| match table {
                Some(t) => op.table.eq_ignore_ascii_case(t),
                None => true,
            })
            .collect()
    }

    /// Look up a log entry.
    pub fn get(&self, id: OperationId) -> Result<&LoggedOp> {
        self.log
            .iter()
            .find(|op| op.id == id)
            .ok_or_else(|| BdbmsError::not_found(format!("operation {id}")))
    }

    /// Mark an entry decided; returns the entry (with the inverse the
    /// caller must execute on disapproval).  Fails on double decisions.
    pub fn decide(&mut self, id: OperationId, approve: bool) -> Result<LoggedOp> {
        let op = self
            .log
            .iter_mut()
            .find(|op| op.id == id)
            .ok_or_else(|| BdbmsError::not_found(format!("operation {id}")))?;
        if op.status != OpStatus::Pending {
            return Err(BdbmsError::approval(format!(
                "operation {id} was already {}",
                op.status
            )));
        }
        op.status = if approve {
            OpStatus::Approved
        } else {
            OpStatus::Disapproved
        };
        Ok(op.clone())
    }

    /// The log length and id allocator — the watermark a transaction
    /// snapshot records before the first approval-log append.
    pub(crate) fn log_watermark(&self) -> (usize, u64) {
        (self.log.len(), self.next_id)
    }

    /// Restore the log to a snapshot: drop entries appended past the
    /// watermark and rewind the id allocator (transaction rollback).
    pub(crate) fn truncate_log(&mut self, len: usize, next_id: u64) {
        self.log.truncate(len);
        self.next_id = next_id;
    }

    /// Force an entry's status (transaction rollback undoing a decision
    /// whose inverse execution was itself rolled back).
    pub(crate) fn set_status(&mut self, id: OperationId, status: OpStatus) {
        if let Some(op) = self.log.iter_mut().find(|op| op.id == id) {
            op.status = status;
        }
    }

    /// Deterministic dump of the manager (checkpoint snapshots — see
    /// `crate::durability`): sorted per-table configs, the full log, and
    /// the id allocator.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot(
        &self,
    ) -> (Vec<(String, Option<Vec<String>>, String)>, &[LoggedOp], u64) {
        let mut configs: Vec<(String, Option<Vec<String>>, String)> = self
            .configs
            .iter()
            .map(|(t, c)| (t.clone(), c.columns.clone(), c.approver.clone()))
            .collect();
        configs.sort();
        (configs, &self.log, self.next_id)
    }

    /// Rebuild from a [`snapshot`](Self::snapshot) dump.
    pub(crate) fn restore(
        configs: Vec<(String, Option<Vec<String>>, String)>,
        log: Vec<LoggedOp>,
        next_id: u64,
    ) -> ApprovalManager {
        let mut m = ApprovalManager::new();
        for (table, columns, approver) in configs {
            // keys were stored lowercased; reinsert directly
            m.configs
                .insert(table, ApprovalConfig { columns, approver });
        }
        m.log = log;
        m.next_id = next_id;
        m
    }

    /// Re-append a logged operation with its original id (WAL replay).
    pub(crate) fn restore_log_entry(&mut self, op: LoggedOp) {
        self.next_id = self.next_id.max(op.id.raw() + 1);
        self.log.push(op);
    }

    /// Bytes of log storage (for the E11 overhead report): description +
    /// stored inverse values.
    pub fn log_bytes(&self) -> usize {
        self.log
            .iter()
            .map(|op| {
                let inv = match &op.inverse {
                    InverseOp::DeleteRow { .. } => 8,
                    InverseOp::InsertRow { values, .. } => {
                        8 + values.iter().map(value_bytes).sum::<usize>()
                    }
                    InverseOp::RestoreCells { old, .. } => {
                        8 + old.iter().map(|(_, v)| 4 + value_bytes(v)).sum::<usize>()
                    }
                };
                40 + op.description.len() + inv
            })
            .sum()
    }
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Text(s) => 5 + s.len(),
        _ => 9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_stop_and_monitoring() {
        let mut m = ApprovalManager::new();
        assert!(!m.monitors("Gene", &["gsequence".into()]));
        m.start("Gene", None, "labadmin");
        assert!(m.monitors("gene", &["anything".into()]));
        m.stop("Gene", &[]);
        assert!(!m.monitors("Gene", &["anything".into()]));

        // column-scoped monitoring (the paper's GSequence example)
        m.start("Gene", Some(vec!["GSequence".into()]), "labadmin");
        assert!(m.monitors("Gene", &["gsequence".into()]));
        assert!(!m.monitors("Gene", &["gname".into()]));
        m.stop("Gene", &["GSequence".into()]);
        assert!(!m.monitors("Gene", &["gsequence".into()]));
    }

    #[test]
    fn log_and_decide() {
        let mut m = ApprovalManager::new();
        m.start("Gene", None, "labadmin");
        let id = m.log_operation(
            "Gene",
            "alice",
            7,
            "UPDATE Gene SET GSequence='GTG' (row 0)".into(),
            InverseOp::RestoreCells {
                row_no: 0,
                old: vec![(2, Value::Text("ATG".into()))],
            },
        );
        assert_eq!(m.pending(None).len(), 1);
        assert_eq!(m.pending(Some("gene")).len(), 1);
        assert_eq!(m.pending(Some("other")).len(), 0);
        let decided = m.decide(id, false).unwrap();
        assert_eq!(decided.status, OpStatus::Disapproved);
        assert!(matches!(decided.inverse, InverseOp::RestoreCells { .. }));
        assert!(m.pending(None).is_empty());
        // double decision rejected
        assert_eq!(m.decide(id, true).unwrap_err().kind(), "approval");
    }

    #[test]
    fn inverse_shapes() {
        // the three inverse kinds of §6
        let ins_inv = InverseOp::DeleteRow { row_no: 5 };
        let del_inv = InverseOp::InsertRow {
            row_no: 5,
            values: vec![Value::Text("JW0080".into())],
        };
        let upd_inv = InverseOp::RestoreCells {
            row_no: 5,
            old: vec![(1, Value::Int(3))],
        };
        assert_ne!(ins_inv, del_inv);
        assert_ne!(del_inv, upd_inv);
    }

    #[test]
    fn log_bytes_grow() {
        let mut m = ApprovalManager::new();
        let empty = m.log_bytes();
        for i in 0..10 {
            m.log_operation(
                "T",
                "u",
                i,
                format!("op {i}"),
                InverseOp::DeleteRow { row_no: i },
            );
        }
        assert!(m.log_bytes() > empty + 10 * 40);
        assert_eq!(m.log().len(), 10);
    }

    #[test]
    fn unknown_operation() {
        let mut m = ApprovalManager::new();
        assert!(m.get(OperationId(9)).is_err());
        assert!(m.decide(OperationId(9), true).is_err());
    }
}
