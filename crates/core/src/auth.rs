//! Identity-based authorization: the classic GRANT/REVOKE model (§6).
//!
//! The paper keeps GRANT/REVOKE and layers content-based approval *on top*
//! ("the proposed content-based approval mechanism works with, not in
//! replacement to, existing GRANT/REVOKE mechanisms").  This module is the
//! GRANT/REVOKE half; [`crate::approval`] is the content-based half.

use std::collections::{HashMap, HashSet};

use bdbms_common::{BdbmsError, Result};

use crate::ast::Privilege;

/// The built-in superuser.
pub const ADMIN: &str = "admin";

/// Users, groups, and table privileges.
pub struct AuthManager {
    /// user → groups.
    users: HashMap<String, Vec<String>>,
    /// (grantee lowercased, table lowercased) → privileges.  The grantee
    /// may be a user or a group name.
    grants: HashMap<(String, String), HashSet<Privilege>>,
}

impl AuthManager {
    /// A fresh manager with only the `admin` superuser.
    pub fn new() -> Self {
        let mut users = HashMap::new();
        users.insert(ADMIN.to_string(), Vec::new());
        AuthManager {
            users,
            grants: HashMap::new(),
        }
    }

    fn key(s: &str) -> String {
        s.to_ascii_lowercase()
    }

    /// Create a user with optional group memberships.
    pub fn create_user(&mut self, name: &str, groups: &[String]) -> Result<()> {
        let key = Self::key(name);
        if self.users.contains_key(&key) {
            return Err(BdbmsError::already_exists(format!("user `{name}`")));
        }
        self.users
            .insert(key, groups.iter().map(|g| Self::key(g)).collect());
        Ok(())
    }

    /// Does the user exist?
    pub fn user_exists(&self, name: &str) -> bool {
        self.users.contains_key(&Self::key(name))
    }

    /// Groups of a user.
    pub fn groups_of(&self, user: &str) -> &[String] {
        self.users
            .get(&Self::key(user))
            .map(|g| g.as_slice())
            .unwrap_or(&[])
    }

    /// Is `user` the named principal, or a member of it (group)?
    pub fn acts_as(&self, user: &str, principal: &str) -> bool {
        let u = Self::key(user);
        let p = Self::key(principal);
        u == p || self.groups_of(user).contains(&p)
    }

    /// Grant privileges on a table to a user or group.
    pub fn grant(&mut self, grantee: &str, table: &str, privileges: &[Privilege]) {
        let e = self
            .grants
            .entry((Self::key(grantee), Self::key(table)))
            .or_default();
        e.extend(privileges.iter().copied());
    }

    /// Revoke privileges.
    pub fn revoke(&mut self, grantee: &str, table: &str, privileges: &[Privilege]) {
        if let Some(e) = self.grants.get_mut(&(Self::key(grantee), Self::key(table))) {
            for p in privileges {
                e.remove(p);
            }
        }
    }

    /// Does `user` hold `privilege` on `table` (directly, via a group, or
    /// as admin)?  Ownership is checked by the caller, which knows the
    /// table's owner.
    pub fn has_privilege(&self, user: &str, table: &str, privilege: Privilege) -> bool {
        if Self::key(user) == ADMIN {
            return true;
        }
        let t = Self::key(table);
        let direct = self
            .grants
            .get(&(Self::key(user), t.clone()))
            .is_some_and(|s| s.contains(&privilege));
        if direct {
            return true;
        }
        self.groups_of(user).iter().any(|g| {
            self.grants
                .get(&(g.clone(), t.clone()))
                .is_some_and(|s| s.contains(&privilege))
        })
    }

    /// Deterministic dump of the whole authorization state (checkpoint
    /// snapshots — see `crate::durability`): sorted users with their
    /// groups, and sorted `(grantee, table)` privilege sets.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot(
        &self,
    ) -> (
        Vec<(String, Vec<String>)>,
        Vec<(String, String, Vec<Privilege>)>,
    ) {
        let mut users: Vec<(String, Vec<String>)> = self
            .users
            .iter()
            .map(|(u, g)| (u.clone(), g.clone()))
            .collect();
        users.sort();
        let mut grants: Vec<(String, String, Vec<Privilege>)> = self
            .grants
            .iter()
            .map(|((g, t), ps)| {
                let mut ps: Vec<Privilege> = ps.iter().copied().collect();
                ps.sort_by_key(|p| *p as u8);
                (g.clone(), t.clone(), ps)
            })
            .collect();
        grants.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        (users, grants)
    }

    /// Rebuild from a [`snapshot`](Self::snapshot) dump.
    pub(crate) fn restore(
        users: Vec<(String, Vec<String>)>,
        grants: Vec<(String, String, Vec<Privilege>)>,
    ) -> AuthManager {
        let mut auth = AuthManager::new();
        for (user, groups) in users {
            // keys were stored lowercased already; insert directly so the
            // built-in admin row round-trips
            auth.users.insert(user, groups);
        }
        for (grantee, table, privs) in grants {
            auth.grants
                .entry((grantee, table))
                .or_default()
                .extend(privs);
        }
        auth
    }

    /// Error unless the privilege is held (owner always passes).
    pub fn check(&self, user: &str, table: &str, owner: &str, privilege: Privilege) -> Result<()> {
        if Self::key(user) == Self::key(owner) || self.has_privilege(user, table, privilege) {
            Ok(())
        } else {
            Err(BdbmsError::unauthorized(format!(
                "user `{user}` lacks {privilege} on `{table}`"
            )))
        }
    }
}

impl Default for AuthManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_has_everything() {
        let a = AuthManager::new();
        assert!(a.has_privilege("admin", "Gene", Privilege::Delete));
        assert!(a
            .check("admin", "Gene", "someone", Privilege::Update)
            .is_ok());
    }

    #[test]
    fn grant_and_revoke() {
        let mut a = AuthManager::new();
        a.create_user("alice", &[]).unwrap();
        assert!(!a.has_privilege("alice", "Gene", Privilege::Select));
        a.grant("alice", "Gene", &[Privilege::Select, Privilege::Update]);
        assert!(a.has_privilege("alice", "gene", Privilege::Select));
        assert!(a.has_privilege("alice", "GENE", Privilege::Update));
        assert!(!a.has_privilege("alice", "Gene", Privilege::Delete));
        a.revoke("alice", "Gene", &[Privilege::Update]);
        assert!(!a.has_privilege("alice", "Gene", Privilege::Update));
        assert!(a.has_privilege("alice", "Gene", Privilege::Select));
    }

    #[test]
    fn group_privileges() {
        let mut a = AuthManager::new();
        a.create_user("bob", &["lab1".to_string()]).unwrap();
        a.grant("lab1", "Gene", &[Privilege::Insert]);
        assert!(a.has_privilege("bob", "Gene", Privilege::Insert));
        assert!(!a.has_privilege("bob", "Gene", Privilege::Delete));
    }

    #[test]
    fn acts_as_user_or_group() {
        let mut a = AuthManager::new();
        a.create_user("carol", &["curators".to_string()]).unwrap();
        assert!(a.acts_as("carol", "carol"));
        assert!(a.acts_as("carol", "Curators"));
        assert!(!a.acts_as("carol", "lab1"));
    }

    #[test]
    fn owner_bypasses_grants() {
        let a = AuthManager::new();
        assert!(a.check("dave", "Gene", "dave", Privilege::Delete).is_ok());
        assert!(a.check("dave", "Gene", "erin", Privilege::Delete).is_err());
    }

    #[test]
    fn duplicate_user_rejected() {
        let mut a = AuthManager::new();
        a.create_user("x", &[]).unwrap();
        assert!(a.create_user("X", &[]).is_err());
    }
}
