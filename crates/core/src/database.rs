//! The bdbms database facade.
//!
//! [`Database`] owns the storage pool, catalog, logical clock, and the
//! four managers the paper's architecture names (§2): the annotation
//! manager (per-table [`crate::annotation::AnnotationSet`]s), the
//! dependency manager, the authorization manager (GRANT/REVOKE), and the
//! content-approval manager.  Statements enter through
//! [`Database::execute_as`], which parses A-SQL and routes each command
//! through authorization, approval logging, and dependency tracking.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bdbms_common::clock::LogicalClock;
use bdbms_common::metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot};
use bdbms_common::{BdbmsError, DataType, Result, Schema, Value};
use bdbms_storage::{BufferPool, MemStore};

use crate::annotation::AnnotationSet;
use crate::approval::{ApprovalManager, InverseOp, OpStatus};
use crate::ast::{AnnTarget, CopyFormat, Expr, Privilege, Statement};
use crate::auth::{AuthManager, ADMIN};
use crate::catalog::{Catalog, DeletedRow, Table};
use crate::dependency::{DependencyManager, DependencyRule};
use crate::executor::{run_select_traced, select_cells, ExecOptions, ExecStats};
use crate::expr::{eval, ColBinding};
use crate::plan;
use crate::provenance::{self, ProvenanceRecord};
use crate::result::{AnnRow, QueryResult};
use crate::session::Session;
use crate::txn::{TxnRuntime, TxnStatus, UndoOp};

/// How a dependency cascade treats non-recomputable targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CascadeMode {
    /// A source value was modified: recompute executable targets, mark the
    /// rest outdated.
    Update,
    /// A fresh row arrived: derive computable cells, but don't outdate
    /// values supplied with the row itself.
    InsertFresh,
    /// The source value is itself untrusted (outdated or deleted): mark
    /// targets outdated, never recompute from stale inputs.
    Stale,
}

/// Engine-level instruments, registered on the database's
/// [`MetricsRegistry`] at construction (docs/OBSERVABILITY.md).  The
/// instruments are plain atomics shared by `Arc`, so recording never
/// takes the registry lock.
#[derive(Debug, Clone)]
pub(crate) struct EngineMetrics {
    /// Committed transactions — explicit `COMMIT`s *and* the implicit
    /// per-statement transactions every standalone statement runs in.
    pub(crate) commits: Arc<Counter>,
    /// Rolled-back transactions (explicit `ROLLBACK`, failed implicit
    /// statements, and commits that failed at the WAL and rolled back).
    pub(crate) rollbacks: Arc<Counter>,
    /// Checkpoints taken.
    pub(crate) checkpoints: Arc<Counter>,
    /// Wall time per checkpoint.
    pub(crate) checkpoint_duration_ns: Arc<Histogram>,
    /// Bytes written by checkpoints (durable image pages).
    pub(crate) checkpoint_bytes: Arc<Counter>,
    /// Prepared-statement plan replays (cached plan still valid).
    pub(crate) plan_cache_hits: Arc<Counter>,
    /// Cursor opens with no cached plan to consult.
    pub(crate) plan_cache_misses: Arc<Counter>,
    /// Cached plans discarded (generation moved, or the replan decided
    /// differently) — the statement re-planned live.
    pub(crate) plan_cache_invalidations: Arc<Counter>,
    /// Statements executed through [`crate::Session::run`] / `execute`.
    pub(crate) statements: Arc<Counter>,
    /// Per-statement wall time (parse + plan + execute).
    pub(crate) statement_latency_ns: Arc<Histogram>,
    /// Statements that exceeded the slow-query threshold.
    pub(crate) slow_queries: Arc<Counter>,
}

impl EngineMetrics {
    fn new(reg: &MetricsRegistry) -> Self {
        EngineMetrics {
            commits: reg.counter("txn.commits"),
            rollbacks: reg.counter("txn.rollbacks"),
            checkpoints: reg.counter("checkpoint.count"),
            checkpoint_duration_ns: reg.histogram("checkpoint.duration_ns"),
            checkpoint_bytes: reg.counter("checkpoint.bytes"),
            plan_cache_hits: reg.counter("plan_cache.hits"),
            plan_cache_misses: reg.counter("plan_cache.misses"),
            plan_cache_invalidations: reg.counter("plan_cache.invalidations"),
            statements: reg.counter("session.statements"),
            statement_latency_ns: reg.histogram("session.statement_latency_ns"),
            slow_queries: reg.counter("session.slow_queries"),
        }
    }
}

/// One slow-query log entry (see [`Database::set_slow_query_threshold`]
/// and `SHOW SLOW QUERIES`).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Logical time the statement finished.
    pub at: u64,
    /// User the statement ran as.
    pub user: String,
    /// Statement text.
    pub sql: String,
    /// Total wall time (parse + plan + execute), nanoseconds.
    pub duration_ns: u64,
    /// One-line plan summary from the statement's [`ExecStats`] (empty
    /// for statements that carry none, e.g. DML).
    pub plan_summary: String,
}

/// Fixed-capacity ring buffer of the slowest-statement history.  Bounded
/// so an unattended server can log slow queries forever without growing;
/// new entries evict the oldest.
#[derive(Debug, Default)]
pub(crate) struct SlowQueryLog {
    threshold_ns: Option<u64>,
    entries: VecDeque<SlowQuery>,
}

/// Capacity of the slow-query ring buffer.
const SLOW_QUERY_LOG_CAP: usize = 128;

/// The bdbms engine.
///
/// A `Database` is either **in-memory** ([`Database::new_in_memory`] —
/// state dies with the process; this is what tests and benchmarks use)
/// or **durable** ([`Database::create`] / [`Database::open`] — catalog
/// and row heaps persist on `FileStore` pages, commits are redo-logged
/// through a WAL, and crash recovery replays committed transactions; see
/// `crate::durability` and `docs/STORAGE.md`).
pub struct Database {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) catalog: Catalog,
    pub(crate) clock: LogicalClock,
    pub(crate) auth: AuthManager,
    pub(crate) approval: ApprovalManager,
    pub(crate) deps: DependencyManager,
    /// Transaction runtime: the undo log, the redo buffer, and their
    /// watermarks.  Driven by the [`Session`] state machine
    /// (`BEGIN`/`COMMIT`/`ROLLBACK`); outside an explicit transaction
    /// every statement wraps itself in an implicit one, so a failing
    /// multi-row statement is atomic.
    pub(crate) txn: TxnRuntime,
    /// The durable half (WAL, checkpoint paths) — `None` when in-memory.
    pub(crate) storage: Option<crate::durability::PersistentStorage>,
    /// The live metrics registry: buffer-pool, WAL, checkpoint,
    /// transaction, plan-cache, and session instruments
    /// (docs/OBSERVABILITY.md).
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Engine-level instruments, pre-resolved so hot paths never take
    /// the registry lock.
    pub(crate) engine_metrics: EngineMetrics,
    /// Ring buffer of statements slower than the configured threshold.
    pub(crate) slow_log: SlowQueryLog,
}

impl Database {
    /// An in-memory database with a default-size buffer pool.
    pub fn new_in_memory() -> Self {
        Self::with_pool(Arc::new(BufferPool::new(Box::new(MemStore::new()), 1024)))
    }

    /// A database over a caller-supplied buffer pool (benchmarks use this
    /// to control pool size and read I/O counters).
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        // the pool owns its counters; the registry only names them
        let pm = pool.metrics();
        metrics.register_counter("buffer.hits", pm.hits);
        metrics.register_counter("buffer.misses", pm.misses);
        metrics.register_counter("buffer.evictions", pm.evictions);
        metrics.register_counter("buffer.dirty_writebacks", pm.dirty_writebacks);
        let engine_metrics = EngineMetrics::new(&metrics);
        Database {
            pool,
            catalog: Catalog::new(),
            clock: LogicalClock::new(),
            auth: AuthManager::new(),
            approval: ApprovalManager::new(),
            deps: DependencyManager::new(),
            txn: TxnRuntime::new(),
            storage: None,
            metrics,
            engine_metrics,
            slow_log: SlowQueryLog::default(),
        }
    }

    /// The shared buffer pool (I/O counters live here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The live metrics registry (docs/OBSERVABILITY.md).  Snapshot it
    /// with [`Self::metrics_snapshot`]; tests and tools may also
    /// register their own instruments here.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time snapshot of every registered metric — counters,
    /// gauges, and latency histograms, sorted by name.  Cheap (relaxed
    /// atomic loads); safe to poll.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Engine-level instruments (plan cache, transactions, sessions).
    pub(crate) fn engine_metrics(&self) -> &EngineMetrics {
        &self.engine_metrics
    }

    // ---- slow-query log (docs/OBSERVABILITY.md) ----

    /// Record statements slower than `threshold` in a fixed-size ring
    /// buffer, surfaced by `SHOW SLOW QUERIES` and [`Self::slow_queries`].
    /// `None` (the default) disables recording.  Applies to statements
    /// run through [`crate::Session::run`] / [`crate::Session::execute`]
    /// (and the `Database::execute*` wrappers); streaming cursors are
    /// not recorded — their cost accrues as the caller pulls.
    pub fn set_slow_query_threshold(&mut self, threshold: Option<Duration>) {
        self.slow_log.threshold_ns =
            threshold.map(|d| d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// The configured slow-query threshold, if any.
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        self.slow_log.threshold_ns.map(Duration::from_nanos)
    }

    /// The slow-query ring buffer, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log.entries.iter().cloned().collect()
    }

    /// Session callback: one statement finished in `duration`.  Bumps
    /// the session counters and, when a threshold is set and exceeded,
    /// records the statement in the slow-query ring.
    pub(crate) fn note_statement(
        &mut self,
        sql: &str,
        user: &str,
        duration: Duration,
        result: Option<&QueryResult>,
    ) {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        self.engine_metrics.statements.inc();
        self.engine_metrics.statement_latency_ns.record(ns);
        let Some(threshold) = self.slow_log.threshold_ns else {
            return;
        };
        if ns < threshold {
            return;
        }
        self.engine_metrics.slow_queries.inc();
        let plan_summary = match result.and_then(|q| q.stats.as_ref()) {
            Some(st) => format!(
                "join_order={:?} indexes={:?} full_scans={} index_probes={} \
                 seq_index_probes={} rows_fetched={} limit_pushdowns={}",
                st.join_order,
                st.chosen_indexes,
                st.full_scans,
                st.index_probes,
                st.seq_index_probes,
                st.rows_fetched,
                st.limit_pushdowns
            ),
            None => String::new(),
        };
        if self.slow_log.entries.len() == SLOW_QUERY_LOG_CAP {
            self.slow_log.entries.pop_front();
        }
        self.slow_log.entries.push_back(SlowQuery {
            at: self.clock.now(),
            user: user.to_string(),
            sql: sql.to_string(),
            duration_ns: ns,
            plan_summary,
        });
    }

    /// The catalog (read access for benchmarks and tests).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The dependency manager.
    pub fn dependencies(&self) -> &DependencyManager {
        &self.deps
    }

    /// The approval manager.
    pub fn approval(&self) -> &ApprovalManager {
        &self.approval
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Register an executable procedure body (§5) under `name`.
    pub fn register_procedure(&mut self, name: &str, f: impl Fn(&[Value]) -> Value + 'static) {
        self.deps.register_procedure(name, f);
    }

    /// Open a [`Session`] acting as `user` — the prepared-statement /
    /// parameter-binding / streaming-cursor entry point (see
    /// `docs/API.md`).  Transport-agnostic tools should program against
    /// [`crate::client::Connection`] instead, which sessions implement.
    pub fn session(&mut self, user: &str) -> Session<'_> {
        Session::new(self, user)
    }

    /// Does `user` exist in the authorization manager?  (`admin` always
    /// does.)  The wire-protocol server validates `Hello` frames with
    /// this before binding a connection to a user.
    pub fn user_exists(&self, user: &str) -> bool {
        self.auth.user_exists(user)
    }

    /// Execute a statement as `admin`.
    ///
    /// **Legacy one-shot entry point** — a thin wrapper over
    /// [`Session::run`] via [`Self::execute_as`], kept because half the
    /// test suite and every doc example reads better with it.  New code
    /// should open a [`Session`] (or a [`crate::client::Connection`])
    /// and use its prepared-statement / cursor surface; SELECT results
    /// from either path carry their executor counters in
    /// [`QueryResult::stats`].
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute_as(sql, ADMIN)
    }

    /// Execute a statement as a given user (parse + execute in one step;
    /// statements with parameter placeholders must instead be prepared
    /// through a [`Session`]).
    ///
    /// **Legacy one-shot entry point** — literally
    /// `self.session(user).run(sql)`.  Prefer holding the [`Session`]
    /// yourself; it amortizes plan caching across statements.
    pub fn execute_as(&mut self, sql: &str, user: &str) -> Result<QueryResult> {
        self.session(user).run(sql)
    }

    /// Authorize `user` to read every FROM table of a SELECT, including
    /// the branches of UNION/INTERSECT/EXCEPT chains (shared by the
    /// one-shot execute path and session query cursors).
    pub(crate) fn check_select_auth(&self, sel: &crate::ast::Select, user: &str) -> Result<()> {
        let mut next = Some(sel);
        while let Some(sel) = next {
            for tref in &sel.from {
                let owner = &self.catalog.table(&tref.table)?.owner;
                self.auth
                    .check(user, &tref.table, owner, Privilege::Select)?;
            }
            next = sel.set_op.as_ref().map(|(_, right)| &**right);
        }
        Ok(())
    }

    /// Run a SELECT with explicit executor options, returning the result
    /// together with execution counters.  This is the instrumentation
    /// path used by benchmarks and the pushdown regression tests; it
    /// runs with admin visibility and does not tick the logical clock.
    ///
    /// **Legacy instrumentation entry point** — the counters it returns
    /// as a tuple are now also attached to every SELECT result as
    /// [`QueryResult::stats`] (and reachable incrementally from
    /// [`crate::RowCursor::stats`]), so new code only needs this wrapper
    /// when it wants non-default [`ExecOptions`].
    pub fn query_traced(&self, sql: &str, opts: &ExecOptions) -> Result<(QueryResult, ExecStats)> {
        let (stmt, param_count) = crate::parser::parse_prepared(sql)?;
        if param_count > 0 {
            return Err(BdbmsError::param_mismatch(format!(
                "statement expects {param_count} parameter(s); prepare it and \
                 pass them through a session"
            )));
        }
        match stmt {
            Statement::Select(sel) => {
                let mut stats = ExecStats::default();
                let mut qr = run_select_traced(&self.catalog, &sel, opts, &mut stats)?;
                qr.stats = Some(stats.clone());
                Ok((qr, stats))
            }
            _ => Err(BdbmsError::invalid("query_traced expects a SELECT")),
        }
    }

    // ---- transactions (see `crate::txn` and docs/TRANSACTIONS.md) ----

    /// Observable transaction state: [`TxnStatus::Idle`], or
    /// [`TxnStatus::Active`] with the live savepoint count.
    pub fn transaction_status(&self) -> TxnStatus {
        if self.txn.explicit() {
            TxnStatus::Active {
                savepoints: self.txn.savepoint_count(),
            }
        } else {
            TxnStatus::Idle
        }
    }

    /// Is an explicit transaction (`BEGIN` without a matching
    /// `COMMIT`/`ROLLBACK`) open?
    pub fn in_transaction(&self) -> bool {
        self.txn.explicit()
    }

    pub(crate) fn txn_begin(&mut self) -> Result<QueryResult> {
        if self.txn.explicit() {
            return Err(BdbmsError::txn_state(
                "BEGIN inside an open transaction (nested transactions are \
                 not supported; use SAVEPOINT)",
            ));
        }
        self.txn.begin_explicit();
        Ok(QueryResult::message("transaction started"))
    }

    pub(crate) fn txn_commit(&mut self) -> Result<QueryResult> {
        if !self.txn.explicit() {
            return Err(BdbmsError::txn_state("COMMIT outside a transaction"));
        }
        // WAL first: only after the redo records + commit record are on
        // disk (per the durability policy) may the commit be
        // acknowledged.  A WAL failure rolls the transaction back — its
        // partial tail has no commit record, so recovery discards it.
        if let Err(e) = self.wal_commit() {
            let ops = self.txn.take_all();
            self.apply_undo(ops);
            self.engine_metrics.rollbacks.inc();
            return Err(BdbmsError::new(
                e.code(),
                format!("commit failed and was rolled back: {}", e.message()),
            ));
        }
        self.txn.commit();
        self.engine_metrics.commits.inc();
        self.maybe_checkpoint();
        Ok(QueryResult::message("transaction committed"))
    }

    pub(crate) fn txn_rollback(&mut self) -> Result<QueryResult> {
        if !self.txn.explicit() {
            return Err(BdbmsError::txn_state("ROLLBACK outside a transaction"));
        }
        let ops = self.txn.take_all();
        self.apply_undo(ops);
        self.engine_metrics.rollbacks.inc();
        Ok(QueryResult::message("transaction rolled back"))
    }

    pub(crate) fn txn_savepoint(&mut self, name: &str) -> Result<QueryResult> {
        if !self.txn.explicit() {
            return Err(BdbmsError::txn_state("SAVEPOINT outside a transaction"));
        }
        self.txn.add_savepoint(name);
        Ok(QueryResult::message(format!("savepoint `{name}` created")))
    }

    pub(crate) fn txn_rollback_to(&mut self, name: &str) -> Result<QueryResult> {
        if !self.txn.explicit() {
            return Err(BdbmsError::txn_state(
                "ROLLBACK TO SAVEPOINT outside a transaction",
            ));
        }
        let mark = self
            .txn
            .find_savepoint(name)
            .ok_or_else(|| BdbmsError::txn_state(format!("unknown savepoint `{name}`")))?;
        let ops = self.txn.take_after(mark);
        self.apply_undo(ops);
        Ok(QueryResult::message(format!(
            "rolled back to savepoint `{name}`"
        )))
    }

    pub(crate) fn txn_release(&mut self, name: &str) -> Result<QueryResult> {
        if !self.txn.explicit() {
            return Err(BdbmsError::txn_state(
                "RELEASE SAVEPOINT outside a transaction",
            ));
        }
        if !self.txn.release_savepoint(name) {
            return Err(BdbmsError::txn_state(format!("unknown savepoint `{name}`")));
        }
        Ok(QueryResult::message(format!("savepoint `{name}` released")))
    }

    /// Apply recorded undo ops (newest first) and, if anything was
    /// undone, bump the catalog generation: the generation only ever
    /// moves forward, so a prepared plan cached against rolled-back DDL
    /// can never be replayed.
    ///
    /// Redo collection is suspended for the duration: the records of the
    /// rolled-back work were already truncated from the buffer, and the
    /// undo ops' own table mutations must not log fresh ones.
    pub(crate) fn apply_undo(&mut self, ops: Vec<UndoOp>) {
        if ops.is_empty() {
            return;
        }
        self.txn.redo_suspend();
        for op in ops.into_iter().rev() {
            op.apply(&mut self.catalog, &mut self.deps, &mut self.approval);
        }
        self.txn.redo_resume();
        self.catalog.bump_generation();
    }

    /// Append a redo record for a mutation performed outside the tables'
    /// own sinks (DDL, auth, approval, rules).  No-op when in-memory.
    fn redo(&self, build: impl FnOnce() -> crate::durability::WalRecord) {
        self.txn.redo_push(build);
    }

    /// Run `f` inside the implicit-transaction envelope: on success the
    /// redo records are committed to the WAL (durable databases) and the
    /// undo log discarded; on failure — of `f` *or* of the WAL write —
    /// every applied effect is rolled back.  When a transaction is
    /// already recording, `f` simply joins it.
    fn with_implicit<R>(&mut self, f: impl FnOnce(&mut Self) -> Result<R>) -> Result<R> {
        if self.txn.recording() {
            return f(self);
        }
        self.txn.begin_implicit();
        match f(self) {
            Ok(r) => {
                if let Err(e) = self.wal_commit() {
                    let ops = self.txn.take_all();
                    self.apply_undo(ops);
                    self.engine_metrics.rollbacks.inc();
                    return Err(BdbmsError::new(
                        e.code(),
                        format!("commit failed and was rolled back: {}", e.message()),
                    ));
                }
                self.txn.commit();
                self.engine_metrics.commits.inc();
                self.maybe_checkpoint();
                Ok(r)
            }
            Err(e) => {
                let ops = self.txn.take_all();
                self.apply_undo(ops);
                self.engine_metrics.rollbacks.inc();
                Err(e)
            }
        }
    }

    /// Push the first-touch snapshot of a table's non-row state (stats,
    /// outdated bitmap, row allocator, deletion-log length).  Must run
    /// *before* the mutation it covers.
    fn rec_touch_table(&mut self, table: &str) {
        if !self.txn.table_needs_snapshot(table) {
            return;
        }
        if let Ok(t) = self.catalog.table(table) {
            let op = UndoOp::RestoreTableState {
                table: t.name.clone(),
                stats: t.stats().clone(),
                outdated: t.outdated.clone(),
                next_row: t.peek_next_row(),
                deleted_log_len: t.deleted_log.len(),
            };
            self.txn.push(op);
        }
    }

    /// Push the first-touch snapshot of an annotation set (id watermark
    /// and archived flags).  Must run *before* the mutation it covers.
    fn rec_touch_ann_set(&mut self, table: &str, set: &str) {
        if !self.txn.ann_set_needs_snapshot(table, set) {
            return;
        }
        if let Ok(t) = self.catalog.table(table) {
            if let Some(s) = t.ann_set(set) {
                let op = UndoOp::RestoreAnnSet {
                    table: t.name.clone(),
                    set: s.name.clone(),
                    next_id: s.next_id(),
                    flags: s.archived_flags(),
                };
                self.txn.push(op);
            }
        }
    }

    /// Push the first-touch snapshot of the approval log.  Must run
    /// *before* the append it covers.
    fn rec_touch_approval(&mut self) {
        if self.txn.approval_needs_snapshot() {
            let (len, next_id) = self.approval.log_watermark();
            self.txn.push(UndoOp::RestoreApprovalLog { len, next_id });
        }
    }

    /// Statements whose effects live outside the undo log's reach
    /// (authorization and approval-workflow state) — rejected inside an
    /// explicit transaction.
    fn non_transactional(stmt: &Statement) -> Option<&'static str> {
        Some(match stmt {
            Statement::CreateUser { .. } => "CREATE USER",
            Statement::Grant { .. } => "GRANT",
            Statement::Revoke { .. } => "REVOKE",
            Statement::StartContentApproval { .. } => "START CONTENT APPROVAL",
            Statement::StopContentApproval { .. } => "STOP CONTENT APPROVAL",
            Statement::ApproveOperation { .. } => "APPROVE OPERATION",
            Statement::DisapproveOperation { .. } => "DISAPPROVE OPERATION",
            // COPY commits through a single BulkLoad record and then
            // *forces a checkpoint* — which cannot run inside an open
            // transaction, so neither can COPY
            Statement::Copy { .. } => "COPY",
            _ => return None,
        })
    }

    /// Execute a parsed statement.
    ///
    /// Inside an explicit transaction the statement runs against the
    /// open undo log with statement-level atomicity (a failure undoes
    /// the statement's own effects and leaves the transaction usable).
    /// Otherwise the statement wraps itself in an **implicit
    /// transaction**: on error every already-applied effect — rows of a
    /// multi-row INSERT, earlier rows of an UPDATE, cascade recomputes —
    /// is rolled back, so statements are atomic.
    pub fn execute_stmt(&mut self, stmt: Statement, user: &str) -> Result<QueryResult> {
        // Transaction control is the Session's state machine
        // (`Session::run` and `Session::execute` route these before they
        // get here); reaching one directly is a state-machine bypass.
        if matches!(
            stmt,
            Statement::Begin
                | Statement::Commit
                | Statement::Rollback
                | Statement::Savepoint { .. }
                | Statement::RollbackTo { .. }
                | Statement::Release { .. }
        ) {
            return Err(BdbmsError::txn_state(
                "transaction control statements run through a Session \
                 (Database::execute wraps one)",
            ));
        }
        if self.txn.explicit() {
            if let Some(what) = Self::non_transactional(&stmt) {
                return Err(BdbmsError::txn_state(format!(
                    "{what} is non-transactional; run it outside BEGIN…COMMIT"
                )));
            }
            let mark = self.txn.watermark();
            let r = self.execute_stmt_inner(stmt, user);
            match &r {
                // drop this statement's now-redundant snapshot copies so
                // long transactions hold one snapshot per object per
                // frame, not per statement
                Ok(_) => self.txn.statement_succeeded(mark),
                Err(_) => {
                    let ops = self.txn.take_after(mark);
                    self.apply_undo(ops);
                }
            }
            r
        } else {
            let copy_barrier = matches!(stmt, Statement::Copy { .. });
            // implicit transaction: atomic in memory AND on disk — the
            // statement's redo records reach the WAL only on success
            let r = self.with_implicit(|db| db.execute_stmt_inner(stmt, user));
            if copy_barrier && r.is_ok() {
                // WAL-bypass barrier: the committed BulkLoad record's
                // replay re-reads the source file, so fold the loaded
                // rows into the checkpoint image now and close that
                // window.  Best-effort — the commit itself is already
                // durable, and replay covers a checkpoint that fails.
                let _ = self.checkpoint();
            }
            r
        }
    }

    /// Execute a parsed statement against the open undo log.
    fn execute_stmt_inner(&mut self, stmt: Statement, user: &str) -> Result<QueryResult> {
        self.clock.tick();
        match stmt {
            Statement::CreateTable { name, columns } => self.create_table(name, columns, user),
            Statement::DropTable { name } => self.drop_table(&name, user),
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                self.require_owner(&table, user)?;
                self.catalog
                    .table_mut(&table)?
                    .create_index(&name, &column)?;
                self.txn.push(UndoOp::UnCreateIndex {
                    table: table.clone(),
                    index: name.clone(),
                });
                // a new access path invalidates cached prepared plans
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "index `{name}` created on `{table}`"
                )))
            }
            Statement::DropIndex { name, table } => {
                self.require_owner(&table, user)?;
                // resolve the indexed column first: rollback recreates
                // the index by backfilling over that column
                let column = {
                    let t = self.catalog.table(&table)?;
                    let idx = t.index_named(&name).ok_or_else(|| {
                        BdbmsError::not_found(format!("index `{name}` on `{table}`"))
                    })?;
                    t.schema.columns()[idx.column].name.clone()
                };
                self.catalog.table_mut(&table)?.drop_index(&name)?;
                self.txn.push(UndoOp::UnDropIndex {
                    table: table.clone(),
                    index: name.clone(),
                    column,
                });
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "index `{name}` dropped from `{table}`"
                )))
            }
            Statement::CreateSequenceIndex {
                name,
                table,
                column,
                kind,
            } => {
                self.require_owner(&table, user)?;
                self.catalog
                    .table_mut(&table)?
                    .create_seq_index(&name, &column, kind)?;
                self.txn.push(UndoOp::UnCreateSeqIndex {
                    table: table.clone(),
                    index: name.clone(),
                });
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "sequence index `{name}` ({}) created on `{table}`",
                    kind.as_str()
                )))
            }
            Statement::DropSequenceIndex { name, table } => {
                self.require_owner(&table, user)?;
                // resolve column + kind first: rollback recreates the
                // index by backfilling over that column with that backend
                let (column, kind) = {
                    let t = self.catalog.table(&table)?;
                    let sidx = t.seq_index_named(&name).ok_or_else(|| {
                        BdbmsError::not_found(format!("sequence index `{name}` on `{table}`"))
                    })?;
                    (t.schema.columns()[sidx.column].name.clone(), sidx.kind)
                };
                self.catalog.table_mut(&table)?.drop_seq_index(&name)?;
                self.txn.push(UndoOp::UnDropSeqIndex {
                    table: table.clone(),
                    index: name.clone(),
                    column,
                    kind,
                });
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "sequence index `{name}` dropped from `{table}`"
                )))
            }
            Statement::Copy {
                table,
                path,
                format,
            } => self.do_copy(&table, &path, format, user),
            Statement::CreateAnnotationTable {
                name,
                on,
                cell_scheme,
            } => self.create_annotation_table(&name, &on, cell_scheme, user),
            Statement::DropAnnotationTable { name, on } => {
                self.drop_annotation_table(&name, &on, user)
            }
            Statement::AddAnnotation { to, value, on } => self.add_annotation(to, &value, on, user),
            Statement::ArchiveAnnotation { from, between, on } => {
                self.archive_restore(from, between, on, true, user)
            }
            Statement::RestoreAnnotation { from, between, on } => {
                self.archive_restore(from, between, on, false, user)
            }
            Statement::Select(sel) => {
                self.check_select_auth(&sel, user)?;
                let mut stats = ExecStats::default();
                let mut qr =
                    run_select_traced(&self.catalog, &sel, &ExecOptions::default(), &mut stats)?;
                qr.stats = Some(stats);
                Ok(qr)
            }
            Statement::Insert { table, rows } => {
                let mut inserted = Vec::new();
                for row in rows {
                    inserted.push(self.do_insert(&table, &row, user)?);
                }
                Ok(QueryResult::affected(inserted.len()))
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let n = self
                    .do_update(&table, &sets, where_clause.as_ref(), user)?
                    .len();
                Ok(QueryResult::affected(n))
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let n = self
                    .do_delete(&table, where_clause.as_ref(), user, None)?
                    .len();
                Ok(QueryResult::affected(n))
            }
            Statement::CreateUser { name, groups } => {
                if user != ADMIN {
                    return Err(BdbmsError::unauthorized("only admin may create users"));
                }
                self.auth.create_user(&name, &groups)?;
                self.redo(|| crate::durability::WalRecord::UserCreate {
                    name: name.clone(),
                    groups: groups.clone(),
                });
                Ok(QueryResult::message(format!("user `{name}` created")))
            }
            Statement::Grant {
                privileges,
                table,
                to,
            } => {
                self.require_owner(&table, user)?;
                self.auth.grant(&to, &table, &privileges);
                self.redo(|| crate::durability::WalRecord::Grant {
                    grantee: to.clone(),
                    table: table.clone(),
                    privileges: privileges.clone(),
                });
                Ok(QueryResult::message(format!(
                    "granted on `{table}` to `{to}`"
                )))
            }
            Statement::Revoke {
                privileges,
                table,
                from,
            } => {
                self.require_owner(&table, user)?;
                self.auth.revoke(&from, &table, &privileges);
                self.redo(|| crate::durability::WalRecord::Revoke {
                    grantee: from.clone(),
                    table: table.clone(),
                    privileges: privileges.clone(),
                });
                Ok(QueryResult::message(format!(
                    "revoked on `{table}` from `{from}`"
                )))
            }
            Statement::StartContentApproval {
                table,
                columns,
                approved_by,
            } => {
                self.require_owner(&table, user)?;
                self.catalog.table(&table)?; // must exist
                let cols = if columns.is_empty() {
                    None
                } else {
                    Some(columns)
                };
                self.approval.start(&table, cols.clone(), &approved_by);
                self.redo(|| crate::durability::WalRecord::ApprovalStart {
                    table: table.clone(),
                    columns: cols,
                    approver: approved_by.clone(),
                });
                Ok(QueryResult::message(format!(
                    "content approval started on `{table}`"
                )))
            }
            Statement::StopContentApproval { table, columns } => {
                self.require_owner(&table, user)?;
                self.approval.stop(&table, &columns);
                self.redo(|| crate::durability::WalRecord::ApprovalStop {
                    table: table.clone(),
                    columns: columns.clone(),
                });
                Ok(QueryResult::message(format!(
                    "content approval stopped on `{table}`"
                )))
            }
            Statement::ApproveOperation { id } => self.decide(id, true, user),
            Statement::DisapproveOperation { id } => self.decide(id, false, user),
            Statement::ShowPending { table } => {
                let mut qr = QueryResult {
                    columns: vec![
                        "id".into(),
                        "table".into(),
                        "user".into(),
                        "time".into(),
                        "status".into(),
                        "description".into(),
                    ],
                    ..Default::default()
                };
                for op in self.approval.pending(table.as_deref()) {
                    qr.rows.push(AnnRow::plain(vec![
                        Value::Int(op.id.raw() as i64),
                        Value::Text(op.table.clone()),
                        Value::Text(op.user.clone()),
                        Value::Timestamp(op.time),
                        Value::Text(op.status.to_string()),
                        Value::Text(op.description.clone()),
                    ]));
                }
                Ok(qr)
            }
            Statement::ShowOutdated { table } => self.show_outdated(table.as_deref()),
            Statement::Check { table } => self.run_check(table.as_deref()),
            Statement::Explain { analyze, stmt } => match *stmt {
                Statement::Select(sel) => {
                    self.check_select_auth(&sel, user)?;
                    crate::executor::explain_select(
                        &self.catalog,
                        &sel,
                        &ExecOptions::default(),
                        analyze,
                    )
                }
                _ => Err(BdbmsError::invalid("EXPLAIN supports only SELECT statements")),
            },
            Statement::ShowSlowQueries => {
                let mut qr = QueryResult {
                    columns: vec![
                        "time".to_string(),
                        "user".to_string(),
                        "duration_us".to_string(),
                        "plan".to_string(),
                        "sql".to_string(),
                    ],
                    ..Default::default()
                };
                for q in self.slow_queries() {
                    qr.rows.push(AnnRow::plain(vec![
                        Value::Timestamp(q.at),
                        Value::Text(q.user),
                        Value::Int((q.duration_ns / 1_000) as i64),
                        Value::Text(q.plan_summary),
                        Value::Text(q.sql),
                    ]));
                }
                Ok(qr)
            }
            Statement::CreateDependencyRule {
                name,
                from,
                to,
                procedure,
                executable,
                invertible,
                link,
            } => self.create_dependency_rule(
                name, from, to, procedure, executable, invertible, link, user,
            ),
            Statement::DropDependencyRule { name } => {
                if user != ADMIN {
                    return Err(BdbmsError::unauthorized(
                        "only admin may drop dependency rules",
                    ));
                }
                let pos = self.deps.rule_position(&name).unwrap_or(0);
                let rule = self.deps.drop_rule(&name)?;
                self.txn.push(UndoOp::UnDropRule {
                    pos,
                    rule: Box::new(rule),
                });
                self.redo(|| crate::durability::WalRecord::RuleDrop { name: name.clone() });
                Ok(QueryResult::message(format!("rule `{name}` dropped")))
            }
            Statement::Analyze { table } => {
                let owner = self.catalog.table(&table)?.owner.clone();
                self.auth.check(user, &table, &owner, Privilege::Select)?;
                // the snapshot holds the incremental stats ANALYZE replaces
                self.rec_touch_table(&table);
                let rows = self.catalog.table_mut(&table)?.analyze()?;
                // fresh stats can change cost-based choices: replan
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "analyzed `{table}`: {rows} row(s)"
                )))
            }
            Statement::Validate {
                table,
                columns,
                where_clause,
            } => self.validate(&table, &columns, where_clause.as_ref(), user),
            Statement::Begin
            | Statement::Commit
            | Statement::Rollback
            | Statement::Savepoint { .. }
            | Statement::RollbackTo { .. }
            | Statement::Release { .. } => {
                unreachable!("transaction control is routed by execute_stmt")
            }
        }
    }

    fn require_owner(&self, table: &str, user: &str) -> Result<()> {
        let t = self.catalog.table(table)?;
        if user == ADMIN {
            return Ok(());
        }
        if t.owner.eq_ignore_ascii_case(user) {
            Ok(())
        } else {
            Err(BdbmsError::unauthorized(format!(
                "user `{user}` is not the owner of `{table}`"
            )))
        }
    }

    // ---- bulk load (COPY) ----

    /// `COPY <table> FROM '<path>'`: the bulk-load protocol.  Rows go to
    /// the heap with index/stats/redo maintenance deferred
    /// (`crate::ingest`), the WAL gets one logical `BulkLoad` record for
    /// the whole file, and the caller (`execute_stmt`) forces a
    /// checkpoint after the implicit commit.  Rollback on failure is the
    /// pushed `UnBulkLoad` op (truncate the appended rows) plus the
    /// first-touch snapshot (restore stats / allocator / bitmap) —
    /// pushed first, so applied last.
    fn do_copy(
        &mut self,
        table: &str,
        path: &str,
        format: Option<CopyFormat>,
        user: &str,
    ) -> Result<QueryResult> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Insert)?;
        if self.approval.config(table).is_some() {
            return Err(BdbmsError::invalid(format!(
                "COPY into `{table}` is not supported while content approval \
                 monitors it (bulk loads bypass per-row operation logging)"
            )));
        }
        let format = crate::ingest::resolve_format(std::path::Path::new(path), format);
        self.rec_touch_table(table);
        let first_row = self.catalog.table(table)?.peek_next_row();
        self.txn.push(UndoOp::UnBulkLoad {
            table: table.to_string(),
            first_row,
        });
        // the bulk path skips per-row redo records by design; suspend
        // the sink so nothing incidental leaks in, then log the single
        // logical record for the whole load
        self.txn.redo_suspend();
        let loaded = self
            .catalog
            .table_mut(table)
            .and_then(|t| crate::ingest::bulk_load(t, std::path::Path::new(path), format));
        self.txn.redo_resume();
        let rows = loaded?;
        self.redo(|| crate::durability::WalRecord::BulkLoad {
            table: table.to_string(),
            path: path.to_string(),
            format,
            rows,
        });
        // new rows + rebuilt stats invalidate cached plans
        self.catalog.bump_generation();
        let mut qr = QueryResult::affected(rows as usize);
        qr.message = Some(format!(
            "copied {rows} row(s) into `{table}` from `{path}` ({})",
            format.as_str()
        ));
        Ok(qr)
    }

    // ---- DDL ----

    fn create_table(
        &mut self,
        name: String,
        columns: Vec<(String, DataType)>,
        user: &str,
    ) -> Result<QueryResult> {
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| bdbms_common::ColumnDef::new(n, t))
                .collect(),
        )?;
        let mut table = Table::create(name.clone(), schema, user, self.pool.clone())?;
        // durable databases share one redo sink across every table
        table.set_redo(self.txn.redo_sink());
        self.redo(|| crate::durability::WalRecord::TableCreate {
            name: table.name.clone(),
            owner: table.owner.clone(),
            schema: table.schema.clone(),
        });
        self.catalog.add_table(table)?;
        self.txn.push(UndoOp::UnCreateTable { name: name.clone() });
        Ok(QueryResult::message(format!("table `{name}` created")))
    }

    fn drop_table(&mut self, name: &str, user: &str) -> Result<QueryResult> {
        self.require_owner(name, user)?;
        // the dropped table moves into the undo log wholesale: rollback
        // puts it back byte-identical (heap, indexes, annotations, stats)
        let table = self.catalog.drop_table(name)?;
        self.redo(|| crate::durability::WalRecord::TableDrop {
            name: table.name.clone(),
        });
        self.txn.push(UndoOp::UnDropTable {
            table: Box::new(table),
        });
        Ok(QueryResult::message(format!("table `{name}` dropped")))
    }

    fn create_annotation_table(
        &mut self,
        name: &str,
        on: &str,
        cell_scheme: bool,
        user: &str,
    ) -> Result<QueryResult> {
        self.require_owner(on, user)?;
        let table = self.catalog.table_mut(on)?;
        if table.ann_set(name).is_some() {
            return Err(BdbmsError::already_exists(format!(
                "annotation table `{name}` on `{on}`"
            )));
        }
        table.add_ann_set(AnnotationSet::new(name, cell_scheme));
        self.txn.push(UndoOp::UnCreateAnnSet {
            table: on.to_string(),
            set: name.to_string(),
        });
        Ok(QueryResult::message(format!(
            "annotation table `{name}` created on `{on}`"
        )))
    }

    fn drop_annotation_table(&mut self, name: &str, on: &str, user: &str) -> Result<QueryResult> {
        self.require_owner(on, user)?;
        let table = self.catalog.table_mut(on)?;
        let pos = table
            .ann_sets
            .iter()
            .position(|s| s.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| BdbmsError::not_found(format!("annotation table `{name}` on `{on}`")))?;
        // like DROP TABLE, the set moves into the undo log wholesale
        let set = table.remove_ann_set_at(pos);
        self.txn.push(UndoOp::UnDropAnnSet {
            table: on.to_string(),
            pos,
            set: Box::new(set),
        });
        Ok(QueryResult::message(format!(
            "annotation table `{name}` dropped from `{on}`"
        )))
    }

    // ---- DML with approval + dependency integration ----

    fn bindings_for(&self, table: &str) -> Result<Vec<ColBinding>> {
        let t = self.catalog.table(table)?;
        Ok(t.schema
            .columns()
            .iter()
            .map(|c| ColBinding::new(Some(&t.name), &c.name))
            .collect())
    }

    /// Insert one literal row; returns the new row number.
    fn do_insert(&mut self, table: &str, row: &[Expr], user: &str) -> Result<u64> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Insert)?;
        let values: Vec<Value> = row
            .iter()
            .map(|e| eval(e, &[], &[]))
            .collect::<Result<_>>()?;
        self.rec_touch_table(table);
        let t = self.catalog.table_mut(table)?;
        let row_no = t.insert(values)?;
        let all_cols: Vec<String> = t.schema.names().iter().map(|s| s.to_string()).collect();
        self.txn.push(UndoOp::UnInsert {
            table: table.to_string(),
            row_no,
        });
        // content approval (§6)
        if self.approval.monitors(table, &all_cols) && !self.is_approver(user, table) {
            let time = self.clock.now();
            self.rec_touch_approval();
            let id = self.approval.log_operation(
                table,
                user,
                time,
                format!("INSERT INTO {table} (row {row_no})"),
                InverseOp::DeleteRow { row_no },
            );
            self.redo(|| crate::durability::WalRecord::ApprovalLogged {
                op: self.approval.get(id).expect("just logged").clone(),
            });
        }
        // dependency cascade: the new row may feed *computable* derived
        // cells; it never outdates values supplied with the fresh row
        let arity = self.catalog.table(table)?.schema.arity();
        for col in 0..arity {
            self.cascade(table, row_no, col, CascadeMode::InsertFresh)?;
        }
        Ok(row_no)
    }

    /// Update matching rows; returns the touched row numbers.
    fn do_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        where_clause: Option<&Expr>,
        user: &str,
    ) -> Result<Vec<u64>> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Update)?;
        let bindings = self.bindings_for(table)?;
        let t = self.catalog.table(table)?;
        let set_cols: Vec<usize> = sets
            .iter()
            .map(|(c, _)| t.schema.require(c))
            .collect::<Result<_>>()?;
        let touched_names: Vec<String> = sets.iter().map(|(c, _)| c.clone()).collect();
        // plan: evaluate per matching row (row selection shares the
        // executor's pushdown/index planning)
        #[allow(clippy::type_complexity)]
        let mut plans: Vec<(u64, Vec<Value>, Vec<Value>, Vec<(usize, Value)>)> = Vec::new();
        for (row_no, values) in plan::filter_rows(t, &t.name, where_clause)? {
            let mut new_values = values.clone();
            let mut old: Vec<(usize, Value)> = Vec::new();
            for ((_, e), &col) in sets.iter().zip(&set_cols) {
                let v = eval(e, &bindings, &values)?;
                old.push((col, values[col].clone()));
                new_values[col] = v;
            }
            plans.push((row_no, values, new_values, old));
        }
        let monitored =
            self.approval.monitors(table, &touched_names) && !self.is_approver(user, table);
        self.rec_touch_table(table);
        let mut touched = Vec::with_capacity(plans.len());
        for (row_no, old_values, new_values, old) in plans {
            // the undo log keeps the full old image: rollback restores
            // the row (and its index entries) in one logical op
            self.txn.push(UndoOp::UnUpdate {
                table: table.to_string(),
                row_no,
                old: old_values.clone(),
            });
            let t = self.catalog.table_mut(table)?;
            // the row-selection pass already materialized the old values,
            // so index maintenance needs no heap re-read
            t.update_with_old(row_no, &old_values, new_values)?;
            // an explicit update re-evaluates the cell: it is valid again
            // until its own sources change (§5 "Validating outdated data")
            for &(col, _) in &old {
                t.clear_outdated(row_no, col);
            }
            if monitored {
                let time = self.clock.now();
                self.rec_touch_approval();
                let id = self.approval.log_operation(
                    table,
                    user,
                    time,
                    format!(
                        "UPDATE {table} SET {} (row {row_no})",
                        touched_names.join(", ")
                    ),
                    InverseOp::RestoreCells {
                        row_no,
                        old: old.clone(),
                    },
                );
                self.redo(|| crate::durability::WalRecord::ApprovalLogged {
                    op: self.approval.get(id).expect("just logged").clone(),
                });
            }
            for &(col, _) in &old {
                self.cascade(table, row_no, col, CascadeMode::Update)?;
            }
            touched.push(row_no);
        }
        Ok(touched)
    }

    /// Delete matching rows; logs to the deletion log (with the optional
    /// "why deleted" annotation).  Returns deleted row numbers.
    fn do_delete(
        &mut self,
        table: &str,
        where_clause: Option<&Expr>,
        user: &str,
        why: Option<&str>,
    ) -> Result<Vec<u64>> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Delete)?;
        let t = self.catalog.table(table)?;
        let all_cols: Vec<String> = t.schema.names().iter().map(|s| s.to_string()).collect();
        let victims: Vec<u64> = plan::filter_rows(t, &t.name, where_clause)?
            .into_iter()
            .map(|(row_no, _)| row_no)
            .collect();
        let monitored = self.approval.monitors(table, &all_cols) && !self.is_approver(user, table);
        let arity = self.catalog.table(table)?.schema.arity();
        self.rec_touch_table(table);
        for &row_no in &victims {
            // mark dependents stale *before* the source row disappears
            for col in 0..arity {
                self.cascade(table, row_no, col, CascadeMode::Stale)?;
            }
            let time = self.clock.now();
            let t = self.catalog.table_mut(table)?;
            let values = t.delete(row_no)?;
            t.push_deleted(DeletedRow {
                row_no,
                values: values.clone(),
                annotation: why.map(|s| s.to_string()),
                time,
                user: user.to_string(),
            });
            // rollback re-inserts the image; the deletion-log entry is
            // retired by the table snapshot's log watermark
            self.txn.push(UndoOp::UnDelete {
                table: table.to_string(),
                row_no,
                values: values.clone(),
            });
            if monitored {
                self.rec_touch_approval();
                let id = self.approval.log_operation(
                    table,
                    user,
                    time,
                    format!("DELETE FROM {table} (row {row_no})"),
                    InverseOp::InsertRow { row_no, values },
                );
                self.redo(|| crate::durability::WalRecord::ApprovalLogged {
                    op: self.approval.get(id).expect("just logged").clone(),
                });
            }
        }
        Ok(victims)
    }

    fn is_approver(&self, user: &str, table: &str) -> bool {
        match self.approval.config(table) {
            Some(cfg) => self.auth.acts_as(user, &cfg.approver),
            None => false,
        }
    }

    // ---- dependency cascade (§5) ----

    /// Propagate a change of `(table, row_no, col)`.
    fn cascade(&mut self, table: &str, row_no: u64, col: usize, mode: CascadeMode) -> Result<()> {
        let col_name = {
            let t = self.catalog.table(table)?;
            t.schema.columns()[col].name.clone()
        };
        let rules: Vec<DependencyRule> = self
            .deps
            .rules_from(table, &col_name)
            .into_iter()
            .cloned()
            .collect();
        for rule in rules {
            let targets = self.link_targets(&rule, row_no)?;
            for dst_row in targets {
                // the cascade mutates target cells and outdated bits;
                // both are covered by the target table's snapshot
                self.rec_touch_table(&rule.dst_table);
                let dst_col = {
                    let dt = self.catalog.table(&rule.dst_table)?;
                    dt.schema.require(&rule.dst_col)?
                };
                let recompute = mode != CascadeMode::Stale
                    && rule.executable
                    && self.deps.procedure(&rule.procedure).is_some();
                if recompute {
                    // gather the rule's source values from the source row
                    let st = self.catalog.table(&rule.src_table)?;
                    let src_values = st.get(row_no)?;
                    let inputs: Vec<Value> = rule
                        .src_cols
                        .iter()
                        .map(|c| st.schema.require(c).map(|i| src_values[i].clone()))
                        .collect::<Result<_>>()?;
                    let f = self.deps.procedure(&rule.procedure).expect("checked");
                    let new_value = f(&inputs);
                    let dt = self.catalog.table_mut(&rule.dst_table)?;
                    let mut dst_values = dt.get(dst_row)?;
                    if dst_values[dst_col] != new_value {
                        let old = dst_values.clone();
                        dst_values[dst_col] = new_value;
                        dt.update(dst_row, dst_values)?;
                        // recomputed: the cell is current again (Figure 10:
                        // PSequence bits stay 0); downstream saw a genuine
                        // modification, so continue in Update mode
                        dt.clear_outdated(dst_row, dst_col);
                        self.txn.push(UndoOp::UnUpdate {
                            table: rule.dst_table.clone(),
                            row_no: dst_row,
                            old,
                        });
                        self.cascade(&rule.dst_table, dst_row, dst_col, CascadeMode::Update)?;
                    } else {
                        dt.clear_outdated(dst_row, dst_col);
                    }
                } else if mode != CascadeMode::InsertFresh {
                    // non-executable (or unregistered) procedure: mark the
                    // target outdated; freshly inserted rows don't outdate
                    // their own supplied values
                    let dt = self.catalog.table_mut(&rule.dst_table)?;
                    let was = dt.is_outdated(dst_row, dst_col);
                    dt.mark_outdated(dst_row, dst_col);
                    if !was {
                        // downstream of an outdated cell is outdated too
                        self.cascade(&rule.dst_table, dst_row, dst_col, CascadeMode::Stale)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Target rows of a rule for a given source row.
    fn link_targets(&self, rule: &DependencyRule, src_row: u64) -> Result<Vec<u64>> {
        match &rule.link {
            None => {
                // same-table, same-row dependency (paper's Rules 2 and 3)
                if rule.src_table.eq_ignore_ascii_case(&rule.dst_table) {
                    let dt = self.catalog.table(&rule.dst_table)?;
                    Ok(if dt.contains_row(src_row) {
                        vec![src_row]
                    } else {
                        vec![]
                    })
                } else {
                    Err(BdbmsError::dependency(format!(
                        "rule `{}` spans tables but has no LINK",
                        rule.name
                    )))
                }
            }
            Some((src_link, dst_link)) => {
                let st = self.catalog.table(&rule.src_table)?;
                let src_col = st.schema.require(src_link)?;
                let key = st.get(src_row)?[src_col].clone();
                let dt = self.catalog.table(&rule.dst_table)?;
                let dst_col = dt.schema.require(dst_link)?;
                let mut out = Vec::new();
                for (row_no, values) in dt.scan()? {
                    if values[dst_col] == key {
                        out.push(row_no);
                    }
                }
                Ok(out)
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the SQL statement's clauses
    fn create_dependency_rule(
        &mut self,
        name: String,
        from: Vec<(String, String)>,
        to: (String, String),
        procedure: String,
        executable: bool,
        invertible: bool,
        link: Option<(String, String)>,
        user: &str,
    ) -> Result<QueryResult> {
        self.require_owner(&to.0, user)?;
        // validate sources: single table, existing columns
        let src_table = from
            .first()
            .map(|(t, _)| t.clone())
            .ok_or_else(|| BdbmsError::invalid("rule needs a source column"))?;
        if !from.iter().all(|(t, _)| t.eq_ignore_ascii_case(&src_table)) {
            return Err(BdbmsError::invalid(
                "all source columns must come from one table",
            ));
        }
        {
            let st = self.catalog.table(&src_table)?;
            for (_, c) in &from {
                st.schema.require(c)?;
            }
            let dt = self.catalog.table(&to.0)?;
            dt.schema.require(&to.1)?;
        }
        // decode LINK "Table.Col = Table.Col" into column names
        let link_cols = match link {
            None => None,
            Some((a, b)) => {
                let parse_side = |s: &str| -> Result<(String, String)> {
                    s.split_once('.')
                        .map(|(t, c)| (t.to_string(), c.to_string()))
                        .ok_or_else(|| BdbmsError::invalid(format!("bad LINK side `{s}`")))
                };
                let (at, ac) = parse_side(&a)?;
                let (bt, bc) = parse_side(&b)?;
                // sides may come in either order
                let (src_side, dst_side) = if at.eq_ignore_ascii_case(&src_table) {
                    ((at, ac), (bt, bc))
                } else {
                    ((bt, bc), (at, ac))
                };
                if !src_side.0.eq_ignore_ascii_case(&src_table)
                    || !dst_side.0.eq_ignore_ascii_case(&to.0)
                {
                    return Err(BdbmsError::invalid(
                        "LINK must join the rule's source and target tables",
                    ));
                }
                let st = self.catalog.table(&src_table)?;
                st.schema.require(&src_side.1)?;
                let dt = self.catalog.table(&to.0)?;
                dt.schema.require(&dst_side.1)?;
                Some((src_side.1, dst_side.1))
            }
        };
        let rule = DependencyRule {
            id: bdbms_common::ids::RuleId(0),
            name: name.clone(),
            src_table,
            src_cols: from.into_iter().map(|(_, c)| c).collect(),
            dst_table: to.0,
            dst_col: to.1,
            procedure,
            executable,
            invertible,
            link: link_cols,
        };
        let prev_next_id = self.deps.next_rule_id();
        self.deps.add_rule(rule)?;
        self.txn.push(UndoOp::UnAddRule {
            name: name.clone(),
            prev_next_id,
        });
        self.redo(|| crate::durability::WalRecord::RuleAdd {
            rule: self.deps.rule_by_name(&name).expect("just added").clone(),
        });
        Ok(QueryResult::message(format!(
            "dependency rule `{name}` created"
        )))
    }

    // ---- approval decisions ----

    fn decide(&mut self, id: u64, approve: bool, user: &str) -> Result<QueryResult> {
        let op = self
            .approval
            .get(bdbms_common::ids::OperationId(id))?
            .clone();
        // the decision-maker must be the configured approver (or admin)
        let allowed = user == ADMIN
            || match self.approval.config(&op.table) {
                Some(cfg) => self.auth.acts_as(user, &cfg.approver),
                None => false,
            };
        if !allowed {
            return Err(BdbmsError::unauthorized(format!(
                "user `{user}` may not decide operations on `{}`",
                op.table
            )));
        }
        // a failing inverse execution rolls back with the statement, so
        // the decision's status flip must be undoable too
        self.txn.push(UndoOp::RestoreOpStatus {
            id: op.id,
            status: op.status,
        });
        let decided = self
            .approval
            .decide(bdbms_common::ids::OperationId(id), approve)?;
        // replay only re-flips the status: the inverse execution below
        // emits its own row-level records
        self.redo(|| crate::durability::WalRecord::ApprovalDecide { id, approve });
        if approve {
            return Ok(QueryResult::message(format!("operation {id} approved")));
        }
        // §6: execute the inverse statement; dependency tracking then
        // invalidates anything derived from the undone values.
        debug_assert_eq!(decided.status, OpStatus::Disapproved);
        self.rec_touch_table(&decided.table);
        match decided.inverse {
            InverseOp::DeleteRow { row_no } => {
                let arity = self.catalog.table(&decided.table)?.schema.arity();
                for col in 0..arity {
                    self.cascade(&decided.table, row_no, col, CascadeMode::Stale)?;
                }
                let time = self.clock.now();
                let t = self.catalog.table_mut(&decided.table)?;
                let values = t.delete(row_no)?;
                t.push_deleted(DeletedRow {
                    row_no,
                    values: values.clone(),
                    annotation: Some(format!("disapproved operation {id}")),
                    time,
                    user: user.to_string(),
                });
                self.txn.push(UndoOp::UnDelete {
                    table: decided.table.clone(),
                    row_no,
                    values,
                });
            }
            InverseOp::InsertRow { row_no, values } => {
                let t = self.catalog.table_mut(&decided.table)?;
                t.insert_with_row_no(row_no, values)?;
                self.txn.push(UndoOp::UnInsert {
                    table: decided.table.clone(),
                    row_no,
                });
                let arity = self.catalog.table(&decided.table)?.schema.arity();
                for col in 0..arity {
                    self.cascade(&decided.table, row_no, col, CascadeMode::Update)?;
                }
            }
            InverseOp::RestoreCells { row_no, old } => {
                let t = self.catalog.table_mut(&decided.table)?;
                let mut values = t.get(row_no)?;
                let pre_patch = values.clone();
                for (col, v) in &old {
                    values[*col] = v.clone();
                }
                t.update(row_no, values)?;
                self.txn.push(UndoOp::UnUpdate {
                    table: decided.table.clone(),
                    row_no,
                    old: pre_patch,
                });
                for (col, _) in &old {
                    self.cascade(&decided.table, row_no, *col, CascadeMode::Update)?;
                }
            }
        }
        Ok(QueryResult::message(format!(
            "operation {id} disapproved; inverse executed"
        )))
    }

    // ---- annotations (§3) ----

    fn check_ann_write(&self, user: &str, table: &str, set_name: &str) -> Result<()> {
        let t = self.catalog.table(table)?;
        let set = t.ann_set(set_name).ok_or_else(|| {
            BdbmsError::not_found(format!("annotation table `{set_name}` on `{table}`"))
        })?;
        if set.system_only {
            // §4: provenance writes restricted to integration tools
            self.auth
                .check(user, table, &t.owner, Privilege::Provenance)
        } else {
            self.auth.check(user, table, &t.owner, Privilege::Select)
        }
    }

    fn add_annotation(
        &mut self,
        to: Vec<(String, String)>,
        value: &str,
        on: AnnTarget,
        user: &str,
    ) -> Result<QueryResult> {
        for (t, s) in &to {
            self.check_ann_write(user, t, s)?;
            let set = self.catalog.table(t)?.ann_set(s).expect("checked");
            if set.schema_enforced {
                provenance::validate_body(value)?;
            }
        }
        // resolve target cells (and run the wrapped DML, if any)
        let (target_table, rows, cols): (String, Vec<u64>, Vec<usize>) = match on {
            AnnTarget::Select(sel) => select_cells(&self.catalog, &sel)?,
            AnnTarget::Insert(stmt) => match *stmt {
                Statement::Insert { table, rows } => {
                    let arity = self.catalog.table(&table)?.schema.arity();
                    let mut new_rows = Vec::new();
                    for row in rows {
                        new_rows.push(self.do_insert(&table, &row, user)?);
                    }
                    (table, new_rows, (0..arity).collect())
                }
                _ => unreachable!("parser builds Insert"),
            },
            AnnTarget::Update(stmt) => match *stmt {
                Statement::Update {
                    table,
                    sets,
                    where_clause,
                } => {
                    let t = self.catalog.table(&table)?;
                    let cols: Vec<usize> = sets
                        .iter()
                        .map(|(c, _)| t.schema.require(c))
                        .collect::<Result<_>>()?;
                    let rows = self.do_update(&table, &sets, where_clause.as_ref(), user)?;
                    (table, rows, cols)
                }
                _ => unreachable!("parser builds Update"),
            },
            AnnTarget::Delete(stmt) => match *stmt {
                Statement::Delete {
                    table,
                    where_clause,
                } => {
                    // §3.2: deleted tuples go to the log *with* the
                    // annotation explaining why
                    let rows = self.do_delete(&table, where_clause.as_ref(), user, Some(value))?;
                    let n = rows.len();
                    return Ok(QueryResult {
                        affected: n,
                        message: Some(format!("{n} tuple(s) deleted and logged with annotation")),
                        ..Default::default()
                    });
                }
                _ => unreachable!("parser builds Delete"),
            },
        };
        // every target annotation table must belong to the target table
        for (t, _) in &to {
            if !t.eq_ignore_ascii_case(&target_table) {
                return Err(BdbmsError::invalid(format!(
                    "annotation target selects from `{target_table}` but annotation \
                     table is on `{t}`"
                )));
            }
        }
        let time = self.clock.now();
        let mut added = 0;
        for (t, s) in &to {
            self.rec_touch_ann_set(t, s);
            let table = self.catalog.table_mut(t)?;
            table
                .ann_add(s, value, user, time, &rows, &cols)
                .expect("checked");
            added += 1;
        }
        Ok(QueryResult {
            affected: rows.len() * cols.len(),
            message: Some(format!(
                "annotation added to {added} annotation table(s) over {} row(s) × {} column(s)",
                rows.len(),
                cols.len()
            )),
            ..Default::default()
        })
    }

    fn archive_restore(
        &mut self,
        from: Vec<(String, String)>,
        between: Option<(u64, u64)>,
        on: crate::ast::Select,
        archive: bool,
        user: &str,
    ) -> Result<QueryResult> {
        let (target_table, rows, cols) = select_cells(&self.catalog, &on)?;
        let cells: Vec<(u64, usize)> = rows
            .iter()
            .flat_map(|&r| cols.iter().map(move |&c| (r, c)))
            .collect();
        let mut changed = 0;
        for (t, s) in &from {
            if !t.eq_ignore_ascii_case(&target_table) {
                return Err(BdbmsError::invalid(format!(
                    "annotation target selects from `{target_table}` but annotation \
                     table is on `{t}`"
                )));
            }
            self.check_ann_write(user, t, s)?;
            // the snapshot's archived flags cover the state flips
            self.rec_touch_ann_set(t, s);
            let table = self.catalog.table_mut(t)?;
            changed += table
                .ann_set_archived(s, &cells, between, archive)
                .ok_or_else(|| BdbmsError::not_found(format!("annotation table `{s}` on `{t}`")))?;
        }
        Ok(QueryResult::message(format!(
            "{changed} annotation(s) {}",
            if archive { "archived" } else { "restored" }
        )))
    }

    // ---- outdated reporting & validation (§5) ----

    fn show_outdated(&self, table: Option<&str>) -> Result<QueryResult> {
        let mut qr = QueryResult {
            columns: vec!["table".into(), "row".into(), "column".into()],
            ..Default::default()
        };
        for t in self.catalog.tables() {
            if let Some(f) = table {
                if !t.name.eq_ignore_ascii_case(f) {
                    continue;
                }
            }
            for row_no in t.row_numbers() {
                for (c, col) in t.schema.columns().iter().enumerate() {
                    if t.is_outdated(row_no, c) {
                        qr.rows.push(AnnRow::plain(vec![
                            Value::Text(t.name.clone()),
                            Value::Int(row_no as i64),
                            Value::Text(col.name.clone()),
                        ]));
                    }
                }
            }
        }
        Ok(qr)
    }

    fn validate(
        &mut self,
        table: &str,
        columns: &[String],
        where_clause: Option<&Expr>,
        user: &str,
    ) -> Result<QueryResult> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Update)?;
        let t = self.catalog.table(table)?;
        let cols: Vec<usize> = if columns.is_empty() {
            (0..t.schema.arity()).collect()
        } else {
            columns
                .iter()
                .map(|c| t.schema.require(c))
                .collect::<Result<_>>()?
        };
        let targets: Vec<u64> = plan::filter_rows(t, &t.name, where_clause)?
            .into_iter()
            .map(|(row_no, _)| row_no)
            .collect();
        // the snapshot's outdated bitmap covers the cleared bits
        self.rec_touch_table(table);
        let t = self.catalog.table_mut(table)?;
        let mut cleared = 0;
        for row_no in targets {
            for &c in &cols {
                if t.is_outdated(row_no, c) {
                    t.clear_outdated(row_no, c);
                    cleared += 1;
                }
            }
        }
        Ok(QueryResult::message(format!(
            "{cleared} cell(s) revalidated"
        )))
    }

    // ---- provenance API (§4) ----

    /// Create the provenance set if missing, with its undo record.
    /// Runs inside whatever transaction the caller holds open.
    fn ensure_provenance_inner(&mut self, table: &str) -> Result<()> {
        let (name, created) = {
            let t = self.catalog.table_mut(table)?;
            let created = t.ann_set(provenance::PROVENANCE_TABLE).is_none();
            provenance::ensure_provenance_set(t);
            (t.name.clone(), created)
        };
        if created {
            self.txn.push(UndoOp::UnCreateAnnSet {
                table: name,
                set: provenance::PROVENANCE_TABLE.to_string(),
            });
        }
        Ok(())
    }

    /// Create the reserved provenance annotation table on `table`.
    /// Outside an open transaction this commits (and WAL-logs) on its
    /// own; inside one it joins the transaction.
    pub fn enable_provenance(&mut self, table: &str) -> Result<()> {
        self.with_implicit(|db| db.ensure_provenance_inner(table))
    }

    /// Record a provenance annotation over cells (system path — this is
    /// what integration tools call; end users go through A-SQL and hit
    /// the PROVENANCE privilege check).  Inside an open transaction the
    /// attachment joins the undo log: a rollback removes it.  Outside
    /// one it commits (and WAL-logs) on its own.
    pub fn record_provenance(
        &mut self,
        table: &str,
        rows: &[u64],
        cols: &[usize],
        record: &ProvenanceRecord,
    ) -> Result<()> {
        self.with_implicit(|db| {
            db.ensure_provenance_inner(table)?;
            db.rec_touch_ann_set(table, provenance::PROVENANCE_TABLE);
            let time = db.clock.tick();
            let t = db.catalog.table_mut(table)?;
            t.ann_add(
                provenance::PROVENANCE_TABLE,
                &record.to_xml().to_xml(),
                "system",
                time,
                rows,
                cols,
            )
            .expect("just ensured");
            Ok(())
        })
    }

    /// Figure 8's query: the source of a cell at time `at`.
    pub fn source_of(
        &self,
        table: &str,
        row: u64,
        col: usize,
        at: u64,
    ) -> Result<Option<ProvenanceRecord>> {
        Ok(provenance::source_of(
            self.catalog.table(table)?,
            row,
            col,
            at,
        ))
    }

    /// Full provenance history of a cell.
    pub fn provenance_history(
        &self,
        table: &str,
        row: u64,
        col: usize,
    ) -> Result<Vec<ProvenanceRecord>> {
        Ok(provenance::history_of(self.catalog.table(table)?, row, col))
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new_in_memory()
    }
}
