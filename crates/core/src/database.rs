//! The bdbms database facade.
//!
//! [`Database`] owns the storage pool, catalog, logical clock, and the
//! four managers the paper's architecture names (§2): the annotation
//! manager (per-table [`crate::annotation::AnnotationSet`]s), the
//! dependency manager, the authorization manager (GRANT/REVOKE), and the
//! content-approval manager.  Statements enter through
//! [`Database::execute_as`], which parses A-SQL and routes each command
//! through authorization, approval logging, and dependency tracking.

use std::sync::Arc;

use bdbms_common::clock::LogicalClock;
use bdbms_common::{BdbmsError, DataType, Result, Schema, Value};
use bdbms_storage::{BufferPool, MemStore};

use crate::annotation::AnnotationSet;
use crate::approval::{ApprovalManager, InverseOp, OpStatus};
use crate::ast::{AnnTarget, Expr, Privilege, Statement};
use crate::auth::{AuthManager, ADMIN};
use crate::catalog::{Catalog, DeletedRow, Table};
use crate::dependency::{DependencyManager, DependencyRule};
use crate::executor::{run_select, run_select_traced, select_cells, ExecOptions, ExecStats};
use crate::expr::{eval, ColBinding};
use crate::plan;
use crate::provenance::{self, ProvenanceRecord};
use crate::result::{AnnRow, QueryResult};
use crate::session::Session;

/// How a dependency cascade treats non-recomputable targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CascadeMode {
    /// A source value was modified: recompute executable targets, mark the
    /// rest outdated.
    Update,
    /// A fresh row arrived: derive computable cells, but don't outdate
    /// values supplied with the row itself.
    InsertFresh,
    /// The source value is itself untrusted (outdated or deleted): mark
    /// targets outdated, never recompute from stale inputs.
    Stale,
}

/// The bdbms engine.
pub struct Database {
    pool: Arc<BufferPool>,
    catalog: Catalog,
    clock: LogicalClock,
    auth: AuthManager,
    approval: ApprovalManager,
    deps: DependencyManager,
}

impl Database {
    /// An in-memory database with a default-size buffer pool.
    pub fn new_in_memory() -> Self {
        Self::with_pool(Arc::new(BufferPool::new(Box::new(MemStore::new()), 1024)))
    }

    /// A database over a caller-supplied buffer pool (benchmarks use this
    /// to control pool size and read I/O counters).
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Database {
            pool,
            catalog: Catalog::new(),
            clock: LogicalClock::new(),
            auth: AuthManager::new(),
            approval: ApprovalManager::new(),
            deps: DependencyManager::new(),
        }
    }

    /// The shared buffer pool (I/O counters live here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The catalog (read access for benchmarks and tests).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The dependency manager.
    pub fn dependencies(&self) -> &DependencyManager {
        &self.deps
    }

    /// The approval manager.
    pub fn approval(&self) -> &ApprovalManager {
        &self.approval
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Register an executable procedure body (§5) under `name`.
    pub fn register_procedure(&mut self, name: &str, f: impl Fn(&[Value]) -> Value + 'static) {
        self.deps.register_procedure(name, f);
    }

    /// Open a [`Session`] acting as `user` — the prepared-statement /
    /// parameter-binding / streaming-cursor entry point (see
    /// `docs/API.md`).  The legacy one-shot entry points below are thin
    /// wrappers over session internals.
    pub fn session(&mut self, user: &str) -> Session<'_> {
        Session::new(self, user)
    }

    /// Execute a statement as `admin`.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute_as(sql, ADMIN)
    }

    /// Execute a statement as a given user (parse + execute in one step;
    /// statements with parameter placeholders must instead be prepared
    /// through a [`Session`]).
    pub fn execute_as(&mut self, sql: &str, user: &str) -> Result<QueryResult> {
        self.session(user).run(sql)
    }

    /// Authorize `user` to read every FROM table of a SELECT, including
    /// the branches of UNION/INTERSECT/EXCEPT chains (shared by the
    /// one-shot execute path and session query cursors).
    pub(crate) fn check_select_auth(&self, sel: &crate::ast::Select, user: &str) -> Result<()> {
        let mut next = Some(sel);
        while let Some(sel) = next {
            for tref in &sel.from {
                let owner = &self.catalog.table(&tref.table)?.owner;
                self.auth
                    .check(user, &tref.table, owner, Privilege::Select)?;
            }
            next = sel.set_op.as_ref().map(|(_, right)| &**right);
        }
        Ok(())
    }

    /// Run a SELECT with explicit executor options, returning the result
    /// together with execution counters.  This is the instrumentation
    /// path used by benchmarks and the pushdown regression tests; it
    /// runs with admin visibility and does not tick the logical clock.
    pub fn query_traced(&self, sql: &str, opts: &ExecOptions) -> Result<(QueryResult, ExecStats)> {
        let (stmt, param_count) = crate::parser::parse_prepared(sql)?;
        if param_count > 0 {
            return Err(BdbmsError::param_mismatch(format!(
                "statement expects {param_count} parameter(s); prepare it and \
                 pass them through a session"
            )));
        }
        match stmt {
            Statement::Select(sel) => {
                let mut stats = ExecStats::default();
                let qr = run_select_traced(&self.catalog, &sel, opts, &mut stats)?;
                Ok((qr, stats))
            }
            _ => Err(BdbmsError::invalid("query_traced expects a SELECT")),
        }
    }

    /// Execute a parsed statement.
    pub fn execute_stmt(&mut self, stmt: Statement, user: &str) -> Result<QueryResult> {
        self.clock.tick();
        match stmt {
            Statement::CreateTable { name, columns } => self.create_table(name, columns, user),
            Statement::DropTable { name } => self.drop_table(&name, user),
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                self.require_owner(&table, user)?;
                self.catalog
                    .table_mut(&table)?
                    .create_index(&name, &column)?;
                // a new access path invalidates cached prepared plans
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "index `{name}` created on `{table}`"
                )))
            }
            Statement::DropIndex { name, table } => {
                self.require_owner(&table, user)?;
                self.catalog.table_mut(&table)?.drop_index(&name)?;
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "index `{name}` dropped from `{table}`"
                )))
            }
            Statement::CreateAnnotationTable {
                name,
                on,
                cell_scheme,
            } => self.create_annotation_table(&name, &on, cell_scheme, user),
            Statement::DropAnnotationTable { name, on } => {
                self.drop_annotation_table(&name, &on, user)
            }
            Statement::AddAnnotation { to, value, on } => self.add_annotation(to, &value, on, user),
            Statement::ArchiveAnnotation { from, between, on } => {
                self.archive_restore(from, between, on, true, user)
            }
            Statement::RestoreAnnotation { from, between, on } => {
                self.archive_restore(from, between, on, false, user)
            }
            Statement::Select(sel) => {
                self.check_select_auth(&sel, user)?;
                run_select(&self.catalog, &sel)
            }
            Statement::Insert { table, rows } => {
                let mut inserted = Vec::new();
                for row in rows {
                    inserted.push(self.do_insert(&table, &row, user)?);
                }
                Ok(QueryResult::affected(inserted.len()))
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let n = self
                    .do_update(&table, &sets, where_clause.as_ref(), user)?
                    .len();
                Ok(QueryResult::affected(n))
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let n = self
                    .do_delete(&table, where_clause.as_ref(), user, None)?
                    .len();
                Ok(QueryResult::affected(n))
            }
            Statement::CreateUser { name, groups } => {
                if user != ADMIN {
                    return Err(BdbmsError::unauthorized("only admin may create users"));
                }
                self.auth.create_user(&name, &groups)?;
                Ok(QueryResult::message(format!("user `{name}` created")))
            }
            Statement::Grant {
                privileges,
                table,
                to,
            } => {
                self.require_owner(&table, user)?;
                self.auth.grant(&to, &table, &privileges);
                Ok(QueryResult::message(format!(
                    "granted on `{table}` to `{to}`"
                )))
            }
            Statement::Revoke {
                privileges,
                table,
                from,
            } => {
                self.require_owner(&table, user)?;
                self.auth.revoke(&from, &table, &privileges);
                Ok(QueryResult::message(format!(
                    "revoked on `{table}` from `{from}`"
                )))
            }
            Statement::StartContentApproval {
                table,
                columns,
                approved_by,
            } => {
                self.require_owner(&table, user)?;
                self.catalog.table(&table)?; // must exist
                let cols = if columns.is_empty() {
                    None
                } else {
                    Some(columns)
                };
                self.approval.start(&table, cols, &approved_by);
                Ok(QueryResult::message(format!(
                    "content approval started on `{table}`"
                )))
            }
            Statement::StopContentApproval { table, columns } => {
                self.require_owner(&table, user)?;
                self.approval.stop(&table, &columns);
                Ok(QueryResult::message(format!(
                    "content approval stopped on `{table}`"
                )))
            }
            Statement::ApproveOperation { id } => self.decide(id, true, user),
            Statement::DisapproveOperation { id } => self.decide(id, false, user),
            Statement::ShowPending { table } => {
                let mut qr = QueryResult {
                    columns: vec![
                        "id".into(),
                        "table".into(),
                        "user".into(),
                        "time".into(),
                        "status".into(),
                        "description".into(),
                    ],
                    ..Default::default()
                };
                for op in self.approval.pending(table.as_deref()) {
                    qr.rows.push(AnnRow::plain(vec![
                        Value::Int(op.id.raw() as i64),
                        Value::Text(op.table.clone()),
                        Value::Text(op.user.clone()),
                        Value::Timestamp(op.time),
                        Value::Text(op.status.to_string()),
                        Value::Text(op.description.clone()),
                    ]));
                }
                Ok(qr)
            }
            Statement::ShowOutdated { table } => self.show_outdated(table.as_deref()),
            Statement::CreateDependencyRule {
                name,
                from,
                to,
                procedure,
                executable,
                invertible,
                link,
            } => self.create_dependency_rule(
                name, from, to, procedure, executable, invertible, link, user,
            ),
            Statement::DropDependencyRule { name } => {
                if user != ADMIN {
                    return Err(BdbmsError::unauthorized(
                        "only admin may drop dependency rules",
                    ));
                }
                self.deps.drop_rule(&name)?;
                Ok(QueryResult::message(format!("rule `{name}` dropped")))
            }
            Statement::Analyze { table } => {
                let owner = self.catalog.table(&table)?.owner.clone();
                self.auth.check(user, &table, &owner, Privilege::Select)?;
                let rows = self.catalog.table_mut(&table)?.analyze()?;
                // fresh stats can change cost-based choices: replan
                self.catalog.bump_generation();
                Ok(QueryResult::message(format!(
                    "analyzed `{table}`: {rows} row(s)"
                )))
            }
            Statement::Validate {
                table,
                columns,
                where_clause,
            } => self.validate(&table, &columns, where_clause.as_ref(), user),
        }
    }

    fn require_owner(&self, table: &str, user: &str) -> Result<()> {
        let t = self.catalog.table(table)?;
        if user == ADMIN {
            return Ok(());
        }
        if t.owner.eq_ignore_ascii_case(user) {
            Ok(())
        } else {
            Err(BdbmsError::unauthorized(format!(
                "user `{user}` is not the owner of `{table}`"
            )))
        }
    }

    // ---- DDL ----

    fn create_table(
        &mut self,
        name: String,
        columns: Vec<(String, DataType)>,
        user: &str,
    ) -> Result<QueryResult> {
        let schema = Schema::new(
            columns
                .into_iter()
                .map(|(n, t)| bdbms_common::ColumnDef::new(n, t))
                .collect(),
        )?;
        let table = Table::create(name.clone(), schema, user, self.pool.clone())?;
        self.catalog.add_table(table)?;
        Ok(QueryResult::message(format!("table `{name}` created")))
    }

    fn drop_table(&mut self, name: &str, user: &str) -> Result<QueryResult> {
        self.require_owner(name, user)?;
        self.catalog.drop_table(name)?;
        Ok(QueryResult::message(format!("table `{name}` dropped")))
    }

    fn create_annotation_table(
        &mut self,
        name: &str,
        on: &str,
        cell_scheme: bool,
        user: &str,
    ) -> Result<QueryResult> {
        self.require_owner(on, user)?;
        let table = self.catalog.table_mut(on)?;
        if table.ann_set(name).is_some() {
            return Err(BdbmsError::already_exists(format!(
                "annotation table `{name}` on `{on}`"
            )));
        }
        table.ann_sets.push(AnnotationSet::new(name, cell_scheme));
        Ok(QueryResult::message(format!(
            "annotation table `{name}` created on `{on}`"
        )))
    }

    fn drop_annotation_table(&mut self, name: &str, on: &str, user: &str) -> Result<QueryResult> {
        self.require_owner(on, user)?;
        let table = self.catalog.table_mut(on)?;
        let before = table.ann_sets.len();
        table
            .ann_sets
            .retain(|s| !s.name.eq_ignore_ascii_case(name));
        if table.ann_sets.len() == before {
            return Err(BdbmsError::not_found(format!(
                "annotation table `{name}` on `{on}`"
            )));
        }
        Ok(QueryResult::message(format!(
            "annotation table `{name}` dropped from `{on}`"
        )))
    }

    // ---- DML with approval + dependency integration ----

    fn bindings_for(&self, table: &str) -> Result<Vec<ColBinding>> {
        let t = self.catalog.table(table)?;
        Ok(t.schema
            .columns()
            .iter()
            .map(|c| ColBinding::new(Some(&t.name), &c.name))
            .collect())
    }

    /// Insert one literal row; returns the new row number.
    fn do_insert(&mut self, table: &str, row: &[Expr], user: &str) -> Result<u64> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Insert)?;
        let values: Vec<Value> = row
            .iter()
            .map(|e| eval(e, &[], &[]))
            .collect::<Result<_>>()?;
        let t = self.catalog.table_mut(table)?;
        let row_no = t.insert(values)?;
        let all_cols: Vec<String> = t.schema.names().iter().map(|s| s.to_string()).collect();
        // content approval (§6)
        if self.approval.monitors(table, &all_cols) && !self.is_approver(user, table) {
            let time = self.clock.now();
            self.approval.log_operation(
                table,
                user,
                time,
                format!("INSERT INTO {table} (row {row_no})"),
                InverseOp::DeleteRow { row_no },
            );
        }
        // dependency cascade: the new row may feed *computable* derived
        // cells; it never outdates values supplied with the fresh row
        let arity = self.catalog.table(table)?.schema.arity();
        for col in 0..arity {
            self.cascade(table, row_no, col, CascadeMode::InsertFresh)?;
        }
        Ok(row_no)
    }

    /// Update matching rows; returns the touched row numbers.
    fn do_update(
        &mut self,
        table: &str,
        sets: &[(String, Expr)],
        where_clause: Option<&Expr>,
        user: &str,
    ) -> Result<Vec<u64>> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Update)?;
        let bindings = self.bindings_for(table)?;
        let t = self.catalog.table(table)?;
        let set_cols: Vec<usize> = sets
            .iter()
            .map(|(c, _)| t.schema.require(c))
            .collect::<Result<_>>()?;
        let touched_names: Vec<String> = sets.iter().map(|(c, _)| c.clone()).collect();
        // plan: evaluate per matching row (row selection shares the
        // executor's pushdown/index planning)
        #[allow(clippy::type_complexity)]
        let mut plans: Vec<(u64, Vec<Value>, Vec<Value>, Vec<(usize, Value)>)> = Vec::new();
        for (row_no, values) in plan::filter_rows(t, &t.name, where_clause)? {
            let mut new_values = values.clone();
            let mut old: Vec<(usize, Value)> = Vec::new();
            for ((_, e), &col) in sets.iter().zip(&set_cols) {
                let v = eval(e, &bindings, &values)?;
                old.push((col, values[col].clone()));
                new_values[col] = v;
            }
            plans.push((row_no, values, new_values, old));
        }
        let monitored =
            self.approval.monitors(table, &touched_names) && !self.is_approver(user, table);
        let mut touched = Vec::with_capacity(plans.len());
        for (row_no, old_values, new_values, old) in plans {
            let t = self.catalog.table_mut(table)?;
            // the row-selection pass already materialized the old values,
            // so index maintenance needs no heap re-read
            t.update_with_old(row_no, &old_values, new_values)?;
            // an explicit update re-evaluates the cell: it is valid again
            // until its own sources change (§5 "Validating outdated data")
            for &(col, _) in &old {
                t.clear_outdated(row_no, col);
            }
            if monitored {
                let time = self.clock.now();
                self.approval.log_operation(
                    table,
                    user,
                    time,
                    format!(
                        "UPDATE {table} SET {} (row {row_no})",
                        touched_names.join(", ")
                    ),
                    InverseOp::RestoreCells {
                        row_no,
                        old: old.clone(),
                    },
                );
            }
            for &(col, _) in &old {
                self.cascade(table, row_no, col, CascadeMode::Update)?;
            }
            touched.push(row_no);
        }
        Ok(touched)
    }

    /// Delete matching rows; logs to the deletion log (with the optional
    /// "why deleted" annotation).  Returns deleted row numbers.
    fn do_delete(
        &mut self,
        table: &str,
        where_clause: Option<&Expr>,
        user: &str,
        why: Option<&str>,
    ) -> Result<Vec<u64>> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Delete)?;
        let t = self.catalog.table(table)?;
        let all_cols: Vec<String> = t.schema.names().iter().map(|s| s.to_string()).collect();
        let victims: Vec<u64> = plan::filter_rows(t, &t.name, where_clause)?
            .into_iter()
            .map(|(row_no, _)| row_no)
            .collect();
        let monitored = self.approval.monitors(table, &all_cols) && !self.is_approver(user, table);
        let arity = self.catalog.table(table)?.schema.arity();
        for &row_no in &victims {
            // mark dependents stale *before* the source row disappears
            for col in 0..arity {
                self.cascade(table, row_no, col, CascadeMode::Stale)?;
            }
            let time = self.clock.now();
            let t = self.catalog.table_mut(table)?;
            let values = t.delete(row_no)?;
            t.deleted_log.push(DeletedRow {
                row_no,
                values: values.clone(),
                annotation: why.map(|s| s.to_string()),
                time,
                user: user.to_string(),
            });
            if monitored {
                self.approval.log_operation(
                    table,
                    user,
                    time,
                    format!("DELETE FROM {table} (row {row_no})"),
                    InverseOp::InsertRow { row_no, values },
                );
            }
        }
        Ok(victims)
    }

    fn is_approver(&self, user: &str, table: &str) -> bool {
        match self.approval.config(table) {
            Some(cfg) => self.auth.acts_as(user, &cfg.approver),
            None => false,
        }
    }

    // ---- dependency cascade (§5) ----

    /// Propagate a change of `(table, row_no, col)`.
    fn cascade(&mut self, table: &str, row_no: u64, col: usize, mode: CascadeMode) -> Result<()> {
        let col_name = {
            let t = self.catalog.table(table)?;
            t.schema.columns()[col].name.clone()
        };
        let rules: Vec<DependencyRule> = self
            .deps
            .rules_from(table, &col_name)
            .into_iter()
            .cloned()
            .collect();
        for rule in rules {
            let targets = self.link_targets(&rule, row_no)?;
            for dst_row in targets {
                let dst_col = {
                    let dt = self.catalog.table(&rule.dst_table)?;
                    dt.schema.require(&rule.dst_col)?
                };
                let recompute = mode != CascadeMode::Stale
                    && rule.executable
                    && self.deps.procedure(&rule.procedure).is_some();
                if recompute {
                    // gather the rule's source values from the source row
                    let st = self.catalog.table(&rule.src_table)?;
                    let src_values = st.get(row_no)?;
                    let inputs: Vec<Value> = rule
                        .src_cols
                        .iter()
                        .map(|c| st.schema.require(c).map(|i| src_values[i].clone()))
                        .collect::<Result<_>>()?;
                    let f = self.deps.procedure(&rule.procedure).expect("checked");
                    let new_value = f(&inputs);
                    let dt = self.catalog.table_mut(&rule.dst_table)?;
                    let mut dst_values = dt.get(dst_row)?;
                    if dst_values[dst_col] != new_value {
                        dst_values[dst_col] = new_value;
                        dt.update(dst_row, dst_values)?;
                        // recomputed: the cell is current again (Figure 10:
                        // PSequence bits stay 0); downstream saw a genuine
                        // modification, so continue in Update mode
                        dt.clear_outdated(dst_row, dst_col);
                        self.cascade(&rule.dst_table, dst_row, dst_col, CascadeMode::Update)?;
                    } else {
                        dt.clear_outdated(dst_row, dst_col);
                    }
                } else if mode != CascadeMode::InsertFresh {
                    // non-executable (or unregistered) procedure: mark the
                    // target outdated; freshly inserted rows don't outdate
                    // their own supplied values
                    let dt = self.catalog.table_mut(&rule.dst_table)?;
                    let was = dt.is_outdated(dst_row, dst_col);
                    dt.mark_outdated(dst_row, dst_col);
                    if !was {
                        // downstream of an outdated cell is outdated too
                        self.cascade(&rule.dst_table, dst_row, dst_col, CascadeMode::Stale)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Target rows of a rule for a given source row.
    fn link_targets(&self, rule: &DependencyRule, src_row: u64) -> Result<Vec<u64>> {
        match &rule.link {
            None => {
                // same-table, same-row dependency (paper's Rules 2 and 3)
                if rule.src_table.eq_ignore_ascii_case(&rule.dst_table) {
                    let dt = self.catalog.table(&rule.dst_table)?;
                    Ok(if dt.contains_row(src_row) {
                        vec![src_row]
                    } else {
                        vec![]
                    })
                } else {
                    Err(BdbmsError::dependency(format!(
                        "rule `{}` spans tables but has no LINK",
                        rule.name
                    )))
                }
            }
            Some((src_link, dst_link)) => {
                let st = self.catalog.table(&rule.src_table)?;
                let src_col = st.schema.require(src_link)?;
                let key = st.get(src_row)?[src_col].clone();
                let dt = self.catalog.table(&rule.dst_table)?;
                let dst_col = dt.schema.require(dst_link)?;
                let mut out = Vec::new();
                for (row_no, values) in dt.scan()? {
                    if values[dst_col] == key {
                        out.push(row_no);
                    }
                }
                Ok(out)
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the SQL statement's clauses
    fn create_dependency_rule(
        &mut self,
        name: String,
        from: Vec<(String, String)>,
        to: (String, String),
        procedure: String,
        executable: bool,
        invertible: bool,
        link: Option<(String, String)>,
        user: &str,
    ) -> Result<QueryResult> {
        self.require_owner(&to.0, user)?;
        // validate sources: single table, existing columns
        let src_table = from
            .first()
            .map(|(t, _)| t.clone())
            .ok_or_else(|| BdbmsError::invalid("rule needs a source column"))?;
        if !from.iter().all(|(t, _)| t.eq_ignore_ascii_case(&src_table)) {
            return Err(BdbmsError::invalid(
                "all source columns must come from one table",
            ));
        }
        {
            let st = self.catalog.table(&src_table)?;
            for (_, c) in &from {
                st.schema.require(c)?;
            }
            let dt = self.catalog.table(&to.0)?;
            dt.schema.require(&to.1)?;
        }
        // decode LINK "Table.Col = Table.Col" into column names
        let link_cols = match link {
            None => None,
            Some((a, b)) => {
                let parse_side = |s: &str| -> Result<(String, String)> {
                    s.split_once('.')
                        .map(|(t, c)| (t.to_string(), c.to_string()))
                        .ok_or_else(|| BdbmsError::invalid(format!("bad LINK side `{s}`")))
                };
                let (at, ac) = parse_side(&a)?;
                let (bt, bc) = parse_side(&b)?;
                // sides may come in either order
                let (src_side, dst_side) = if at.eq_ignore_ascii_case(&src_table) {
                    ((at, ac), (bt, bc))
                } else {
                    ((bt, bc), (at, ac))
                };
                if !src_side.0.eq_ignore_ascii_case(&src_table)
                    || !dst_side.0.eq_ignore_ascii_case(&to.0)
                {
                    return Err(BdbmsError::invalid(
                        "LINK must join the rule's source and target tables",
                    ));
                }
                let st = self.catalog.table(&src_table)?;
                st.schema.require(&src_side.1)?;
                let dt = self.catalog.table(&to.0)?;
                dt.schema.require(&dst_side.1)?;
                Some((src_side.1, dst_side.1))
            }
        };
        let rule = DependencyRule {
            id: bdbms_common::ids::RuleId(0),
            name: name.clone(),
            src_table,
            src_cols: from.into_iter().map(|(_, c)| c).collect(),
            dst_table: to.0,
            dst_col: to.1,
            procedure,
            executable,
            invertible,
            link: link_cols,
        };
        self.deps.add_rule(rule)?;
        Ok(QueryResult::message(format!(
            "dependency rule `{name}` created"
        )))
    }

    // ---- approval decisions ----

    fn decide(&mut self, id: u64, approve: bool, user: &str) -> Result<QueryResult> {
        let op = self
            .approval
            .get(bdbms_common::ids::OperationId(id))?
            .clone();
        // the decision-maker must be the configured approver (or admin)
        let allowed = user == ADMIN
            || match self.approval.config(&op.table) {
                Some(cfg) => self.auth.acts_as(user, &cfg.approver),
                None => false,
            };
        if !allowed {
            return Err(BdbmsError::unauthorized(format!(
                "user `{user}` may not decide operations on `{}`",
                op.table
            )));
        }
        let decided = self
            .approval
            .decide(bdbms_common::ids::OperationId(id), approve)?;
        if approve {
            return Ok(QueryResult::message(format!("operation {id} approved")));
        }
        // §6: execute the inverse statement; dependency tracking then
        // invalidates anything derived from the undone values.
        debug_assert_eq!(decided.status, OpStatus::Disapproved);
        match decided.inverse {
            InverseOp::DeleteRow { row_no } => {
                let arity = self.catalog.table(&decided.table)?.schema.arity();
                for col in 0..arity {
                    self.cascade(&decided.table, row_no, col, CascadeMode::Stale)?;
                }
                let time = self.clock.now();
                let t = self.catalog.table_mut(&decided.table)?;
                let values = t.delete(row_no)?;
                t.deleted_log.push(DeletedRow {
                    row_no,
                    values,
                    annotation: Some(format!("disapproved operation {id}")),
                    time,
                    user: user.to_string(),
                });
            }
            InverseOp::InsertRow { row_no, values } => {
                let t = self.catalog.table_mut(&decided.table)?;
                t.insert_with_row_no(row_no, values)?;
                let arity = self.catalog.table(&decided.table)?.schema.arity();
                for col in 0..arity {
                    self.cascade(&decided.table, row_no, col, CascadeMode::Update)?;
                }
            }
            InverseOp::RestoreCells { row_no, old } => {
                let t = self.catalog.table_mut(&decided.table)?;
                let mut values = t.get(row_no)?;
                for (col, v) in &old {
                    values[*col] = v.clone();
                }
                t.update(row_no, values)?;
                for (col, _) in &old {
                    self.cascade(&decided.table, row_no, *col, CascadeMode::Update)?;
                }
            }
        }
        Ok(QueryResult::message(format!(
            "operation {id} disapproved; inverse executed"
        )))
    }

    // ---- annotations (§3) ----

    fn check_ann_write(&self, user: &str, table: &str, set_name: &str) -> Result<()> {
        let t = self.catalog.table(table)?;
        let set = t.ann_set(set_name).ok_or_else(|| {
            BdbmsError::not_found(format!("annotation table `{set_name}` on `{table}`"))
        })?;
        if set.system_only {
            // §4: provenance writes restricted to integration tools
            self.auth
                .check(user, table, &t.owner, Privilege::Provenance)
        } else {
            self.auth.check(user, table, &t.owner, Privilege::Select)
        }
    }

    fn add_annotation(
        &mut self,
        to: Vec<(String, String)>,
        value: &str,
        on: AnnTarget,
        user: &str,
    ) -> Result<QueryResult> {
        for (t, s) in &to {
            self.check_ann_write(user, t, s)?;
            let set = self.catalog.table(t)?.ann_set(s).expect("checked");
            if set.schema_enforced {
                provenance::validate_body(value)?;
            }
        }
        // resolve target cells (and run the wrapped DML, if any)
        let (target_table, rows, cols): (String, Vec<u64>, Vec<usize>) = match on {
            AnnTarget::Select(sel) => select_cells(&self.catalog, &sel)?,
            AnnTarget::Insert(stmt) => match *stmt {
                Statement::Insert { table, rows } => {
                    let arity = self.catalog.table(&table)?.schema.arity();
                    let mut new_rows = Vec::new();
                    for row in rows {
                        new_rows.push(self.do_insert(&table, &row, user)?);
                    }
                    (table, new_rows, (0..arity).collect())
                }
                _ => unreachable!("parser builds Insert"),
            },
            AnnTarget::Update(stmt) => match *stmt {
                Statement::Update {
                    table,
                    sets,
                    where_clause,
                } => {
                    let t = self.catalog.table(&table)?;
                    let cols: Vec<usize> = sets
                        .iter()
                        .map(|(c, _)| t.schema.require(c))
                        .collect::<Result<_>>()?;
                    let rows = self.do_update(&table, &sets, where_clause.as_ref(), user)?;
                    (table, rows, cols)
                }
                _ => unreachable!("parser builds Update"),
            },
            AnnTarget::Delete(stmt) => match *stmt {
                Statement::Delete {
                    table,
                    where_clause,
                } => {
                    // §3.2: deleted tuples go to the log *with* the
                    // annotation explaining why
                    let rows = self.do_delete(&table, where_clause.as_ref(), user, Some(value))?;
                    let n = rows.len();
                    return Ok(QueryResult {
                        affected: n,
                        message: Some(format!("{n} tuple(s) deleted and logged with annotation")),
                        ..Default::default()
                    });
                }
                _ => unreachable!("parser builds Delete"),
            },
        };
        // every target annotation table must belong to the target table
        for (t, _) in &to {
            if !t.eq_ignore_ascii_case(&target_table) {
                return Err(BdbmsError::invalid(format!(
                    "annotation target selects from `{target_table}` but annotation \
                     table is on `{t}`"
                )));
            }
        }
        let time = self.clock.now();
        let mut added = 0;
        for (t, s) in &to {
            let table = self.catalog.table_mut(t)?;
            let set = table.ann_set_mut(s).expect("checked");
            set.add(value, user, time, &rows, &cols);
            added += 1;
        }
        Ok(QueryResult {
            affected: rows.len() * cols.len(),
            message: Some(format!(
                "annotation added to {added} annotation table(s) over {} row(s) × {} column(s)",
                rows.len(),
                cols.len()
            )),
            ..Default::default()
        })
    }

    fn archive_restore(
        &mut self,
        from: Vec<(String, String)>,
        between: Option<(u64, u64)>,
        on: crate::ast::Select,
        archive: bool,
        user: &str,
    ) -> Result<QueryResult> {
        let (target_table, rows, cols) = select_cells(&self.catalog, &on)?;
        let cells: Vec<(u64, usize)> = rows
            .iter()
            .flat_map(|&r| cols.iter().map(move |&c| (r, c)))
            .collect();
        let mut changed = 0;
        for (t, s) in &from {
            if !t.eq_ignore_ascii_case(&target_table) {
                return Err(BdbmsError::invalid(format!(
                    "annotation target selects from `{target_table}` but annotation \
                     table is on `{t}`"
                )));
            }
            self.check_ann_write(user, t, s)?;
            let table = self.catalog.table_mut(t)?;
            let set = table
                .ann_set_mut(s)
                .ok_or_else(|| BdbmsError::not_found(format!("annotation table `{s}` on `{t}`")))?;
            changed += set.set_archived(&cells, between, archive);
        }
        Ok(QueryResult::message(format!(
            "{changed} annotation(s) {}",
            if archive { "archived" } else { "restored" }
        )))
    }

    // ---- outdated reporting & validation (§5) ----

    fn show_outdated(&self, table: Option<&str>) -> Result<QueryResult> {
        let mut qr = QueryResult {
            columns: vec!["table".into(), "row".into(), "column".into()],
            ..Default::default()
        };
        for t in self.catalog.tables() {
            if let Some(f) = table {
                if !t.name.eq_ignore_ascii_case(f) {
                    continue;
                }
            }
            for row_no in t.row_numbers() {
                for (c, col) in t.schema.columns().iter().enumerate() {
                    if t.is_outdated(row_no, c) {
                        qr.rows.push(AnnRow::plain(vec![
                            Value::Text(t.name.clone()),
                            Value::Int(row_no as i64),
                            Value::Text(col.name.clone()),
                        ]));
                    }
                }
            }
        }
        Ok(qr)
    }

    fn validate(
        &mut self,
        table: &str,
        columns: &[String],
        where_clause: Option<&Expr>,
        user: &str,
    ) -> Result<QueryResult> {
        let owner = self.catalog.table(table)?.owner.clone();
        self.auth.check(user, table, &owner, Privilege::Update)?;
        let t = self.catalog.table(table)?;
        let cols: Vec<usize> = if columns.is_empty() {
            (0..t.schema.arity()).collect()
        } else {
            columns
                .iter()
                .map(|c| t.schema.require(c))
                .collect::<Result<_>>()?
        };
        let targets: Vec<u64> = plan::filter_rows(t, &t.name, where_clause)?
            .into_iter()
            .map(|(row_no, _)| row_no)
            .collect();
        let t = self.catalog.table_mut(table)?;
        let mut cleared = 0;
        for row_no in targets {
            for &c in &cols {
                if t.is_outdated(row_no, c) {
                    t.clear_outdated(row_no, c);
                    cleared += 1;
                }
            }
        }
        Ok(QueryResult::message(format!(
            "{cleared} cell(s) revalidated"
        )))
    }

    // ---- provenance API (§4) ----

    /// Create the reserved provenance annotation table on `table`.
    pub fn enable_provenance(&mut self, table: &str) -> Result<()> {
        let t = self.catalog.table_mut(table)?;
        provenance::ensure_provenance_set(t);
        Ok(())
    }

    /// Record a provenance annotation over cells (system path — this is
    /// what integration tools call; end users go through A-SQL and hit
    /// the PROVENANCE privilege check).
    pub fn record_provenance(
        &mut self,
        table: &str,
        rows: &[u64],
        cols: &[usize],
        record: &ProvenanceRecord,
    ) -> Result<()> {
        self.enable_provenance(table)?;
        let time = self.clock.tick();
        let t = self.catalog.table_mut(table)?;
        let set = t
            .ann_set_mut(provenance::PROVENANCE_TABLE)
            .expect("just ensured");
        set.add(&record.to_xml().to_xml(), "system", time, rows, cols);
        Ok(())
    }

    /// Figure 8's query: the source of a cell at time `at`.
    pub fn source_of(
        &self,
        table: &str,
        row: u64,
        col: usize,
        at: u64,
    ) -> Result<Option<ProvenanceRecord>> {
        Ok(provenance::source_of(
            self.catalog.table(table)?,
            row,
            col,
            at,
        ))
    }

    /// Full provenance history of a cell.
    pub fn provenance_history(
        &self,
        table: &str,
        row: u64,
        col: usize,
    ) -> Result<Vec<ProvenanceRecord>> {
        Ok(provenance::history_of(self.catalog.table(table)?, row, col))
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new_in_memory()
    }
}
