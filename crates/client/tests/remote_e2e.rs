//! End-to-end: a real `Server` on a TCP port, driven through the
//! transport-agnostic `Connection` trait — the same generic client code
//! runs against the embedded backend and the wire, and must observe the
//! same behavior (results, annotations, errors with spans, transaction
//! state).

use std::path::PathBuf;

use bdbms_client::{connect, parse_target, RemoteConnection, Target};
use bdbms_common::{ErrorCode, Value};
use bdbms_core::client::Connection;
use bdbms_core::{Database, LocalConnection};
use bdbms_server::{Server, ServerConfig};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bdbms-remote-e2e-{}-{name}.bdbms",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(name: &str) -> (Server, String) {
    let server = Server::start(ServerConfig::new(tmp(name), "127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// The backend-agnostic workout: DDL, DML with parameters, streaming
/// SELECT, annotations, errors, transactions.  Identical assertions for
/// the embedded and the remote connection.
fn workout(conn: &mut dyn Connection) {
    conn.run("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT)")
        .unwrap();
    conn.run("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();

    let ins = conn.prepare("INSERT INTO Gene VALUES (?, ?, ?)").unwrap();
    assert_eq!(ins.param_count(), 3);
    for (gid, name, len) in [
        ("JW0080", "mraW", 11),
        ("JW0082", "ftsI", 42),
        ("JW0055", "yabP", 7),
    ] {
        let r = conn
            .execute(
                &ins,
                &[
                    Value::Text(gid.into()),
                    Value::Text(name.into()),
                    Value::Int(len),
                ],
            )
            .unwrap();
        assert_eq!(r.affected, 1);
    }
    conn.run(
        "ADD ANNOTATION TO Gene.Curation \
         VALUE '<Annotation>checked against GenoBase</Annotation>' \
         ON (SELECT G.GID FROM Gene G WHERE Len = 42)",
    )
    .unwrap();

    // streaming query with parameters + annotations over the wire
    let sel = conn
        .prepare("SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = ?")
        .unwrap();
    let mut rows = conn.query(&sel, &[Value::Int(42)]).unwrap();
    assert_eq!(rows.columns(), ["GID", "GName"]);
    let row = rows.next_row().unwrap().unwrap();
    assert_eq!(row.values[0], Value::Text("JW0082".into()));
    assert_eq!(row.anns[0].len(), 1);
    assert_eq!(row.anns[0][0].text(), "checked against GenoBase");
    assert_eq!(row.anns[0][0].ann_table, "Curation");
    assert!(rows.next_row().unwrap().is_none());
    drop(rows);

    // errors carry code + span losslessly
    let err = conn.run("SELEKT GID FROM Gene").unwrap_err();
    assert_eq!(err.code(), ErrorCode::Syntax);
    assert!(err.span.is_some(), "syntax error should carry a span");
    let err = conn.run("SELECT GID FROM Nope").unwrap_err();
    assert_eq!(err.code(), ErrorCode::NotFound);
    let err = conn.execute(&ins, &[Value::Int(1)]).unwrap_err();
    assert_eq!(err.code(), ErrorCode::ParamMismatch);

    // transaction state drives in_transaction() on both backends
    assert!(!conn.in_transaction());
    conn.begin().unwrap();
    assert!(conn.in_transaction());
    conn.run("DELETE FROM Gene WHERE GID = 'JW0055'").unwrap();
    assert_eq!(conn.run("SELECT GID FROM Gene").unwrap().rows.len(), 2);
    conn.rollback().unwrap();
    assert!(!conn.in_transaction());
    assert_eq!(conn.run("SELECT GID FROM Gene").unwrap().rows.len(), 3);

    let err = conn.run("COMMIT").unwrap_err();
    assert_eq!(err.code(), ErrorCode::TxnState);

    // authorization round-trips: alice can't read Gene until granted
    conn.run("CREATE USER alice").unwrap();
    conn.set_user("alice").unwrap();
    assert_eq!(conn.user(), "alice");
    let err = conn.run("SELECT GID FROM Gene").unwrap_err();
    assert_eq!(err.code(), ErrorCode::Unauthorized);
    conn.set_user("admin").unwrap();
    conn.run("GRANT SELECT ON Gene TO alice").unwrap();
    conn.set_user("alice").unwrap();
    assert_eq!(conn.run("SELECT GID FROM Gene").unwrap().rows.len(), 3);
    conn.set_user("admin").unwrap();

    conn.close().unwrap();
}

#[test]
fn same_workout_passes_on_both_backends() {
    // embedded
    let mut local = LocalConnection::new(Database::new_in_memory(), "admin");
    workout(&mut local);

    // remote
    let (server, addr) = start_server("workout");
    let mut remote = RemoteConnection::connect(&addr, "admin").unwrap();
    assert!(remote.describe().contains(&addr));
    workout(&mut remote);
    drop(remote);
    server.stop();
}

#[test]
fn connect_dispatches_on_target_shape() {
    let (server, addr) = start_server("dispatch");
    assert!(matches!(parse_target(&addr), Target::Remote(_)));
    let mut conn = connect(&addr, "admin").unwrap();
    assert!(conn.local_database().is_none());
    conn.run("CREATE TABLE T (A INT)").unwrap();
    conn.close().unwrap();
    drop(conn);
    server.stop();

    let path = tmp("dispatch-local");
    let target = path.to_string_lossy().to_string();
    assert!(matches!(parse_target(&target), Target::Local(_)));
    let mut conn = connect(&target, "admin").unwrap();
    assert!(conn.local_database().is_some());
    conn.run("CREATE TABLE T (A INT)").unwrap();
    conn.close().unwrap();
}

#[test]
fn fetch_pages_large_results() {
    let (server, addr) = start_server("paging");
    let mut conn = RemoteConnection::connect(&addr, "admin").unwrap();
    conn.run("CREATE TABLE Big (K INT)").unwrap();
    let ins = conn.prepare("INSERT INTO Big VALUES (?)").unwrap();
    conn.run("BEGIN").unwrap();
    let total = 700usize; // > 2 fetch batches at 256 rows each
    for k in 0..total {
        conn.execute(&ins, &[Value::Int(k as i64)]).unwrap();
    }
    conn.run("COMMIT").unwrap();

    let sel = conn.prepare("SELECT K FROM Big").unwrap();
    let mut rows = conn.query(&sel, &[]).unwrap();
    let mut seen = Vec::new();
    while let Some(row) = rows.next_row().unwrap() {
        match row.values[0] {
            Value::Int(k) => seen.push(k),
            ref v => panic!("unexpected value {v:?}"),
        }
    }
    drop(rows);
    seen.sort_unstable();
    assert_eq!(seen.len(), total);
    assert_eq!(seen[0], 0);
    assert_eq!(*seen.last().unwrap(), total as i64 - 1);

    // abandoning a cursor mid-stream keeps the connection usable
    let mut rows = conn.query(&sel, &[]).unwrap();
    rows.next_row().unwrap().unwrap();
    drop(rows); // closes the server-side cursor under the hood
    assert_eq!(
        conn.run("SELECT K FROM Big WHERE K = 0")
            .unwrap()
            .rows
            .len(),
        1
    );

    conn.close().unwrap();
    drop(conn);
    server.stop();
}

#[test]
fn unknown_user_is_rejected_at_hello() {
    let (server, addr) = start_server("hello-auth");
    let err = match RemoteConnection::connect(&addr, "mallory") {
        Ok(_) => panic!("unknown user accepted at hello"),
        Err(e) => e,
    };
    assert_eq!(err.code(), ErrorCode::Unauthorized);
    server.stop();
}

#[test]
fn concurrent_transactions_serialize_across_connections() {
    let (server, addr) = start_server("txn-gate");
    let mut a = RemoteConnection::connect(&addr, "admin").unwrap();
    a.run("CREATE TABLE T (K INT)").unwrap();
    a.run("BEGIN").unwrap();
    a.run("INSERT INTO T VALUES (1)").unwrap();

    // b's statement must wait for a's transaction, then see its result
    let addr2 = addr.clone();
    let b = std::thread::spawn(move || {
        let mut b = RemoteConnection::connect(&addr2, "admin").unwrap();
        // this blocks server-side until `a` commits
        let n = b.run("SELECT K FROM T").unwrap().rows.len();
        b.close().unwrap();
        n
    });
    // give b time to arrive and park in the deferred queue
    std::thread::sleep(std::time::Duration::from_millis(200));
    a.run("INSERT INTO T VALUES (2)").unwrap();
    a.run("COMMIT").unwrap();
    assert_eq!(b.join().unwrap(), 2, "deferred statement ran pre-commit");

    // a disconnect mid-transaction rolls back
    let mut c = RemoteConnection::connect(&addr, "admin").unwrap();
    c.run("BEGIN").unwrap();
    c.run("INSERT INTO T VALUES (3)").unwrap();
    drop(c); // no COMMIT
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut d = RemoteConnection::connect(&addr, "admin").unwrap();
    assert_eq!(d.run("SELECT K FROM T").unwrap().rows.len(), 2);
    d.close().unwrap();
    drop(a);
    drop(d);
    server.stop();
}

/// Seed the same small, indexed table through either backend.
fn seed_for_stats(conn: &mut dyn Connection) {
    conn.run("CREATE TABLE Gene (GID TEXT, Chrom TEXT, Len INT)")
        .unwrap();
    conn.run("CREATE INDEX gene_gid ON Gene (GID)").unwrap();
    let ins = conn.prepare("INSERT INTO Gene VALUES (?, ?, ?)").unwrap();
    conn.run("BEGIN").unwrap();
    for i in 0..100i64 {
        conn.execute(
            &ins,
            &[
                Value::Text(format!("G{i:03}")),
                Value::Text(format!("chr{}", i % 4)),
                Value::Int(i),
            ],
        )
        .unwrap();
    }
    conn.run("COMMIT").unwrap();
    conn.run("ANALYZE Gene").unwrap();
}

/// The deterministic half of a statement's [`ExecStats`]: everything
/// except the wall-clock fields, which legitimately differ between an
/// embedded call and a served one.
fn deterministic(stats: &bdbms_core::executor::ExecStats) -> bdbms_core::executor::ExecStats {
    let mut s = stats.clone();
    s.parse_ns = 0;
    s.plan_ns = 0;
    s.exec_ns = 0;
    s
}

#[test]
fn exec_stats_match_between_local_and_remote() {
    let queries = [
        "SELECT GID, Len FROM Gene WHERE GID = 'G042'",
        "SELECT GID FROM Gene WHERE Chrom = 'chr1' AND Len > 50",
        "SELECT GID, Len FROM Gene ORDER BY Len DESC LIMIT 5",
    ];

    let mut local = LocalConnection::new(Database::new_in_memory(), "admin");
    seed_for_stats(&mut local);

    let (server, addr) = start_server("stats-parity");
    let mut remote = RemoteConnection::connect(&addr, "admin").unwrap();
    seed_for_stats(&mut remote);

    for sql in queries {
        let lr = local.run(sql).unwrap();
        let rr = remote.run(sql).unwrap();
        assert_eq!(lr.rows.len(), rr.rows.len(), "row counts differ for {sql}");
        let ls = lr.stats.as_ref().expect("local stats");
        let rs = rr.stats.as_ref().expect("remote stats crossed the wire");
        assert_eq!(
            deterministic(ls),
            deterministic(rs),
            "executor counters differ between backends for {sql}"
        );
        assert!(
            rs.exec_ns > 0,
            "remote ExecStats should carry executor wall time for {sql}"
        );
    }

    local.close().unwrap();
    remote.close().unwrap();
    drop(remote);
    server.stop();
}

#[test]
fn metrics_snapshot_crosses_the_wire_and_is_monotonic() {
    let (server, addr) = start_server("metrics-wire");
    let mut conn = RemoteConnection::connect(&addr, "admin").unwrap();
    seed_for_stats(&mut conn);

    let before = conn.metrics().unwrap();
    let commits_before = before.counter("txn.commits").expect("txn.commits registered");
    let stmts_before = before
        .counter("session.statements")
        .expect("session.statements registered");
    assert!(
        before.counter("wal.appends").is_some(),
        "durable server should expose WAL counters"
    );

    for _ in 0..5 {
        conn.run("SELECT GID FROM Gene WHERE GID = 'G007'").unwrap();
    }

    let after = conn.metrics().unwrap();
    assert!(
        after.counter("session.statements").unwrap() >= stmts_before + 5,
        "statement counter must advance across snapshots"
    );
    assert!(
        after.counter("txn.commits").unwrap() >= commits_before,
        "counters must be monotonic"
    );
    let lat = after
        .histogram("session.statement_latency_ns")
        .expect("latency histogram registered");
    assert!(lat.count >= 5, "latency histogram records each statement");

    conn.close().unwrap();
    drop(conn);
    server.stop();
}

#[test]
fn group_commit_amortizes_fsyncs_across_clients() {
    let (server, addr) = start_server("group-fsync");
    {
        let mut setup = RemoteConnection::connect(&addr, "admin").unwrap();
        setup.run("CREATE TABLE T (K INT)").unwrap();
        setup.close().unwrap();
    }
    let before = server.fsync_count();
    let clients = 8usize;
    let commits = 16usize;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut conn = RemoteConnection::connect(&addr, "admin").unwrap();
                let ins = conn.prepare("INSERT INTO T VALUES (?)").unwrap();
                for i in 0..commits {
                    conn.execute(&ins, &[Value::Int((c * commits + i) as i64)])
                        .unwrap();
                }
                conn.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = (clients * commits) as u64;
    let fsyncs = server.fsync_count() - before;
    assert!(
        fsyncs < total,
        "expected fewer fsyncs than commits, got {fsyncs} for {total} commits"
    );

    // every acknowledged commit is visible
    let mut check = RemoteConnection::connect(&addr, "admin").unwrap();
    assert_eq!(
        check.run("SELECT K FROM T").unwrap().rows.len(),
        clients * commits
    );
    check.close().unwrap();
    drop(check);
    server.stop();
}
