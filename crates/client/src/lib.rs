//! # bdbms-client
//!
//! The remote half of the transport-agnostic client API
//! ([`bdbms_core::client`]): [`RemoteConnection`] implements
//! [`Connection`] over the wire protocol in [`bdbms_server::proto`], so
//! everything written against the trait — the REPL, the CLI, bench
//! drivers — runs unchanged against an embedded database or a
//! `bdbms-serve` process.
//!
//! [`connect`] is the front door: it takes either a filesystem path
//! (embedded) or a `host:port` address (remote) and hands back a boxed
//! [`Connection`].

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use bdbms_common::metrics::MetricsSnapshot;
use bdbms_common::{BdbmsError, Result, Value};
use bdbms_core::client::{Connection, Rows, StatementHandle};
use bdbms_core::result::{AnnRow, QueryResult};
use bdbms_core::{Database, LocalConnection};
use bdbms_server::proto::{read_response, write_request, Request, Response, DEFAULT_FETCH_ROWS};

pub mod shell;

/// Where a connection target points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A database directory on this machine (embedded engine).
    Local(String),
    /// A `host:port` address of a `bdbms-serve` process.
    Remote(String),
}

/// Classify a connection target: `host:port` (a valid `u16` port after
/// the last colon, no path separators) means remote; anything else is a
/// local database path.  `./4411`-style paths and Windows drive letters
/// stay local because of the separator check.
pub fn parse_target(s: &str) -> Target {
    if let Some((host, port)) = s.rsplit_once(':') {
        let pathy = host.is_empty() || host.contains('/') || host.contains('\\');
        if !pathy && port.parse::<u16>().is_ok() {
            return Target::Remote(s.to_string());
        }
    }
    Target::Local(s.to_string())
}

/// Open a connection to `target` as `user`: a [`RemoteConnection`] for
/// `host:port`, otherwise a [`LocalConnection`] over the database
/// directory at the path (opened if present, created if not).
pub fn connect(target: &str, user: &str) -> Result<Box<dyn Connection>> {
    match parse_target(target) {
        Target::Remote(addr) => Ok(Box::new(RemoteConnection::connect(&addr, user)?)),
        Target::Local(path) => Ok(Box::new(LocalConnection::new(
            Database::open_or_create(&path)?,
            user,
        ))),
    }
}

fn unexpected(resp: &Response) -> BdbmsError {
    BdbmsError::corrupt(format!("unexpected response frame {resp:?}"))
}

fn backend_mismatch() -> BdbmsError {
    BdbmsError::invalid("statement was prepared on a different connection backend")
}

/// A [`Connection`] over TCP to a `bdbms-serve` process.
///
/// Strictly synchronous: one request frame out, one response frame
/// back.  The explicit-transaction flag piggybacked on every response
/// keeps [`in_transaction`](Connection::in_transaction) — and the
/// REPL's `*` prompt — mirroring the server-side session state.
pub struct RemoteConnection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    addr: String,
    user: String,
    in_txn: bool,
    closed: bool,
}

impl RemoteConnection {
    /// Connect and authenticate (`Hello`) as `user`.
    pub fn connect(addr: &str, user: &str) -> Result<RemoteConnection> {
        let stream =
            TcpStream::connect(addr).map_err(|e| BdbmsError::io(format!("connect {addr}: {e}")))?;
        // request/response frames are small; don't let Nagle batch them
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut conn = RemoteConnection {
            reader,
            writer,
            addr: addr.to_string(),
            user: user.to_string(),
            in_txn: false,
            closed: false,
        };
        match conn.roundtrip(&Request::Hello {
            user: user.to_string(),
        })? {
            Response::HelloOk { .. } => Ok(conn),
            other => Err(unexpected(&other)),
        }
    }

    /// The address this connection points at.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One synchronous request/response exchange.  Error frames come
    /// back as `Err` with the engine's exact [`BdbmsError`]; the
    /// transaction flag is folded into local state either way.
    fn roundtrip(&mut self, req: &Request) -> Result<Response> {
        if self.closed {
            return Err(BdbmsError::io("connection is closed"));
        }
        write_request(&mut self.writer, req)?;
        self.writer.flush()?;
        let resp = read_response(&mut self.reader)?;
        if let Some(t) = resp.in_txn() {
            self.in_txn = t;
        }
        if let Response::Error { error, .. } = resp {
            return Err(error);
        }
        Ok(resp)
    }
}

impl Connection for RemoteConnection {
    fn describe(&self) -> String {
        format!("remote server at {}", self.addr)
    }

    fn user(&self) -> &str {
        &self.user
    }

    fn set_user(&mut self, user: &str) -> Result<()> {
        match self.roundtrip(&Request::SetUser {
            user: user.to_string(),
        })? {
            Response::Ok { .. } => {
                self.user = user.to_string();
                Ok(())
            }
            other => Err(unexpected(&other)),
        }
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle> {
        match self.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
        })? {
            Response::PrepareOk {
                stmt, param_count, ..
            } => Ok(StatementHandle::remote(stmt, param_count as usize, sql)),
            other => Err(unexpected(&other)),
        }
    }

    fn execute(&mut self, stmt: &StatementHandle, params: &[Value]) -> Result<QueryResult> {
        let id = stmt.remote_id().ok_or_else(backend_mismatch)?;
        match self.roundtrip(&Request::Execute {
            stmt: id,
            params: params.to_vec(),
        })? {
            Response::Result { result, .. } => Ok(result),
            other => Err(unexpected(&other)),
        }
    }

    fn query<'c>(
        &'c mut self,
        stmt: &StatementHandle,
        params: &[Value],
    ) -> Result<Box<dyn Rows + 'c>> {
        let id = stmt.remote_id().ok_or_else(backend_mismatch)?;
        match self.roundtrip(&Request::Query {
            stmt: id,
            params: params.to_vec(),
        })? {
            Response::CursorOk {
                cursor, columns, ..
            } => Ok(Box::new(RemoteRows {
                conn: self,
                cursor,
                columns,
                buf: VecDeque::new(),
                done: false,
            })),
            other => Err(unexpected(&other)),
        }
    }

    fn run(&mut self, sql: &str) -> Result<QueryResult> {
        match self.roundtrip(&Request::Run {
            sql: sql.to_string(),
        })? {
            Response::Result { result, .. } => Ok(result),
            other => Err(unexpected(&other)),
        }
    }

    fn in_transaction(&self) -> bool {
        self.in_txn
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    fn close(&mut self) -> Result<()> {
        if self.closed {
            return Ok(());
        }
        write_request(&mut self.writer, &Request::Quit)?;
        self.writer.flush()?;
        // consume the Bye so the peer sees an orderly goodbye
        let _ = read_response(&mut self.reader);
        self.closed = true;
        Ok(())
    }
}

impl Drop for RemoteConnection {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

/// Rows streaming off a server-side cursor, paged in
/// [`DEFAULT_FETCH_ROWS`]-sized batches as the client pulls.
pub struct RemoteRows<'c> {
    conn: &'c mut RemoteConnection,
    cursor: u64,
    columns: Vec<String>,
    buf: VecDeque<AnnRow>,
    done: bool,
}

impl Rows for RemoteRows<'_> {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn next_row(&mut self) -> Result<Option<AnnRow>> {
        loop {
            if let Some(row) = self.buf.pop_front() {
                return Ok(Some(row));
            }
            if self.done {
                return Ok(None);
            }
            match self.conn.roundtrip(&Request::Fetch {
                cursor: self.cursor,
                max_rows: DEFAULT_FETCH_ROWS,
            })? {
                Response::RowBatch { rows, done } => {
                    self.buf.extend(rows);
                    self.done = done;
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

impl Drop for RemoteRows<'_> {
    fn drop(&mut self) {
        if !self.done {
            // free the server-side cursor; the ack must be consumed to
            // keep the request/response stream aligned
            let _ = self.conn.roundtrip(&Request::CloseCursor {
                cursor: self.cursor,
            });
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_classification() {
        assert_eq!(
            parse_target("127.0.0.1:4411"),
            Target::Remote("127.0.0.1:4411".into())
        );
        assert_eq!(
            parse_target("localhost:9"),
            Target::Remote("localhost:9".into())
        );
        assert_eq!(
            parse_target("mydb.bdbms"),
            Target::Local("mydb.bdbms".into())
        );
        assert_eq!(
            parse_target("./data/4411"),
            Target::Local("./data/4411".into())
        );
        assert_eq!(
            parse_target("dir/host:4411"),
            Target::Local("dir/host:4411".into())
        );
        assert_eq!(
            parse_target("host:notaport"),
            Target::Local("host:notaport".into())
        );
        assert_eq!(parse_target(":4411"), Target::Local(":4411".into()));
    }
}
