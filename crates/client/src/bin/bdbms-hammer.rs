//! `bdbms-hammer` — the multi-client workload driver.
//!
//! ```text
//! bdbms-hammer HOST:PORT [--clients N] [--commits M] [--reads K]
//! ```
//!
//! Spawns `N` concurrent clients against a running `bdbms-serve`.  Each
//! client INSERTs `M` rows (one autocommitted transaction each — the
//! group-commit workload) and then runs `K` prepared point reads of its
//! own keys.  After the threads join, a verifier connection reads every
//! key back: an acknowledged commit that is not visible afterwards is a
//! hard failure (exit code 1).  CI boots a server, runs this, and then
//! kills the server — the same binary doubles as a smoke test and a
//! load generator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bdbms_client::RemoteConnection;
use bdbms_common::{ErrorCode, Value};
use bdbms_core::client::Connection;

const USAGE: &str = "usage: bdbms-hammer HOST:PORT [--clients N] [--commits M] [--reads K]";

fn main() {
    let mut addr: Option<String> = None;
    let mut clients: usize = 8;
    let mut commits: usize = 25;
    let mut reads: usize = 25;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs a number\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--clients" => clients = grab("--clients"),
            "--commits" => commits = grab("--commits"),
            "--reads" => reads = grab("--reads"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`\n{USAGE}");
                std::process::exit(2);
            }
            a if addr.is_none() => addr = Some(a.to_string()),
            extra => {
                eprintln!("unexpected argument `{extra}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    // one setup connection creates the table (tolerating an earlier run)
    let mut setup = RemoteConnection::connect(&addr, "admin").unwrap_or_else(|e| {
        eprintln!("bdbms-hammer: {e}");
        std::process::exit(1);
    });
    if let Err(e) = setup.run("CREATE TABLE Hammer (K INT, Who TEXT)") {
        if e.code() != ErrorCode::AlreadyExists {
            eprintln!("bdbms-hammer: setup failed: {e}");
            std::process::exit(1);
        }
    }
    // offset this run's keys past anything an earlier run left behind
    let base = match setup.run("SELECT K FROM Hammer") {
        Ok(r) => {
            r.rows
                .iter()
                .filter_map(|row| match row.values[0] {
                    Value::Int(k) => Some(k),
                    _ => None,
                })
                .max()
                .unwrap_or(-1)
                + 1
        }
        Err(e) => {
            eprintln!("bdbms-hammer: scan failed: {e}");
            std::process::exit(1);
        }
    };

    let acked = Arc::new(AtomicU64::new(0));
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let acked = acked.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut conn = RemoteConnection::connect(&addr, "admin")
                    .map_err(|e| format!("client {c}: {e}"))?;
                let ins = conn
                    .prepare("INSERT INTO Hammer VALUES (?, ?)")
                    .map_err(|e| format!("client {c}: {e}"))?;
                let who = format!("client-{c}");
                for i in 0..commits {
                    let key = base + (c * commits + i) as i64;
                    conn.execute(&ins, &[Value::Int(key), Value::Text(who.clone())])
                        .map_err(|e| format!("client {c} commit {i}: {e}"))?;
                    acked.fetch_add(1, Ordering::Relaxed);
                }
                let sel = conn
                    .prepare("SELECT Who FROM Hammer WHERE K = ?")
                    .map_err(|e| format!("client {c}: {e}"))?;
                for i in 0..reads {
                    let key = base + (c * commits + i % commits.max(1)) as i64;
                    let mut rows = conn
                        .query(&sel, &[Value::Int(key)])
                        .map_err(|e| format!("client {c} read {i}: {e}"))?;
                    let row = rows
                        .next_row()
                        .map_err(|e| format!("client {c} read {i}: {e}"))?;
                    if row.is_none() {
                        return Err(format!("client {c}: committed key {key} not readable"));
                    }
                }
                conn.close().map_err(|e| format!("client {c}: {e}"))?;
                Ok(())
            })
        })
        .collect();

    let mut failed = false;
    for h in handles {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => {
                eprintln!("bdbms-hammer: {msg}");
                failed = true;
            }
            Err(_) => {
                eprintln!("bdbms-hammer: client thread panicked");
                failed = true;
            }
        }
    }
    let elapsed = start.elapsed();

    // verify every acknowledged commit is visible
    let expect = (clients * commits) as i64;
    let visible = match setup.run("SELECT K FROM Hammer") {
        Ok(r) => r
            .rows
            .iter()
            .filter(|row| matches!(row.values[0], Value::Int(k) if k >= base))
            .count() as i64,
        Err(e) => {
            eprintln!("bdbms-hammer: verification scan failed: {e}");
            std::process::exit(1);
        }
    };
    // the server-side registry after the storm: group-commit batch
    // sizes, fsync latency, buffer-pool hit rate, per-statement latency
    match setup.metrics() {
        Ok(snapshot) => {
            println!("--- server metrics ---");
            print!("{}", snapshot.render());
        }
        Err(e) => eprintln!("bdbms-hammer: metrics snapshot failed: {e}"),
    }
    let _ = setup.close();

    println!(
        "hammered {addr}: {clients} client(s) x {commits} commit(s) + {reads} read(s) in {:.2?} \
         ({} acked, {visible}/{expect} visible)",
        elapsed,
        acked.load(Ordering::Relaxed),
    );
    if failed || visible != expect {
        eprintln!("bdbms-hammer: FAILED");
        std::process::exit(1);
    }
}
