//! `bdbms-cli` — the connection-oriented A-SQL shell.
//!
//! ```text
//! bdbms-cli                        # in-memory scratch database
//! bdbms-cli path/to/db.bdbms       # embedded: open or create
//! bdbms-cli 127.0.0.1:4411         # remote: connect to bdbms-serve
//! bdbms-cli HOST:PORT --user alice # connect as a specific user
//! ```
//!
//! Identical to `bdbms-repl` (both drive the shared shell over the
//! transport-agnostic `Connection` trait); this binary ships with the
//! client crate so a machine without the engine sources still gets a
//! shell.

use bdbms_client::shell;

const USAGE: &str = "usage: bdbms-cli [PATH | HOST:PORT] [--user NAME]";

fn main() {
    let mut target: Option<String> = None;
    let mut user = "admin".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--user" => match args.next() {
                Some(u) => user = u,
                None => {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`\n{USAGE}");
                std::process::exit(2);
            }
            t if target.is_none() => target = Some(t.to_string()),
            extra => {
                eprintln!("unexpected argument `{extra}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    match shell::open_target(target.as_deref(), &user) {
        Some((conn, name)) => shell::run(conn, name),
        None => std::process::exit(1),
    }
}
