//! The interactive A-SQL shell, shared by `bdbms-repl` and `bdbms-cli`.
//!
//! The shell holds a `Box<dyn Connection>` and does not know whether it
//! is talking to an embedded database or a `bdbms-serve` process — the
//! same statements, the same prompt (including the `*` transaction
//! marker, which mirrors *server-side* transaction state on remote
//! connections via the flag piggybacked on every response frame).
//! Engine-level dot-commands (`.checkpoint`, `.tables`, `.db` detail)
//! light up only when [`Connection::local_database`] offers the engine.

use std::io::{BufRead, Write};

use bdbms_core::client::Connection;
use bdbms_core::Database;

use crate::{connect, parse_target, Target};

const HELP: &str = "\
dot-commands:
  .help            this help
  .open TARGET     switch to TARGET: a database path (created if
                   missing) or a host:port of a bdbms-serve process;
                   the current connection is closed first
  .db              show what this connection points at
  .checkpoint      write a checkpoint now (embedded databases only)
  .user NAME       switch the acting user (default: admin)
  .demo            load the paper's Figure 2 gene tables + annotations
  .import PATH TABLE [FASTA|TSV]
                   bulk-load a file into TABLE via COPY (format inferred
                   from the extension unless given; on remote connections
                   the *server* reads PATH from its own filesystem)
  .tables          list tables (embedded databases only)
  .stats           executor counters of the last statement (works on
                   remote connections too — stats cross the wire)
  .metrics         engine-wide metrics registry snapshot
  .quit            close the connection and exit
everything else is executed as (A-)SQL, e.g.:
  SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation) AWHERE CONTAINS 'GenoBase'
  ADD ANNOTATION TO T.notes VALUE 'checked' ON (SELECT G.c FROM T G)
  SHOW PENDING OPERATIONS / SHOW OUTDATED / VALIDATE T
  BEGIN / SAVEPOINT s / ROLLBACK TO s / COMMIT   (prompt shows * in a txn)";

/// The Figure 2 scenario, loaded through whatever connection is open.
fn load_demo(conn: &mut dyn Connection) {
    let stmts = [
        "CREATE TABLE DB1_Gene (GID TEXT, GName TEXT, GSequence TEXT)",
        "CREATE TABLE DB2_Gene (GID TEXT, GName TEXT, GSequence TEXT)",
        "CREATE ANNOTATION TABLE GAnnotation ON DB1_Gene",
        "CREATE ANNOTATION TABLE GAnnotation ON DB2_Gene",
        "INSERT INTO DB1_Gene VALUES ('JW0080','mraW','ATGATGGAAAA'), \
         ('JW0082','ftsI','ATGAAAGCAGC'), ('JW0055','yabP','ATGAAAGTATC'), \
         ('JW0078','fruR','GTGAAACTGGA')",
        "INSERT INTO DB2_Gene VALUES ('JW0080','mraW','ATGATGGAAAA'), \
         ('JW0041','fixB','ATGAACACGTT'), ('JW0037','caiB','ATGGATCATCT'), \
         ('JW0027','ispH','ATGCAGATCCT'), ('JW0055','yabP','ATGAAAGTATC')",
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B3: obtained from GenoBase</Annotation>' \
         ON (SELECT G.GSequence FROM DB2_Gene G)",
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B5: This gene has an unknown function</Annotation>' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')",
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE '<Annotation>A2: These genes were obtained from RegulonDB</Annotation>' \
         ON (SELECT G.* FROM DB1_Gene G WHERE GID IN ('JW0055','JW0078'))",
    ];
    for s in stmts {
        if let Err(e) = conn.run(s) {
            eprintln!("demo load failed: {e}");
            return;
        }
    }
    println!("Figure 2 scenario loaded (DB1_Gene, DB2_Gene, GAnnotation). Try:");
    println!("  SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation)");
    println!("  INTERSECT SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)");
}

/// One-per-line dump of the executor counters shown by `.stats`.
fn render_stats(st: &bdbms_core::executor::ExecStats) -> String {
    fn ns(v: u64) -> String {
        if v >= 1_000_000_000 {
            format!("{:.2}s", v as f64 / 1e9)
        } else if v >= 1_000_000 {
            format!("{:.2}ms", v as f64 / 1e6)
        } else if v >= 1_000 {
            format!("{:.2}us", v as f64 / 1e3)
        } else {
            format!("{v}ns")
        }
    }
    format!(
        "rows_fetched={} scan_filtered={} index_probes={} seq_index_probes={}\n\
         full_scans={} index_only_scans={} anns_attached={} batches={}\n\
         limit_pushdowns={} rows_limit_discarded={}\n\
         join_order={:?} indexes={:?}\n\
         parse={} plan={} exec={}",
        st.rows_fetched,
        st.rows_scan_filtered,
        st.index_probes,
        st.seq_index_probes,
        st.full_scans,
        st.index_only_scans,
        st.anns_attached,
        st.scan_batches,
        st.limit_pushdowns,
        st.rows_limit_discarded,
        st.join_order,
        st.chosen_indexes,
        ns(st.parse_ns),
        ns(st.plan_ns),
        ns(st.exec_ns),
    )
}

fn list_tables(db: &Database) {
    for t in db.catalog().tables() {
        let anns: Vec<&str> = t.ann_sets.iter().map(|s| s.name.as_str()).collect();
        println!(
            "{:<16} {:>6} rows   annotation tables: [{}]",
            t.name,
            t.len(),
            anns.join(", ")
        );
    }
}

/// Open a connection to `target` (or in-memory when `None`), reporting
/// recovery like the standalone REPL always has.  Returns the
/// connection plus the prompt stem.
pub fn open_target(target: Option<&str>, user: &str) -> Option<(Box<dyn Connection>, String)> {
    let Some(target) = target else {
        return Some((
            Box::new(bdbms_core::LocalConnection::in_memory(user)),
            "bdbms".to_string(),
        ));
    };
    let existed = matches!(parse_target(target), Target::Local(ref p)
        if std::path::Path::new(p).join("data.bdb").exists());
    match connect(target, user) {
        Ok(mut conn) => {
            let name = match parse_target(target) {
                Target::Remote(addr) => {
                    println!("connected to {}", conn.describe());
                    addr
                }
                Target::Local(path) => {
                    report_recovery(&path, existed, conn.local_database());
                    std::path::Path::new(&path)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "bdbms".to_string())
                }
            };
            Some((conn, name))
        }
        Err(e) => {
            eprintln!("cannot open `{target}`: {e}");
            None
        }
    }
}

fn report_recovery(path: &str, existed: bool, db: Option<&mut Database>) {
    let Some(db) = db else { return };
    if !existed {
        println!("created `{path}`");
        return;
    }
    match db.last_recovery() {
        Some(rec) if rec.replayed_commits > 0 || rec.discarded_ops > 0 || rec.torn_bytes > 0 => {
            println!(
                "recovered `{path}`: {} committed transaction(s) replayed, \
                 {} uncommitted op(s) discarded, {} torn byte(s) truncated",
                rec.replayed_commits, rec.discarded_ops, rec.torn_bytes
            );
        }
        _ => println!("opened `{path}` (clean)"),
    }
}

/// Close a connection, reporting the shutdown checkpoint of embedded
/// durable databases.
fn close_connection(mut conn: Box<dyn Connection>) {
    let durable = conn
        .local_database()
        .map(|db| db.is_persistent())
        .unwrap_or(false);
    match conn.close() {
        Ok(()) if durable => println!("checkpointed"),
        Ok(()) => {}
        Err(e) => eprintln!("close failed: {e}"),
    }
    drop(conn); // embedded: Database drop writes the shutdown checkpoint
}

/// The interactive loop: read statements (and dot-commands) from stdin
/// until `.quit` or EOF.
pub fn run(mut conn: Box<dyn Connection>, mut name: String) {
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut last_stats: Option<bdbms_core::executor::ExecStats> = None;
    println!("bdbms — CIDR 2007 reproduction. `.help` for commands, `.quit` to exit.");
    loop {
        if !buffer.is_empty() {
            print!("   ..> ");
        } else if conn.in_transaction() {
            // `*` marks an open BEGIN — server-side state when remote
            print!("{name}*> ");
        } else {
            print!("{name}> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            let mut parts = trimmed.splitn(2, ' ');
            match parts.next().unwrap() {
                ".quit" | ".exit" => break,
                ".help" => println!("{HELP}"),
                ".demo" => load_demo(conn.as_mut()),
                ".tables" => match conn.local_database() {
                    Some(db) => list_tables(db),
                    None => println!(".tables needs an embedded database (remote connection)"),
                },
                ".open" => match parts.next() {
                    Some(t) if !t.trim().is_empty() => {
                        let t = t.trim().to_string();
                        let user = conn.user().to_string();
                        // close the old connection *before* opening the
                        // new one — two live handles on one directory
                        // would checkpoint over each other
                        close_connection(std::mem::replace(
                            &mut conn,
                            Box::new(bdbms_core::LocalConnection::in_memory(&user)),
                        ));
                        match open_target(Some(&t), &user) {
                            Some((new_conn, new_name)) => {
                                conn = new_conn;
                                name = new_name;
                            }
                            None => {
                                name = "bdbms".to_string();
                                println!("fell back to an in-memory database (`.open` to retry)");
                            }
                        }
                    }
                    _ => println!("usage: .open PATH | .open HOST:PORT"),
                },
                ".db" => match conn.local_database() {
                    Some(db) => match db.path() {
                        Some(p) => println!(
                            "database: {} ({} WAL segment(s))",
                            p.display(),
                            db.wal_segment_count().unwrap_or(0)
                        ),
                        None => println!("database: in-memory (state dies with the process)"),
                    },
                    None => println!("database: {}", conn.describe()),
                },
                ".checkpoint" => match conn.local_database() {
                    Some(db) => match db.checkpoint() {
                        Ok(()) if db.is_persistent() => println!("checkpointed"),
                        Ok(()) => println!("in-memory database: nothing to checkpoint"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => {
                        println!(".checkpoint needs an embedded database (the server checkpoints)")
                    }
                },
                ".import" => {
                    let args: Vec<&str> = parts.next().unwrap_or("").split_whitespace().collect();
                    match args.as_slice() {
                        [path, ..] if path.contains('\'') => {
                            println!("error: path `{path}` contains a quote");
                        }
                        [path, table] | [path, table, _] => {
                            // `.import` is sugar over COPY, so it works
                            // identically on embedded and remote
                            // connections (the server resolves PATH)
                            let mut sql = format!("COPY {table} FROM '{path}'");
                            if let Some(f) = args.get(2) {
                                sql.push_str(&format!(" FORMAT {}", f.to_uppercase()));
                            }
                            match conn.run(&sql) {
                                Ok(result) => println!("{result}"),
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        _ => println!("usage: .import PATH TABLE [FASTA|TSV]"),
                    }
                }
                ".user" => match parts.next() {
                    Some(u) if !u.trim().is_empty() => match conn.set_user(u.trim()) {
                        Ok(()) => println!("session user is now `{}`", conn.user()),
                        Err(e) => println!("error: {e}"),
                    },
                    _ => println!("usage: .user NAME"),
                },
                ".stats" => match &last_stats {
                    Some(st) => println!("{}", render_stats(st)),
                    None => println!("no statement has produced executor stats yet"),
                },
                ".metrics" => match conn.metrics() {
                    Ok(s) => print!("{}", s.render()),
                    Err(e) => println!("error: {e}"),
                },
                other => println!("unknown command {other} (`.help`)"),
            }
            continue;
        }
        // accumulate until `;` or a blank line after content
        if !trimmed.is_empty() {
            buffer.push_str(&line);
            if !trimmed.ends_with(';') {
                continue;
            }
        } else if buffer.is_empty() {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        match conn.run(&stmt) {
            Ok(result) => {
                if let Some(st) = &result.stats {
                    last_stats = Some(st.clone());
                }
                println!("{result}");
            }
            Err(e) => println!("error: {e}"),
        }
    }
    // `.quit` / EOF: embedded durable databases checkpoint cleanly,
    // remote connections say goodbye
    close_connection(conn);
    println!("bye");
}
