//! Property tests: every access method must agree with a naive model.

use bdbms_index::bptree::{prefix_range, BPlusTree};
use bdbms_index::kdtree::{KdTreeOps, PointQuery};
use bdbms_index::quadtree::QuadtreeOps;
use bdbms_index::regex::Regex;
use bdbms_index::trie::{StrQuery, TrieOps};
use bdbms_index::{RTree, Rect, SpGist};
use proptest::prelude::*;

fn arb_dna() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// B+-tree: get/range/iter agree with a sorted Vec model.
    #[test]
    fn bptree_matches_sorted_model(
        entries in prop::collection::vec((0i64..200, 0u32..1000), 0..300),
        lo in 0i64..200,
        len in 0i64..100,
        fanout in 4usize..16,
    ) {
        let mut t = BPlusTree::with_fanout(fanout);
        let mut model = entries.clone();
        for (k, v) in &entries {
            t.insert(*k, *v);
        }
        model.sort_by_key(|(k, _)| *k);
        // full iteration
        let all = t.iter_all();
        prop_assert_eq!(all.len(), model.len());
        let keys: Vec<i64> = all.iter().map(|(k, _)| *k).collect();
        let model_keys: Vec<i64> = model.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(keys, model_keys);
        // point lookups (multiset equality)
        for probe in [lo, lo + len] {
            let mut got = t.get(&probe);
            got.sort_unstable();
            let mut want: Vec<u32> = entries
                .iter()
                .filter(|(k, _)| *k == probe)
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        // range scan
        let hi = lo + len;
        let got: Vec<i64> = t.range(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let want: Vec<i64> = model
            .iter()
            .map(|(k, _)| *k)
            .filter(|k| *k >= lo && *k < hi)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Trie: exact / prefix / range / regex agree with naive filtering.
    #[test]
    fn trie_matches_naive(
        keys in prop::collection::vec(arb_dna(), 0..150),
        probe in arb_dna(),
        cap in 2usize..10,
    ) {
        let mut t = SpGist::with_leaf_capacity(TrieOps, cap);
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.clone(), i);
        }
        // exact
        let got = t.search(&StrQuery::Exact(probe.clone())).len();
        let want = keys.iter().filter(|k| **k == probe).count();
        prop_assert_eq!(got, want, "exact");
        // prefix
        let got = t.search(&StrQuery::Prefix(probe.clone())).len();
        let want = keys.iter().filter(|k| k.starts_with(&probe)).count();
        prop_assert_eq!(got, want, "prefix");
        // range [probe, probe ++ "T")
        let mut hi = probe.clone();
        hi.push(b'T');
        let got = t.search(&StrQuery::Range(probe.clone(), Some(hi.clone()))).len();
        let want = keys
            .iter()
            .filter(|k| k.as_slice() >= probe.as_slice() && k.as_slice() < hi.as_slice())
            .count();
        prop_assert_eq!(got, want, "range");
        // regex: anything starting with the probe then any DNA tail
        let pat = format!(
            "{}[ACGT]*",
            probe.iter().map(|&b| b as char).collect::<String>()
        );
        let re = Regex::compile(&pat).unwrap();
        let got = t.search(&StrQuery::Regex(re)).len();
        prop_assert_eq!(got, keys.iter().filter(|k| k.starts_with(&probe)).count(), "regex");
    }

    /// Trie prefix query equals B+-tree prefix range on identical data.
    #[test]
    fn trie_and_bptree_agree_on_prefix(
        keys in prop::collection::vec(arb_dna(), 0..120),
        probe in arb_dna(),
    ) {
        let mut trie = SpGist::with_leaf_capacity(TrieOps, 4);
        let mut bp: BPlusTree<Vec<u8>, usize> = BPlusTree::with_fanout(8);
        for (i, k) in keys.iter().enumerate() {
            trie.insert(k.clone(), i);
            bp.insert(k.clone(), i);
        }
        let mut a: Vec<usize> = trie
            .search(&StrQuery::Prefix(probe.clone()))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let mut b: Vec<usize> = prefix_range(&bp, &probe).into_iter().map(|(_, v)| v).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// kd-tree, quadtree and R-tree all return the same window result.
    #[test]
    fn spatial_structures_agree(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..200),
        wx in 0.0f64..100.0,
        wy in 0.0f64..100.0,
        wl in 0.0f64..40.0,
    ) {
        let mut kd = SpGist::with_leaf_capacity(KdTreeOps, 4);
        let mut qt = SpGist::with_leaf_capacity(QuadtreeOps, 4);
        let mut rt = RTree::with_capacity(8);
        for (i, (x, y)) in pts.iter().enumerate() {
            kd.insert([*x, *y], i);
            qt.insert([*x, *y], i);
            rt.insert(Rect::point(*x, *y), i as u64);
        }
        let (lo, hi) = ([wx, wy], [wx + wl, wy + wl]);
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, (x, y))| *x >= lo[0] && *x <= hi[0] && *y >= lo[1] && *y <= hi[1])
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        let mut a: Vec<usize> = kd
            .search(&PointQuery::Window(lo, hi))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let mut b: Vec<usize> = qt
            .search(&PointQuery::Window(lo, hi))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let mut c: Vec<usize> = rt
            .search(&Rect::new(lo, hi))
            .into_iter()
            .map(|(_, p)| p as usize)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        c.sort_unstable();
        prop_assert_eq!(&a, &want);
        prop_assert_eq!(&b, &want);
        prop_assert_eq!(&c, &want);
    }

    /// kNN over kd-tree and quadtree returns the true k nearest.
    #[test]
    fn knn_is_exact(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150),
        qx in 0.0f64..100.0,
        qy in 0.0f64..100.0,
        k in 1usize..12,
    ) {
        let mut kd = SpGist::with_leaf_capacity(KdTreeOps, 4);
        let mut qt = SpGist::with_leaf_capacity(QuadtreeOps, 4);
        for (i, (x, y)) in pts.iter().enumerate() {
            kd.insert([*x, *y], i);
            qt.insert([*x, *y], i);
        }
        let mut dists: Vec<f64> = pts
            .iter()
            .map(|(x, y)| ((x - qx).powi(2) + (y - qy).powi(2)).sqrt())
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let kk = k.min(pts.len());
        for t in [kd.knn(&[qx, qy], k), qt.knn(&[qx, qy], k)] {
            prop_assert_eq!(t.len(), kk);
            for (i, (_, _, d)) in t.iter().enumerate() {
                prop_assert!((d - dists[i]).abs() < 1e-9,
                    "rank {} dist {} expected {}", i, d, dists[i]);
            }
        }
    }

    /// Regex engine agrees with a tiny backtracking oracle on DNA patterns.
    #[test]
    fn regex_star_semantics(body in arb_dna(), tail in arb_dna()) {
        // pattern: body then C* then tail — check against constructed inputs
        let pat: String = body.iter().chain(tail.iter()).map(|&b| b as char).collect();
        let mid: String = body.iter().map(|&b| b as char).collect::<String>()
            + "C*"
            + &tail.iter().map(|&b| b as char).collect::<String>();
        let re = Regex::compile(&mid).unwrap();
        // zero repetitions
        prop_assert!(re.is_match(pat.as_bytes()));
        // three repetitions
        let mut with_c = body.clone();
        with_c.extend_from_slice(b"CCC");
        with_c.extend_from_slice(&tail);
        prop_assert!(re.is_match(&with_c));
    }
}
