//! A small Thompson-NFA regular-expression engine.
//!
//! §7.1 of the paper lists *"regular expression match search"* among the
//! advanced operations implemented over SP-GiST tries.  Serving a regex
//! query from a trie requires asking, at every trie node, *"can this
//! pattern still match some string extending the current prefix?"* — that
//! is exactly the NFA-state-set question, so we implement a classic
//! Thompson construction with a simulation API exposing intermediate state
//! sets ([`Regex::feed`] / [`StateSet`]).
//!
//! Supported syntax: literals, `.`, character classes `[A-Z]` / `[^...]`,
//! alternation `|`, grouping `(...)`, and the postfix operators `*`, `+`,
//! `?`.  Patterns are anchored at both ends (full-match semantics), which
//! is what index probes need; substring semantics are obtained by wrapping
//! the pattern in `.*...?.*` by the caller if desired.

use bdbms_common::{BdbmsError, Result};

/// One NFA transition condition.
#[derive(Debug, Clone)]
enum Cond {
    /// Match exactly this byte.
    Byte(u8),
    /// Match any byte.
    Any,
    /// Match a set of bytes (inclusive ranges), possibly negated.
    Class {
        ranges: Vec<(u8, u8)>,
        negated: bool,
    },
}

impl Cond {
    fn matches(&self, b: u8) -> bool {
        match self {
            Cond::Byte(c) => *c == b,
            Cond::Any => true,
            Cond::Class { ranges, negated } => {
                let inside = ranges.iter().any(|(lo, hi)| *lo <= b && b <= *hi);
                inside != *negated
            }
        }
    }
}

#[derive(Debug, Clone)]
enum State {
    /// Consume one byte matching `cond`, go to `next`.
    Consume { cond: Cond, next: usize },
    /// ε-split to both targets.
    Split { a: usize, b: usize },
    /// Accepting state.
    Accept,
}

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    states: Vec<State>,
    start: usize,
    source: String,
}

/// A set of live NFA states during simulation (ε-closed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSet {
    live: Vec<bool>,
}

impl StateSet {
    /// No live states: the pattern can no longer match any extension.
    pub fn is_dead(&self) -> bool {
        !self.live.iter().any(|&b| b)
    }
}

// ---- parser (recursive descent over the pattern bytes) ----

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

/// Parsed AST.
enum Ast {
    Empty,
    Byte(u8),
    Any,
    Class {
        ranges: Vec<(u8, u8)>,
        negated: bool,
    },
    Concat(Box<Ast>, Box<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse_alt(&mut self) -> Result<Ast> {
        let mut left = self.parse_concat()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let right = self.parse_concat()?;
            left = Ast::Alt(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_concat(&mut self) -> Result<Ast> {
        let mut node = Ast::Empty;
        let mut first = true;
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            let atom = self.parse_postfix()?;
            node = if first {
                atom
            } else {
                Ast::Concat(Box::new(node), Box::new(atom))
            };
            first = false;
        }
        Ok(node)
    }

    fn parse_postfix(&mut self) -> Result<Ast> {
        let mut atom = self.parse_atom()?;
        while let Some(b) = self.peek() {
            atom = match b {
                b'*' => {
                    self.bump();
                    Ast::Star(Box::new(atom))
                }
                b'+' => {
                    self.bump();
                    Ast::Plus(Box::new(atom))
                }
                b'?' => {
                    self.bump();
                    Ast::Opt(Box::new(atom))
                }
                _ => break,
            };
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Ast> {
        match self.bump() {
            None => Err(BdbmsError::syntax("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(BdbmsError::syntax("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'.') => Ok(Ast::Any),
            Some(b'[') => self.parse_class(),
            Some(b'\\') => {
                let b = self
                    .bump()
                    .ok_or_else(|| BdbmsError::syntax("trailing backslash"))?;
                Ok(Ast::Byte(b))
            }
            Some(b @ (b'*' | b'+' | b'?' | b')')) => Err(BdbmsError::syntax(format!(
                "misplaced `{}` in pattern",
                b as char
            ))),
            Some(b) => Ok(Ast::Byte(b)),
        }
    }

    fn parse_class(&mut self) -> Result<Ast> {
        let mut negated = false;
        if self.peek() == Some(b'^') {
            self.bump();
            negated = true;
        }
        let mut ranges = Vec::new();
        loop {
            let b = self
                .bump()
                .ok_or_else(|| BdbmsError::syntax("unclosed character class"))?;
            if b == b']' {
                if ranges.is_empty() {
                    return Err(BdbmsError::syntax("empty character class"));
                }
                break;
            }
            let lo = if b == b'\\' {
                self.bump()
                    .ok_or_else(|| BdbmsError::syntax("trailing backslash in class"))?
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = self
                    .bump()
                    .ok_or_else(|| BdbmsError::syntax("unclosed range in class"))?;
                if hi < lo {
                    return Err(BdbmsError::syntax(format!(
                        "inverted range {}-{} in class",
                        lo as char, hi as char
                    )));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Class { ranges, negated })
    }
}

// ---- compiler (Thompson construction) ----

struct Compiler {
    states: Vec<State>,
}

impl Compiler {
    fn push(&mut self, s: State) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    /// Compile `ast` so that on success control flows to `next`.
    /// Returns the entry state index.
    fn compile(&mut self, ast: &Ast, next: usize) -> usize {
        match ast {
            Ast::Empty => next,
            Ast::Byte(b) => self.push(State::Consume {
                cond: Cond::Byte(*b),
                next,
            }),
            Ast::Any => self.push(State::Consume {
                cond: Cond::Any,
                next,
            }),
            Ast::Class { ranges, negated } => self.push(State::Consume {
                cond: Cond::Class {
                    ranges: ranges.clone(),
                    negated: *negated,
                },
                next,
            }),
            Ast::Concat(a, b) => {
                let b_entry = self.compile(b, next);
                self.compile(a, b_entry)
            }
            Ast::Alt(a, b) => {
                let a_entry = self.compile(a, next);
                let b_entry = self.compile(b, next);
                self.push(State::Split {
                    a: a_entry,
                    b: b_entry,
                })
            }
            Ast::Star(inner) => {
                // placeholder split, patched after compiling the body
                let split = self.push(State::Split { a: 0, b: 0 });
                let entry = self.compile(inner, split);
                self.states[split] = State::Split { a: entry, b: next };
                split
            }
            Ast::Plus(inner) => {
                let split = self.push(State::Split { a: 0, b: 0 });
                let entry = self.compile(inner, split);
                self.states[split] = State::Split { a: entry, b: next };
                entry
            }
            Ast::Opt(inner) => {
                let entry = self.compile(inner, next);
                self.push(State::Split { a: entry, b: next })
            }
        }
    }
}

impl Regex {
    /// Compile `pattern` (full-match semantics).
    pub fn compile(pattern: &str) -> Result<Regex> {
        let mut p = Parser {
            pat: pattern.as_bytes(),
            pos: 0,
        };
        let ast = p.parse_alt()?;
        if p.pos != p.pat.len() {
            return Err(BdbmsError::syntax(format!(
                "unexpected `{}` at position {}",
                p.pat[p.pos] as char, p.pos
            )));
        }
        let mut c = Compiler { states: Vec::new() };
        let accept = c.push(State::Accept);
        let start = c.compile(&ast, accept);
        Ok(Regex {
            states: c.states,
            start,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    fn closure(&self, set: &mut Vec<bool>, s: usize) {
        if set[s] {
            return;
        }
        set[s] = true;
        if let State::Split { a, b } = &self.states[s] {
            self.closure(set, *a);
            self.closure(set, *b);
        }
    }

    /// The initial ε-closed state set.
    pub fn start_set(&self) -> StateSet {
        let mut live = vec![false; self.states.len()];
        self.closure(&mut live, self.start);
        StateSet { live }
    }

    /// Advance `set` by one input byte.
    pub fn feed(&self, set: &StateSet, byte: u8) -> StateSet {
        let mut live = vec![false; self.states.len()];
        for (i, on) in set.live.iter().enumerate() {
            if !on {
                continue;
            }
            if let State::Consume { cond, next } = &self.states[i] {
                if cond.matches(byte) {
                    self.closure(&mut live, *next);
                }
            }
        }
        StateSet { live }
    }

    /// Advance `set` by a sequence of bytes.
    pub fn feed_all(&self, set: &StateSet, bytes: &[u8]) -> StateSet {
        let mut s = set.clone();
        for &b in bytes {
            if s.is_dead() {
                break;
            }
            s = self.feed(&s, b);
        }
        s
    }

    /// Is `set` accepting (i.e. the input consumed so far is a full match)?
    pub fn is_accepting(&self, set: &StateSet) -> bool {
        set.live
            .iter()
            .enumerate()
            .any(|(i, on)| *on && matches!(self.states[i], State::Accept))
    }

    /// Full-match test over a byte string.
    pub fn is_match(&self, input: &[u8]) -> bool {
        let s = self.feed_all(&self.start_set(), input);
        self.is_accepting(&s)
    }

    /// Can the pattern match *some extension* of `prefix`?  This is the
    /// pruning predicate the SP-GiST trie uses while descending.
    pub fn can_match_extension(&self, prefix: &[u8]) -> bool {
        !self.feed_all(&self.start_set(), prefix).is_dead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::compile(pat).unwrap().is_match(s.as_bytes())
    }

    #[test]
    fn literals() {
        assert!(m("ATG", "ATG"));
        assert!(!m("ATG", "ATGC"));
        assert!(!m("ATG", "AT"));
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("A.G", "ATG"));
        assert!(m("A.G", "ACG"));
        assert!(!m("A.G", "AG"));
        assert!(m("[ACGT]+", "GATTACA"));
        assert!(!m("[ACGT]+", "GATTXCA"));
        assert!(m("[^0-9]+", "gene"));
        assert!(!m("[^0-9]+", "gene7"));
        assert!(m("[A-Z][a-z]*", "Gene"));
    }

    #[test]
    fn postfix_operators() {
        assert!(m("AT*G", "AG"));
        assert!(m("AT*G", "ATTTG"));
        assert!(m("AT+G", "ATG"));
        assert!(!m("AT+G", "AG"));
        assert!(m("AT?G", "AG"));
        assert!(m("AT?G", "ATG"));
        assert!(!m("AT?G", "ATTG"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("ATG|GTG", "GTG"));
        assert!(m("A(TG|CC)A", "ATGA"));
        assert!(m("A(TG|CC)A", "ACCA"));
        assert!(!m("A(TG|CC)A", "AGGA"));
        assert!(m("(AT)+", "ATATAT"));
        assert!(!m("(AT)+", "ATA"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\*b", "a*b"));
        assert!(!m(r"a\*b", "ab"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::compile("(ab").is_err());
        assert!(Regex::compile("*a").is_err());
        assert!(Regex::compile("[abc").is_err());
        assert!(Regex::compile("[]").is_err());
        assert!(Regex::compile("[z-a]").is_err());
        assert!(Regex::compile("ab)").is_err());
    }

    #[test]
    fn extension_pruning() {
        let re = Regex::compile("ATG[ACGT]*").unwrap();
        assert!(re.can_match_extension(b"ATG"));
        assert!(re.can_match_extension(b"AT"));
        assert!(re.can_match_extension(b""));
        assert!(!re.can_match_extension(b"AC"));
        assert!(!re.can_match_extension(b"ATGX"));
    }

    #[test]
    fn incremental_feed_equals_batch() {
        let re = Regex::compile("(HE*|L+)[A-Z]").unwrap();
        let input = b"HEEEX";
        let mut s = re.start_set();
        for &b in input {
            s = re.feed(&s, b);
        }
        assert_eq!(s, re.feed_all(&re.start_set(), input));
        assert!(re.is_accepting(&s));
    }

    #[test]
    fn protein_motif_patterns() {
        // prosite-like motif: H-x(2)-E translated to our syntax
        let re = Regex::compile("H..E").unwrap();
        assert!(re.is_match(b"HLLE"));
        assert!(!re.is_match(b"HLE"));
        // secondary-structure run pattern
        assert!(m("L+H+E+", "LLHHHHEE"));
        assert!(!m("L+H+E+", "LLHHHH"));
    }
}
