//! A 2-D R-tree with quadratic split.
//!
//! Two roles in the reproduction:
//!
//! 1. the *spatial baseline* SP-GiST is compared against (§7.1 cites
//!    experiments showing space-partitioning trees beating R-trees for
//!    several operations), and
//! 2. the *3-sided range structure* inside the SBC-tree — the paper says
//!    *"The SBC-tree index is prototyped in PostgreSQL with an R-tree in
//!    place of the 3-sided structure"*, and we make the same substitution
//!    via [`RTree::three_sided`].

use bdbms_common::stats::AccessStats;

/// Axis-aligned rectangle (degenerate rectangles are points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner `(x, y)`.
    pub min: [f64; 2],
    /// Maximum corner `(x, y)`.
    pub max: [f64; 2],
}

impl Rect {
    /// A point rectangle.
    pub fn point(x: f64, y: f64) -> Rect {
        Rect {
            min: [x, y],
            max: [x, y],
        }
    }

    /// Rectangle from corners (normalizing min/max).
    pub fn new(a: [f64; 2], b: [f64; 2]) -> Rect {
        Rect {
            min: [a[0].min(b[0]), a[1].min(b[1])],
            max: [a[0].max(b[0]), a[1].max(b[1])],
        }
    }

    /// Does `self` intersect `other` (boundaries inclusive)?
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min[0] <= other.max[0]
            && other.min[0] <= self.max[0]
            && self.min[1] <= other.max[1]
            && other.min[1] <= self.max[1]
    }

    /// Does `self` fully contain `other`?
    pub fn contains(&self, other: &Rect) -> bool {
        self.min[0] <= other.min[0]
            && self.min[1] <= other.min[1]
            && self.max[0] >= other.max[0]
            && self.max[1] >= other.max[1]
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: [self.min[0].min(other.min[0]), self.min[1].min(other.min[1])],
            max: [self.max[0].max(other.max[0]), self.max[1].max(other.max[1])],
        }
    }

    /// Area (0 for points/lines).
    pub fn area(&self) -> f64 {
        (self.max[0] - self.min[0]) * (self.max[1] - self.min[1])
    }

    /// Growth in area needed to include `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum squared distance from a point to this rectangle.
    pub fn min_dist2(&self, p: [f64; 2]) -> f64 {
        let dx = (self.min[0] - p[0]).max(0.0).max(p[0] - self.max[0]);
        let dy = (self.min[1] - p[1]).max(0.0).max(p[1] - self.max[1]);
        dx * dx + dy * dy
    }
}

type NodeId = usize;

enum Node {
    Inner { entries: Vec<(Rect, NodeId)> },
    Leaf { entries: Vec<(Rect, u64)> },
}

impl Node {
    fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Inner { entries } => entries.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
            Node::Leaf { entries } => entries.iter().map(|(r, _)| *r).reduce(|a, b| a.union(&b)),
        }
    }
}

/// R-tree mapping rectangles to `u64` payloads.
pub struct RTree {
    nodes: Vec<Node>,
    root: NodeId,
    max_entries: usize,
    len: usize,
    stats: AccessStats,
}

impl RTree {
    /// Empty tree with default node capacity (realistic page fanout).
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Empty tree with `max_entries` per node (min 4).
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries >= 4);
        RTree {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            max_entries,
            len: 0,
            stats: AccessStats::new(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical node I/O counters.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Number of nodes (≈ pages).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Estimated storage footprint: 16-byte header + 40 bytes/entry
    /// (4 coordinates + payload/pointer).
    pub fn storage_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                16 + 40
                    * match n {
                        Node::Inner { entries } => entries.len(),
                        Node::Leaf { entries } => entries.len(),
                    }
            })
            .sum()
    }

    /// Insert `rect → payload`.
    pub fn insert(&mut self, rect: Rect, payload: u64) {
        if let Some((r1, n1, r2, n2)) = self.insert_rec(self.root, rect, payload) {
            self.nodes.push(Node::Inner {
                entries: vec![(r1, n1), (r2, n2)],
            });
            self.root = self.nodes.len() - 1;
            self.stats.record_write();
        }
        self.len += 1;
    }

    /// Returns the replacement pair on split.
    fn insert_rec(
        &mut self,
        id: NodeId,
        rect: Rect,
        payload: u64,
    ) -> Option<(Rect, NodeId, Rect, NodeId)> {
        self.stats.record_read();
        match &mut self.nodes[id] {
            Node::Leaf { entries } => {
                entries.push((rect, payload));
                self.stats.record_write();
                if entries.len() > self.max_entries {
                    return Some(self.split_leaf(id));
                }
                None
            }
            Node::Inner { entries } => {
                // choose subtree with least enlargement (ties: smaller area)
                let mut best = 0;
                let mut best_cost = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, (r, _)) in entries.iter().enumerate() {
                    let cost = r.enlargement(&rect);
                    let area = r.area();
                    if cost < best_cost || (cost == best_cost && area < best_area) {
                        best = i;
                        best_cost = cost;
                        best_area = area;
                    }
                }
                let child = entries[best].1;
                entries[best].0 = entries[best].0.union(&rect);
                let split = self.insert_rec(child, rect, payload);
                if let Some((r1, n1, r2, n2)) = split {
                    if let Node::Inner { entries } = &mut self.nodes[id] {
                        // replace the split child's entry, add the new one
                        let pos = entries.iter().position(|(_, c)| *c == n1 || *c == child);
                        if let Some(pos) = pos {
                            entries[pos] = (r1, n1);
                        } else {
                            entries.push((r1, n1));
                        }
                        entries.push((r2, n2));
                        self.stats.record_write();
                        if entries.len() > self.max_entries {
                            return Some(self.split_inner(id));
                        }
                    }
                }
                None
            }
        }
    }

    /// Quadratic split of an overfull leaf.
    fn split_leaf(&mut self, id: NodeId) -> (Rect, NodeId, Rect, NodeId) {
        let entries = match &mut self.nodes[id] {
            Node::Leaf { entries } => std::mem::take(entries),
            _ => unreachable!(),
        };
        let (g1, g2) = quadratic_split(entries, self.max_entries, |(r, _)| *r);
        let r1 = mbr_of(&g1, |(r, _)| *r);
        let r2 = mbr_of(&g2, |(r, _)| *r);
        self.nodes[id] = Node::Leaf { entries: g1 };
        self.nodes.push(Node::Leaf { entries: g2 });
        self.stats.record_write();
        self.stats.record_write();
        (r1, id, r2, self.nodes.len() - 1)
    }

    /// Quadratic split of an overfull inner node.
    fn split_inner(&mut self, id: NodeId) -> (Rect, NodeId, Rect, NodeId) {
        let entries = match &mut self.nodes[id] {
            Node::Inner { entries } => std::mem::take(entries),
            _ => unreachable!(),
        };
        let (g1, g2) = quadratic_split(entries, self.max_entries, |(r, _)| *r);
        let r1 = mbr_of(&g1, |(r, _)| *r);
        let r2 = mbr_of(&g2, |(r, _)| *r);
        self.nodes[id] = Node::Inner { entries: g1 };
        self.nodes.push(Node::Inner { entries: g2 });
        self.stats.record_write();
        self.stats.record_write();
        (r1, id, r2, self.nodes.len() - 1)
    }

    /// All `(rect, payload)` entries intersecting `query`.
    pub fn search(&self, query: &Rect) -> Vec<(Rect, u64)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            self.stats.record_read();
            match &self.nodes[id] {
                Node::Inner { entries } => {
                    for (r, c) in entries {
                        if r.intersects(query) {
                            stack.push(*c);
                        }
                    }
                }
                Node::Leaf { entries } => {
                    for (r, p) in entries {
                        if r.intersects(query) {
                            out.push((*r, *p));
                        }
                    }
                }
            }
        }
        out
    }

    /// 3-sided range query: `x ∈ [x_lo, x_hi]`, `y ≥ y_lo` (open above).
    ///
    /// This is the query shape the SBC-tree needs for its first-run filter;
    /// the paper substitutes an R-tree for the optimal 3-sided structure
    /// and so do we.
    pub fn three_sided(&self, x_lo: f64, x_hi: f64, y_lo: f64) -> Vec<(Rect, u64)> {
        self.search(&Rect {
            min: [x_lo, y_lo],
            max: [x_hi, f64::INFINITY],
        })
    }

    /// `k` nearest entries to point `p` (by rectangle min-distance),
    /// best-first search.
    pub fn knn(&self, p: [f64; 2], k: usize) -> Vec<(Rect, u64, f64)> {
        use std::collections::BinaryHeap;

        let mut out = Vec::new();
        if k == 0 {
            return out;
        }
        // Best-first: nodes enter the queue with their MBR min-distance,
        // leaf entries with their exact distance.
        struct HeapItem {
            dist: f64,
            node: Option<NodeId>,
            entry: Option<(Rect, u64)>,
        }
        impl PartialEq for HeapItem {
            fn eq(&self, o: &Self) -> bool {
                self.dist == o.dist
            }
        }
        impl Eq for HeapItem {}
        impl PartialOrd for HeapItem {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for HeapItem {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                // reversed for min-heap behaviour inside BinaryHeap
                o.dist.total_cmp(&self.dist)
            }
        }
        let mut pq: BinaryHeap<HeapItem> = BinaryHeap::new();
        pq.push(HeapItem {
            dist: 0.0,
            node: Some(self.root),
            entry: None,
        });
        while let Some(item) = pq.pop() {
            if let Some(id) = item.node {
                self.stats.record_read();
                match &self.nodes[id] {
                    Node::Inner { entries } => {
                        for (r, c) in entries {
                            pq.push(HeapItem {
                                dist: r.min_dist2(p),
                                node: Some(*c),
                                entry: None,
                            });
                        }
                    }
                    Node::Leaf { entries } => {
                        for (r, v) in entries {
                            pq.push(HeapItem {
                                dist: r.min_dist2(p),
                                node: None,
                                entry: Some((*r, *v)),
                            });
                        }
                    }
                }
            } else if let Some((r, v)) = item.entry {
                out.push((r, v, item.dist.sqrt()));
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Bounding rectangle of everything stored (None when empty).
    pub fn bounds(&self) -> Option<Rect> {
        self.nodes[self.root].mbr()
    }
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

fn mbr_of<T>(items: &[T], rect: impl Fn(&T) -> Rect) -> Rect {
    items
        .iter()
        .map(rect)
        .reduce(|a, b| a.union(&b))
        .expect("split group is non-empty")
}

/// Guttman's quadratic split: pick the two seeds wasting the most area
/// together, then assign each remaining entry to the group whose MBR grows
/// least, keeping both groups above the minimum fill.
fn quadratic_split<T>(
    mut entries: Vec<T>,
    max_entries: usize,
    rect: impl Fn(&T) -> Rect,
) -> (Vec<T>, Vec<T>) {
    let min_fill = (max_entries / 3).max(1);
    // seeds
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let d = rect(&entries[i]).union(&rect(&entries[j])).area()
                - rect(&entries[i]).area()
                - rect(&entries[j]).area();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    let e2 = entries.remove(s2.max(s1));
    let e1 = entries.remove(s1.min(s2));
    let mut r1 = rect(&e1);
    let mut r2 = rect(&e2);
    let mut g1 = vec![e1];
    let mut g2 = vec![e2];
    while let Some(e) = entries.pop() {
        let remaining = entries.len();
        if g1.len() + remaining < min_fill {
            r1 = r1.union(&rect(&e));
            g1.push(e);
            continue;
        }
        if g2.len() + remaining < min_fill {
            r2 = r2.union(&rect(&e));
            g2.push(e);
            continue;
        }
        let c1 = r1.enlargement(&rect(&e));
        let c2 = r2.enlargement(&rect(&e));
        if c1 < c2 || (c1 == c2 && g1.len() <= g2.len()) {
            r1 = r1.union(&rect(&e));
            g1.push(e);
        } else {
            r2 = r2.union(&rect(&e));
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let a = Rect::new([0.0, 0.0], [2.0, 2.0]);
        let b = Rect::new([1.0, 1.0], [3.0, 3.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&Rect::point(5.0, 5.0)));
        assert_eq!(a.union(&b), Rect::new([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.area(), 4.0);
        assert!(a.contains(&Rect::point(1.0, 1.0)));
        assert!(!b.contains(&a));
        assert_eq!(a.min_dist2([4.0, 2.0]), 4.0);
        assert_eq!(a.min_dist2([1.0, 1.0]), 0.0);
    }

    #[test]
    fn insert_and_point_search() {
        let mut t = RTree::with_capacity(4);
        for i in 0..100u64 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            t.insert(Rect::point(x, y), i);
        }
        assert_eq!(t.len(), 100);
        let hits = t.search(&Rect::point(3.0, 7.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, 73);
    }

    #[test]
    fn window_search() {
        let mut t = RTree::with_capacity(8);
        for i in 0..100u64 {
            t.insert(Rect::point((i % 10) as f64, (i / 10) as f64), i);
        }
        let hits = t.search(&Rect::new([2.0, 2.0], [4.0, 4.0]));
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn three_sided_query() {
        let mut t = RTree::with_capacity(8);
        // x = rank, y = run length
        for (x, y) in [(1.0, 3.0), (2.0, 10.0), (3.0, 1.0), (4.0, 7.0), (5.0, 2.0)] {
            t.insert(Rect::point(x, y), (x * 10.0) as u64);
        }
        let hits = t.three_sided(2.0, 4.0, 5.0);
        let mut payloads: Vec<u64> = hits.iter().map(|(_, p)| *p).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![20, 40]);
    }

    #[test]
    fn knn_orders_by_distance() {
        let mut t = RTree::with_capacity(4);
        for i in 0..50u64 {
            t.insert(Rect::point(i as f64, 0.0), i);
        }
        let got = t.knn([10.2, 0.0], 3);
        let ids: Vec<u64> = got.iter().map(|(_, p, _)| *p).collect();
        assert_eq!(ids, vec![10, 11, 9]);
        assert!(got[0].2 <= got[1].2 && got[1].2 <= got[2].2);
    }

    #[test]
    fn knn_k_larger_than_len() {
        let mut t = RTree::with_capacity(4);
        t.insert(Rect::point(0.0, 0.0), 1);
        t.insert(Rect::point(1.0, 1.0), 2);
        assert_eq!(t.knn([0.0, 0.0], 10).len(), 2);
        assert!(t.knn([0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn large_randomish_insert_search_consistency() {
        let mut t = RTree::with_capacity(8);
        let mut pts = Vec::new();
        // deterministic pseudo-random points
        let mut x: u64 = 12345;
        for i in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let px = (x >> 33) as f64 % 1000.0;
            let py = (x >> 13) as f64 % 1000.0;
            pts.push((px, py, i));
            t.insert(Rect::point(px, py), i);
        }
        let q = Rect::new([100.0, 100.0], [300.0, 300.0]);
        let mut expect: Vec<u64> = pts
            .iter()
            .filter(|(px, py, _)| q.intersects(&Rect::point(*px, *py)))
            .map(|(_, _, i)| *i)
            .collect();
        let mut got: Vec<u64> = t.search(&q).into_iter().map(|(_, p)| p).collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
        assert!(t.node_count() > 10);
    }

    #[test]
    fn stats_track_reads() {
        let mut t = RTree::with_capacity(4);
        for i in 0..500u64 {
            t.insert(Rect::point(i as f64, i as f64), i);
        }
        t.stats().reset();
        let _ = t.search(&Rect::point(250.0, 250.0));
        assert!(t.stats().reads() > 0);
        // point search should touch far fewer nodes than exist
        assert!(t.stats().reads() < t.node_count() as u64 / 2);
    }
}
