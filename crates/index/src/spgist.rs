//! The SP-GiST extensible indexing framework.
//!
//! §7.1 of the paper: *"SP-GiST is an extensible indexing framework [...]
//! that broadens the class of supported indexes to include disk-based
//! versions of space-partitioning trees [...] SP-GiST allows developers to
//! instantiate a variety of index structures in an efficient way through
//! pluggable modules and without modifying the database engine."*
//!
//! [`SpGist`] is that framework: a generic space-partitioning tree whose
//! behaviour is defined entirely by a pluggable operator set implementing
//! [`SpgistOps`] — the Rust analogue of SP-GiST's `PickSplit` / `Choose` /
//! `Consistent` external methods.  The paper's instantiations are provided
//! in sibling modules: [`crate::trie`], [`crate::kdtree`], and
//! [`crate::quadtree`].
//!
//! The framework provides, generically over any operator set:
//! search with query-specific pruning ([`SpGist::search`]), best-first
//! k-nearest-neighbour search ([`SpGist::knn`]), node-level I/O accounting,
//! and storage estimation.

use bdbms_common::stats::AccessStats;

/// Pluggable operator set defining one space-partitioning tree.
///
/// Terminology follows the SP-GiST papers:
/// * `Pred` is the *node predicate* stored in each inner node (a trie
///   depth, a kd-tree split plane, a quadtree centre);
/// * `Path` is the accumulated description of the subtree's region
///   (a string prefix, a bounding box);
/// * [`picksplit`](SpgistOps::picksplit) decomposes an overfull leaf;
/// * [`choose`](SpgistOps::choose) routes a key to a partition;
/// * [`query_consistent`](SpgistOps::query_consistent) prunes subtrees.
pub trait SpgistOps {
    /// Indexed key type.
    type Key: Clone;
    /// Inner-node predicate.
    type Pred: Clone;
    /// Accumulated subtree region descriptor.
    type Path: Clone;
    /// Query type served by [`SpGist::search`].
    type Query;

    /// Region of the root (the whole space).
    fn root_path(&self) -> Self::Path;

    /// Decide how to partition an overfull leaf holding `keys` within
    /// region `path`.  Returning `None` declares the key set unsplittable
    /// (all keys equivalent); the leaf is then allowed to grow.
    ///
    /// Contract: when `Some(pred)` is returned, [`choose`](Self::choose)
    /// must distribute `keys` over at least two distinct partitions, or
    /// route every key to a partition that strictly consumes the key
    /// (guaranteeing termination).
    fn picksplit(&self, keys: &[Self::Key], path: &Self::Path) -> Option<Self::Pred>;

    /// Partition label (sparse, arbitrary `usize`) for `key` under `pred`.
    fn choose(&self, pred: &Self::Pred, key: &Self::Key) -> usize;

    /// Refine `path` by descending into partition `label` of `pred`.
    fn extend_path(&self, path: &Self::Path, pred: &Self::Pred, label: usize) -> Self::Path;

    /// May the region `path` contain keys matching `q`?  (Pruning test —
    /// false negatives are forbidden, false positives merely cost time.)
    fn query_consistent(&self, path: &Self::Path, q: &Self::Query) -> bool;

    /// Does `key` match `q`? (Exact test at the leaves.)
    fn leaf_matches(&self, key: &Self::Key, q: &Self::Query) -> bool;

    /// Lower bound on the distance from `target` to any key inside `path`
    /// (for kNN; return `0.0` when kNN is not meaningful).
    fn path_min_dist(&self, _path: &Self::Path, _target: &Self::Key) -> f64 {
        0.0
    }

    /// Distance between two keys (for kNN).
    fn key_dist(&self, _a: &Self::Key, _b: &Self::Key) -> f64 {
        f64::INFINITY
    }

    /// Bytes needed to store a key (for storage accounting).
    fn key_bytes(&self, _key: &Self::Key) -> usize {
        8
    }
}

type NodeId = usize;

enum Node<K, P, V> {
    Inner {
        pred: P,
        /// Sparse children: (partition label, node id), sorted by label.
        children: Vec<(usize, NodeId)>,
    },
    Leaf {
        entries: Vec<(K, V)>,
        /// Set when picksplit declared this key set unsplittable.
        unsplittable: bool,
    },
}

/// A space-partitioning tree driven by an [`SpgistOps`] operator set.
pub struct SpGist<O: SpgistOps, V> {
    ops: O,
    nodes: Vec<Node<O::Key, O::Pred, V>>,
    root: NodeId,
    leaf_capacity: usize,
    len: usize,
    stats: AccessStats,
}

impl<O: SpgistOps, V: Clone> SpGist<O, V> {
    /// Empty tree with default leaf capacity (page-realistic 64).
    pub fn new(ops: O) -> Self {
        Self::with_leaf_capacity(ops, 64)
    }

    /// Empty tree with a custom leaf capacity (min 2).
    pub fn with_leaf_capacity(ops: O, leaf_capacity: usize) -> Self {
        assert!(leaf_capacity >= 2);
        SpGist {
            ops,
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                unsplittable: false,
            }],
            root: 0,
            leaf_capacity,
            len: 0,
            stats: AccessStats::new(),
        }
    }

    /// The operator set.
    pub fn ops(&self) -> &O {
        &self.ops
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical node I/O counters.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Number of nodes (≈ pages).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Estimated storage footprint: 16-byte node headers, 10 bytes per
    /// child pointer, key bytes + 8-byte payload per leaf entry.
    pub fn storage_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Inner { children, .. } => 16 + 10 * children.len(),
                Node::Leaf { entries, .. } => {
                    16 + entries
                        .iter()
                        .map(|(k, _)| self.ops.key_bytes(k) + 8)
                        .sum::<usize>()
                }
            })
            .sum()
    }

    /// Insert `key → value`.
    pub fn insert(&mut self, key: O::Key, value: V) {
        let mut id = self.root;
        let mut path = self.ops.root_path();
        loop {
            self.stats.record_read();
            match &mut self.nodes[id] {
                Node::Inner { pred, children } => {
                    let label = self.ops.choose(pred, &key);
                    path = self.ops.extend_path(&path, pred, label);
                    match children.binary_search_by_key(&label, |(l, _)| *l) {
                        Ok(pos) => id = children[pos].1,
                        Err(pos) => {
                            // create a fresh leaf for this partition
                            let leaf = Node::Leaf {
                                entries: vec![(key, value)],
                                unsplittable: false,
                            };
                            let new_id = self.nodes.len();
                            match &mut self.nodes[id] {
                                Node::Inner { children, .. } => {
                                    children.insert(pos, (label, new_id))
                                }
                                _ => unreachable!(),
                            }
                            self.nodes.push(leaf);
                            self.stats.record_write();
                            self.stats.record_write();
                            self.len += 1;
                            return;
                        }
                    }
                }
                Node::Leaf {
                    entries,
                    unsplittable,
                } => {
                    entries.push((key, value));
                    self.stats.record_write();
                    self.len += 1;
                    if entries.len() > self.leaf_capacity && !*unsplittable {
                        self.split_leaf(id, &path);
                    }
                    return;
                }
            }
        }
    }

    /// Split leaf `id` (region `path`) using the operator set's picksplit.
    fn split_leaf(&mut self, id: NodeId, path: &O::Path) {
        let (entries, _) = match &mut self.nodes[id] {
            Node::Leaf {
                entries,
                unsplittable,
            } => (std::mem::take(entries), *unsplittable),
            _ => unreachable!("split of inner node"),
        };
        let keys: Vec<O::Key> = entries.iter().map(|(k, _)| k.clone()).collect();
        let Some(pred) = self.ops.picksplit(&keys, path) else {
            // Unsplittable: put entries back, mark, let the leaf grow.
            self.nodes[id] = Node::Leaf {
                entries,
                unsplittable: true,
            };
            return;
        };
        // Bucket entries by partition label.
        #[allow(clippy::type_complexity)]
        let mut buckets: Vec<(usize, Vec<(O::Key, V)>)> = Vec::new();
        for (k, v) in entries {
            let label = self.ops.choose(&pred, &k);
            match buckets.binary_search_by_key(&label, |(l, _)| *l) {
                Ok(pos) => buckets[pos].1.push((k, v)),
                Err(pos) => buckets.insert(pos, (label, vec![(k, v)])),
            }
        }
        let mut children = Vec::with_capacity(buckets.len());
        for (label, bucket) in buckets {
            let child_path = self.ops.extend_path(path, &pred, label);
            let child_id = self.nodes.len();
            let overfull = bucket.len() > self.leaf_capacity;
            self.nodes.push(Node::Leaf {
                entries: bucket,
                unsplittable: false,
            });
            self.stats.record_write();
            children.push((label, child_id));
            // Recursively split overfull children.  Termination is the ops
            // contract: every `Some(pred)` either distributes keys over ≥ 2
            // partitions or strictly consumes the key (trie descent), and
            // fully-equivalent key sets return `None` → unsplittable leaf.
            if overfull {
                self.split_leaf(child_id, &child_path);
            }
        }
        self.nodes[id] = Node::Inner { pred, children };
        self.stats.record_write();
    }

    /// All `(key, value)` entries matching `q`, found by descending only
    /// query-consistent partitions.
    pub fn search(&self, q: &O::Query) -> Vec<(O::Key, V)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, self.ops.root_path())];
        while let Some((id, path)) = stack.pop() {
            if !self.ops.query_consistent(&path, q) {
                continue;
            }
            self.stats.record_read();
            match &self.nodes[id] {
                Node::Inner { pred, children } => {
                    for (label, child) in children {
                        let child_path = self.ops.extend_path(&path, pred, *label);
                        stack.push((*child, child_path));
                    }
                }
                Node::Leaf { entries, .. } => {
                    for (k, v) in entries {
                        if self.ops.leaf_matches(k, q) {
                            out.push((k.clone(), v.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// `k` nearest keys to `target`, best-first (paper §7.1:
    /// "k-nearest-neighbor search" over SP-GiST indexes).
    pub fn knn(&self, target: &O::Key, k: usize) -> Vec<(O::Key, V, f64)> {
        use std::collections::BinaryHeap;

        struct Item<K, V, P> {
            dist: f64,
            node: Option<(usize, P)>,
            entry: Option<(K, V)>,
        }
        impl<K, V, P> PartialEq for Item<K, V, P> {
            fn eq(&self, o: &Self) -> bool {
                self.dist == o.dist
            }
        }
        impl<K, V, P> Eq for Item<K, V, P> {}
        impl<K, V, P> PartialOrd for Item<K, V, P> {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl<K, V, P> Ord for Item<K, V, P> {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                o.dist.total_cmp(&self.dist) // min-heap
            }
        }

        let mut out = Vec::new();
        if k == 0 {
            return out;
        }
        let mut pq: BinaryHeap<Item<O::Key, V, O::Path>> = BinaryHeap::new();
        pq.push(Item {
            dist: 0.0,
            node: Some((self.root, self.ops.root_path())),
            entry: None,
        });
        while let Some(item) = pq.pop() {
            if let Some((id, path)) = item.node {
                self.stats.record_read();
                match &self.nodes[id] {
                    Node::Inner { pred, children } => {
                        for (label, child) in children {
                            let child_path = self.ops.extend_path(&path, pred, *label);
                            pq.push(Item {
                                dist: self.ops.path_min_dist(&child_path, target),
                                node: Some((*child, child_path)),
                                entry: None,
                            });
                        }
                    }
                    Node::Leaf { entries, .. } => {
                        for (key, v) in entries {
                            pq.push(Item {
                                dist: self.ops.key_dist(key, target),
                                node: None,
                                entry: Some((key.clone(), v.clone())),
                            });
                        }
                    }
                }
            } else if let Some((key, v)) = item.entry {
                out.push((key, v, item.dist));
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Every entry (test helper; order unspecified).
    pub fn iter_all(&self) -> Vec<(O::Key, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Inner { children, .. } => stack.extend(children.iter().map(|(_, c)| *c)),
                Node::Leaf { entries, .. } => out.extend(entries.iter().cloned()),
            }
        }
        out
    }

    /// Maximum depth of the tree (1 = root leaf).
    pub fn height(&self) -> usize {
        fn depth<K, P, V>(nodes: &[Node<K, P, V>], id: NodeId) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 1,
                Node::Inner { children, .. } => {
                    1 + children
                        .iter()
                        .map(|(_, c)| depth(nodes, *c))
                        .max()
                        .unwrap_or(0)
                }
            }
        }
        depth(&self.nodes, self.root)
    }
}
