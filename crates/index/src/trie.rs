//! SP-GiST trie instantiation over byte strings.
//!
//! The paper (§7.1) cites trie variants as a primary SP-GiST
//! instantiation, with *"k-nearest-neighbor search, regular expression
//! match search, and substring searching"* implemented on top.  This
//! module supplies the operator set [`TrieOps`] plus the query language
//! [`StrQuery`]: exact match, prefix match, lexicographic range, and
//! regular-expression match (via [`crate::regex::Regex`]).
//!
//! Substring search is served by the same trie built over *suffixes*
//! (`bdbms-seq` does exactly that for sequences), so the query set here is
//! complete for the paper's operations.
//!
//! Each inner node branches on one byte of the key at its depth; keys that
//! end at the node live in a dedicated end-bucket partition.  Duplicate
//! keys make an end bucket unsplittable, which the framework handles.

use crate::bptree::prefix_upper_bound;
use crate::regex::Regex;
use crate::spgist::{SpGist, SpgistOps};

/// Partition label for keys ending exactly at this node's depth.
const END_LABEL: usize = 0;

/// Queries supported by the trie.
pub enum StrQuery {
    /// Key equals the needle exactly.
    Exact(Vec<u8>),
    /// Key starts with the needle.
    Prefix(Vec<u8>),
    /// `lo <= key < hi` lexicographically (`hi = None` = unbounded).
    Range(Vec<u8>, Option<Vec<u8>>),
    /// Key matches the (anchored) regular expression.
    Regex(Regex),
}

/// Operator set for the byte-string trie.
#[derive(Debug, Default, Clone)]
pub struct TrieOps;

/// Inner-node predicate: branch on `key[depth]`.
#[derive(Debug, Clone, Copy)]
pub struct TriePred {
    /// Depth (number of key bytes consumed above this node).
    pub depth: usize,
}

impl SpgistOps for TrieOps {
    type Key = Vec<u8>;
    type Pred = TriePred;
    /// Accumulated prefix of the subtree.
    type Path = Vec<u8>;
    type Query = StrQuery;

    fn root_path(&self) -> Vec<u8> {
        Vec::new()
    }

    fn picksplit(&self, keys: &[Vec<u8>], path: &Vec<u8>) -> Option<TriePred> {
        let depth = path.len();
        // All keys end here → duplicates → unsplittable.
        if keys.iter().all(|k| k.len() == depth) {
            return None;
        }
        Some(TriePred { depth })
    }

    fn choose(&self, pred: &TriePred, key: &Vec<u8>) -> usize {
        match key.get(pred.depth) {
            None => END_LABEL,
            Some(&b) => b as usize + 1,
        }
    }

    fn extend_path(&self, path: &Vec<u8>, _pred: &TriePred, label: usize) -> Vec<u8> {
        let mut p = path.clone();
        if label != END_LABEL {
            p.push((label - 1) as u8);
        }
        p
    }

    fn query_consistent(&self, path: &Vec<u8>, q: &StrQuery) -> bool {
        match q {
            StrQuery::Exact(t) => t.starts_with(path),
            StrQuery::Prefix(p) => {
                // Subtrees whose prefix overlaps the needle may match.
                p.starts_with(path) || path.starts_with(p)
            }
            StrQuery::Range(lo, hi) => {
                // Keys under `path` span [path, prefix_upper_bound(path)).
                let below_hi = match hi {
                    Some(hi) => path.as_slice() < hi.as_slice(),
                    None => true,
                };
                let above_lo = match prefix_upper_bound(path) {
                    Some(ub) => ub.as_slice() > lo.as_slice(),
                    None => true,
                };
                below_hi && above_lo
            }
            StrQuery::Regex(re) => re.can_match_extension(path),
        }
    }

    fn leaf_matches(&self, key: &Vec<u8>, q: &StrQuery) -> bool {
        match q {
            StrQuery::Exact(t) => key == t,
            StrQuery::Prefix(p) => key.starts_with(p),
            StrQuery::Range(lo, hi) => {
                key.as_slice() >= lo.as_slice()
                    && match hi {
                        Some(hi) => key.as_slice() < hi.as_slice(),
                        None => true,
                    }
            }
            StrQuery::Regex(re) => re.is_match(key),
        }
    }

    fn key_bytes(&self, key: &Vec<u8>) -> usize {
        key.len() + 4
    }
}

/// A ready-made trie index: `SpGist<TrieOps, V>`.
pub type TrieIndex<V> = SpGist<TrieOps, V>;

/// Build an empty trie index with page-realistic leaf capacity.
pub fn trie_index<V: Clone>() -> TrieIndex<V> {
    SpGist::new(TrieOps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrieIndex<usize> {
        let mut t = SpGist::with_leaf_capacity(TrieOps, 2);
        let words = [
            "ATG", "ATGAAA", "ATGC", "ATT", "GTG", "AT", "ATG", // dup
            "CAT", "CATTLE", "CA",
        ];
        for (i, w) in words.iter().enumerate() {
            t.insert(w.as_bytes().to_vec(), i);
        }
        t
    }

    #[test]
    fn exact_match_with_duplicates() {
        let t = sample();
        let hits = t.search(&StrQuery::Exact(b"ATG".to_vec()));
        let mut ids: Vec<usize> = hits.into_iter().map(|(_, v)| v).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 6]);
        assert!(t.search(&StrQuery::Exact(b"ATGA".to_vec())).is_empty());
    }

    #[test]
    fn prefix_match() {
        let t = sample();
        let hits = t.search(&StrQuery::Prefix(b"ATG".to_vec()));
        let mut got: Vec<String> = hits
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, vec!["ATG", "ATG", "ATGAAA", "ATGC"]);
        // prefix shorter than any node path
        let all_a = t.search(&StrQuery::Prefix(b"A".to_vec()));
        assert_eq!(all_a.len(), 6);
        // empty prefix matches everything
        assert_eq!(t.search(&StrQuery::Prefix(Vec::new())).len(), t.len());
    }

    #[test]
    fn range_query() {
        let t = sample();
        let hits = t.search(&StrQuery::Range(b"AT".to_vec(), Some(b"CAT".to_vec())));
        let mut got: Vec<String> = hits
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, vec!["AT", "ATG", "ATG", "ATGAAA", "ATGC", "ATT", "CA"]);
        // unbounded range
        let all = t.search(&StrQuery::Range(Vec::new(), None));
        assert_eq!(all.len(), t.len());
    }

    #[test]
    fn regex_query() {
        let t = sample();
        let re = Regex::compile("AT[GT].*").unwrap();
        let hits = t.search(&StrQuery::Regex(re));
        let mut got: Vec<String> = hits
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        got.sort();
        assert_eq!(got, vec!["ATG", "ATG", "ATGAAA", "ATGC", "ATT"]);
    }

    #[test]
    fn regex_prunes_subtrees() {
        let mut t = SpGist::with_leaf_capacity(TrieOps, 2);
        for i in 0..200usize {
            let key = format!("GENE{i:04}");
            t.insert(key.into_bytes(), i);
        }
        for i in 0..200usize {
            let key = format!("PROT{i:04}");
            t.insert(key.into_bytes(), i);
        }
        t.stats().reset();
        let re = Regex::compile("GENE00[0-4][0-9]").unwrap();
        let hits = t.search(&StrQuery::Regex(re));
        assert_eq!(hits.len(), 50);
        let pruned_reads = t.stats().reads();
        t.stats().reset();
        let re_all = Regex::compile(".*").unwrap();
        let all = t.search(&StrQuery::Regex(re_all));
        assert_eq!(all.len(), 400);
        assert!(
            pruned_reads < t.stats().reads() / 2,
            "selective regex must prune: {} vs {}",
            pruned_reads,
            t.stats().reads()
        );
    }

    #[test]
    fn deep_duplicate_keys_terminate() {
        let mut t = SpGist::with_leaf_capacity(TrieOps, 2);
        for i in 0..50usize {
            t.insert(b"SAMEKEY".to_vec(), i);
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.search(&StrQuery::Exact(b"SAMEKEY".to_vec())).len(), 50);
    }

    #[test]
    fn keys_that_are_prefixes_of_each_other() {
        let mut t = SpGist::with_leaf_capacity(TrieOps, 2);
        let keys = ["A", "AB", "ABC", "ABCD", "ABCDE", "ABCDEF"];
        for (i, k) in keys.iter().enumerate() {
            t.insert(k.as_bytes().to_vec(), i);
        }
        for k in keys {
            assert_eq!(
                t.search(&StrQuery::Exact(k.as_bytes().to_vec())).len(),
                1,
                "exact {k}"
            );
        }
        assert_eq!(t.search(&StrQuery::Prefix(b"ABC".to_vec())).len(), 4);
    }

    #[test]
    fn empty_key_is_indexable() {
        let mut t = trie_index();
        t.insert(Vec::new(), 0usize);
        t.insert(b"A".to_vec(), 1usize);
        assert_eq!(t.search(&StrQuery::Exact(Vec::new())).len(), 1);
        assert_eq!(t.search(&StrQuery::Prefix(Vec::new())).len(), 2);
    }

    #[test]
    fn large_trie_consistency_with_naive() {
        let mut t = SpGist::with_leaf_capacity(TrieOps, 8);
        let mut naive: Vec<Vec<u8>> = Vec::new();
        let mut x: u64 = 7;
        for i in 0..3000usize {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let len = 3 + (x % 12) as usize;
            let key: Vec<u8> = (0..len)
                .map(|j| b"ACGT"[((x >> (j * 2 % 60)) & 3) as usize])
                .collect();
            naive.push(key.clone());
            t.insert(key, i);
        }
        // prefix agreement
        for probe in ["A", "AC", "ACG", "GGG", "TTTT"] {
            let expect = naive
                .iter()
                .filter(|k| k.starts_with(probe.as_bytes()))
                .count();
            let got = t.search(&StrQuery::Prefix(probe.as_bytes().to_vec())).len();
            assert_eq!(got, expect, "prefix {probe}");
        }
        // range agreement
        let lo = b"AC".to_vec();
        let hi = b"GT".to_vec();
        let expect = naive
            .iter()
            .filter(|k| k.as_slice() >= lo.as_slice() && k.as_slice() < hi.as_slice())
            .count();
        assert_eq!(
            t.search(&StrQuery::Range(lo, Some(hi))).len(),
            expect,
            "range"
        );
    }
}
