//! # bdbms-index
//!
//! Access methods for bdbms (§7 of the paper).
//!
//! The paper argues biological databases need index structures beyond
//! B+-trees and hash tables, and proposes integrating the **SP-GiST**
//! extensible framework for space-partitioning trees.  This crate provides:
//!
//! * [`bptree::BPlusTree`] — the classic baseline the paper compares
//!   against,
//! * [`rtree::RTree`] — the spatial baseline, also reused by `bdbms-seq` as
//!   the 3-sided-range substitute inside the SBC-tree (exactly as the
//!   paper's own prototype did),
//! * [`spgist`] — the SP-GiST framework: a generic space-partitioning tree
//!   parameterized by pluggable operator sets, with instantiations
//!   [`trie::TrieOps`] (Patricia trie over byte strings),
//!   [`kdtree::KdTreeOps`] (k-d tree over 2-D points), and
//!   [`quadtree::QuadtreeOps`] (point quadtree),
//! * [`regex::Regex`] — a small Thompson-NFA regular-expression engine
//!   powering the "regular expression match search" operation the paper
//!   lists for SP-GiST tries.
//!
//! Every structure counts logical node reads/writes through
//! [`bdbms_common::stats::AccessStats`] (one node ≈ one page), which is
//! what the reproduction benchmarks report.

pub mod bptree;
pub mod kdtree;
pub mod quadtree;
pub mod regex;
pub mod rtree;
pub mod spgist;
pub mod trie;

pub use bptree::BPlusTree;
pub use rtree::{RTree, Rect};
pub use spgist::SpGist;
