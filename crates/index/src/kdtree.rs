//! SP-GiST k-d tree instantiation over 2-D points.
//!
//! §7.1 cites the kd-tree (Bentley 1975) among the structures instantiated
//! with SP-GiST.  Inner nodes split space with an axis-aligned plane; the
//! split dimension is the one with the widest spread and the split value is
//! the midpoint of the occupied extent, which guarantees both sides of a
//! split are non-empty whenever the points are not all identical.

use crate::spgist::{SpGist, SpgistOps};

/// A 2-D point key.
pub type Point = [f64; 2];

/// Axis-aligned (possibly unbounded) box — the `Path` of the kd-tree.
#[derive(Debug, Clone, Copy)]
pub struct BoundBox {
    /// Minimum corner.
    pub lo: Point,
    /// Maximum corner.
    pub hi: Point,
}

impl BoundBox {
    /// The whole plane.
    pub fn everything() -> Self {
        BoundBox {
            lo: [f64::NEG_INFINITY; 2],
            hi: [f64::INFINITY; 2],
        }
    }

    /// Does this box intersect the window `[wlo, whi]`?
    pub fn intersects_window(&self, wlo: Point, whi: Point) -> bool {
        (0..2).all(|d| self.lo[d] <= whi[d] && wlo[d] <= self.hi[d])
    }

    /// Minimum squared distance from `p` to this box.
    pub fn min_dist2(&self, p: Point) -> f64 {
        let mut d2 = 0.0;
        for (d, &coord) in p.iter().enumerate() {
            let delta = (self.lo[d] - coord).max(0.0).max(coord - self.hi[d]);
            d2 += delta * delta;
        }
        d2
    }
}

/// Queries over point sets (shared with the quadtree).
pub enum PointQuery {
    /// Points inside the closed window `[lo, hi]`.
    Window(Point, Point),
    /// Exact point lookup.
    Exact(Point),
}

/// Inner-node predicate: split plane.
#[derive(Debug, Clone, Copy)]
pub struct KdPred {
    /// Splitting dimension (0 = x, 1 = y).
    pub dim: usize,
    /// Splitting value: label 0 holds `p[dim] <= value`, label 1 the rest.
    pub value: f64,
}

/// Operator set for the 2-D kd-tree.
#[derive(Debug, Default, Clone)]
pub struct KdTreeOps;

impl SpgistOps for KdTreeOps {
    type Key = Point;
    type Pred = KdPred;
    type Path = BoundBox;
    type Query = PointQuery;

    fn root_path(&self) -> BoundBox {
        BoundBox::everything()
    }

    fn picksplit(&self, keys: &[Point], _path: &BoundBox) -> Option<KdPred> {
        let (mut lo, mut hi) = ([f64::INFINITY; 2], [f64::NEG_INFINITY; 2]);
        for p in keys {
            for (d, &coord) in p.iter().enumerate() {
                lo[d] = lo[d].min(coord);
                hi[d] = hi[d].max(coord);
            }
        }
        let spread = [hi[0] - lo[0], hi[1] - lo[1]];
        if spread[0] <= 0.0 && spread[1] <= 0.0 {
            return None; // all points identical
        }
        let dim = if spread[0] >= spread[1] { 0 } else { 1 };
        Some(KdPred {
            dim,
            value: (lo[dim] + hi[dim]) / 2.0,
        })
    }

    fn choose(&self, pred: &KdPred, key: &Point) -> usize {
        usize::from(key[pred.dim] > pred.value)
    }

    fn extend_path(&self, path: &BoundBox, pred: &KdPred, label: usize) -> BoundBox {
        let mut b = *path;
        if label == 0 {
            b.hi[pred.dim] = b.hi[pred.dim].min(pred.value);
        } else {
            b.lo[pred.dim] = b.lo[pred.dim].max(pred.value);
        }
        b
    }

    fn query_consistent(&self, path: &BoundBox, q: &PointQuery) -> bool {
        match q {
            PointQuery::Window(lo, hi) => path.intersects_window(*lo, *hi),
            PointQuery::Exact(p) => path.intersects_window(*p, *p),
        }
    }

    fn leaf_matches(&self, key: &Point, q: &PointQuery) -> bool {
        match q {
            PointQuery::Window(lo, hi) => (0..2).all(|d| lo[d] <= key[d] && key[d] <= hi[d]),
            PointQuery::Exact(p) => key == p,
        }
    }

    fn path_min_dist(&self, path: &BoundBox, target: &Point) -> f64 {
        path.min_dist2(*target).sqrt()
    }

    fn key_dist(&self, a: &Point, b: &Point) -> f64 {
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
    }

    fn key_bytes(&self, _key: &Point) -> usize {
        16
    }
}

/// A ready-made kd-tree index.
pub type KdTreeIndex<V> = SpGist<KdTreeOps, V>;

/// Build an empty kd-tree index.
pub fn kdtree_index<V: Clone>() -> KdTreeIndex<V> {
    SpGist::new(KdTreeOps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> KdTreeIndex<usize> {
        let mut t = SpGist::with_leaf_capacity(KdTreeOps, 4);
        for i in 0..n {
            let x = (i % 32) as f64;
            let y = (i / 32) as f64;
            t.insert([x, y], i);
        }
        t
    }

    #[test]
    fn window_query_on_grid() {
        let t = grid(1024);
        let hits = t.search(&PointQuery::Window([2.0, 2.0], [5.0, 4.0]));
        assert_eq!(hits.len(), 4 * 3);
        for (p, _) in &hits {
            assert!(p[0] >= 2.0 && p[0] <= 5.0 && p[1] >= 2.0 && p[1] <= 4.0);
        }
    }

    #[test]
    fn exact_query() {
        let t = grid(1024);
        let hits = t.search(&PointQuery::Exact([7.0, 3.0]));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, 3 * 32 + 7);
        assert!(t.search(&PointQuery::Exact([7.5, 3.0])).is_empty());
    }

    #[test]
    fn knn_on_grid() {
        let t = grid(1024);
        let got = t.knn(&[10.1, 10.1], 5);
        assert_eq!(got.len(), 5);
        // nearest must be (10, 10)
        assert_eq!(got[0].0, [10.0, 10.0]);
        // distances are non-decreasing
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn identical_points_unsplittable() {
        let mut t = SpGist::with_leaf_capacity(KdTreeOps, 2);
        for i in 0..40usize {
            t.insert([1.0, 1.0], i);
        }
        assert_eq!(t.len(), 40);
        assert_eq!(t.search(&PointQuery::Exact([1.0, 1.0])).len(), 40);
    }

    #[test]
    fn knn_visits_fraction_of_nodes() {
        let t = grid(1024);
        t.stats().reset();
        let _ = t.knn(&[16.0, 16.0], 3);
        assert!(
            (t.stats().reads() as usize) < t.node_count() / 2,
            "kNN should prune: read {} of {} nodes",
            t.stats().reads(),
            t.node_count()
        );
    }

    #[test]
    fn collinear_points_split_fine() {
        let mut t = SpGist::with_leaf_capacity(KdTreeOps, 2);
        for i in 0..100usize {
            t.insert([i as f64, 0.0], i);
        }
        let hits = t.search(&PointQuery::Window([10.0, -1.0], [20.0, 1.0]));
        assert_eq!(hits.len(), 11);
    }
}
