//! SP-GiST point-quadtree instantiation.
//!
//! §7.1 cites the point quadtree (Finkel & Bentley 1974) among the SP-GiST
//! instantiations.  Each inner node splits the plane into four quadrants
//! around a centre point (we use the centroid of the overflowing leaf,
//! which guarantees progress for non-degenerate point sets).
//!
//! The query language is shared with the kd-tree
//! ([`PointQuery`]), so the E-SPGIST experiment
//! can run the same workload over both structures plus the R-tree baseline.

use crate::kdtree::{BoundBox, Point, PointQuery};
use crate::spgist::{SpGist, SpgistOps};

/// Inner-node predicate: the quadrant centre.
#[derive(Debug, Clone, Copy)]
pub struct QuadPred {
    /// Centre point; quadrant label = (x > cx) + 2·(y > cy).
    pub centre: Point,
}

/// Operator set for the point quadtree.
#[derive(Debug, Default, Clone)]
pub struct QuadtreeOps;

impl SpgistOps for QuadtreeOps {
    type Key = Point;
    type Pred = QuadPred;
    type Path = BoundBox;
    type Query = PointQuery;

    fn root_path(&self) -> BoundBox {
        BoundBox::everything()
    }

    fn picksplit(&self, keys: &[Point], _path: &BoundBox) -> Option<QuadPred> {
        let n = keys.len() as f64;
        let cx = keys.iter().map(|p| p[0]).sum::<f64>() / n;
        let cy = keys.iter().map(|p| p[1]).sum::<f64>() / n;
        let spread_x = keys.iter().any(|p| p[0] != keys[0][0]);
        let spread_y = keys.iter().any(|p| p[1] != keys[0][1]);
        if !spread_x && !spread_y {
            return None; // all points identical
        }
        Some(QuadPred { centre: [cx, cy] })
    }

    fn choose(&self, pred: &QuadPred, key: &Point) -> usize {
        usize::from(key[0] > pred.centre[0]) + 2 * usize::from(key[1] > pred.centre[1])
    }

    fn extend_path(&self, path: &BoundBox, pred: &QuadPred, label: usize) -> BoundBox {
        let mut b = *path;
        if label & 1 == 0 {
            b.hi[0] = b.hi[0].min(pred.centre[0]);
        } else {
            b.lo[0] = b.lo[0].max(pred.centre[0]);
        }
        if label & 2 == 0 {
            b.hi[1] = b.hi[1].min(pred.centre[1]);
        } else {
            b.lo[1] = b.lo[1].max(pred.centre[1]);
        }
        b
    }

    fn query_consistent(&self, path: &BoundBox, q: &PointQuery) -> bool {
        match q {
            PointQuery::Window(lo, hi) => path.intersects_window(*lo, *hi),
            PointQuery::Exact(p) => path.intersects_window(*p, *p),
        }
    }

    fn leaf_matches(&self, key: &Point, q: &PointQuery) -> bool {
        match q {
            PointQuery::Window(lo, hi) => (0..2).all(|d| lo[d] <= key[d] && key[d] <= hi[d]),
            PointQuery::Exact(p) => key == p,
        }
    }

    fn path_min_dist(&self, path: &BoundBox, target: &Point) -> f64 {
        path.min_dist2(*target).sqrt()
    }

    fn key_dist(&self, a: &Point, b: &Point) -> f64 {
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
    }

    fn key_bytes(&self, _key: &Point) -> usize {
        16
    }
}

/// A ready-made point-quadtree index.
pub type QuadtreeIndex<V> = SpGist<QuadtreeOps, V>;

/// Build an empty quadtree index.
pub fn quadtree_index<V: Clone>() -> QuadtreeIndex<V> {
    SpGist::new(QuadtreeOps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> (QuadtreeIndex<usize>, Vec<Point>) {
        let mut t = SpGist::with_leaf_capacity(QuadtreeOps, 4);
        let mut pts = Vec::new();
        let mut x: u64 = 99;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let px = ((x >> 33) % 1000) as f64 / 10.0;
            let py = ((x >> 11) % 1000) as f64 / 10.0;
            t.insert([px, py], i);
            pts.push([px, py]);
        }
        (t, pts)
    }

    #[test]
    fn window_matches_naive() {
        let (t, pts) = cloud(2000);
        let (lo, hi) = ([20.0, 20.0], [40.0, 60.0]);
        let expect = pts
            .iter()
            .filter(|p| p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1])
            .count();
        let got = t.search(&PointQuery::Window(lo, hi)).len();
        assert_eq!(got, expect);
    }

    #[test]
    fn knn_matches_naive() {
        let (t, pts) = cloud(1500);
        let target = [50.0, 50.0];
        let got = t.knn(&target, 10);
        assert_eq!(got.len(), 10);
        let mut naive: Vec<f64> = pts
            .iter()
            .map(|p| ((p[0] - target[0]).powi(2) + (p[1] - target[1]).powi(2)).sqrt())
            .collect();
        naive.sort_by(|a, b| a.total_cmp(b));
        for (i, (_, _, d)) in got.iter().enumerate() {
            assert!(
                (d - naive[i]).abs() < 1e-9,
                "kNN #{i}: got {d}, want {}",
                naive[i]
            );
        }
    }

    #[test]
    fn quadrant_labels() {
        let ops = QuadtreeOps;
        let pred = QuadPred { centre: [0.0, 0.0] };
        assert_eq!(ops.choose(&pred, &[-1.0, -1.0]), 0);
        assert_eq!(ops.choose(&pred, &[1.0, -1.0]), 1);
        assert_eq!(ops.choose(&pred, &[-1.0, 1.0]), 2);
        assert_eq!(ops.choose(&pred, &[1.0, 1.0]), 3);
        // boundary points go to the "≤" side
        assert_eq!(ops.choose(&pred, &[0.0, 0.0]), 0);
    }

    #[test]
    fn duplicate_points_dont_loop() {
        let mut t = SpGist::with_leaf_capacity(QuadtreeOps, 2);
        for i in 0..30usize {
            t.insert([5.0, 5.0], i);
        }
        t.insert([6.0, 6.0], 30);
        assert_eq!(t.search(&PointQuery::Exact([5.0, 5.0])).len(), 30);
        assert_eq!(t.len(), 31);
    }

    #[test]
    fn height_stays_logarithmic_on_uniform_data() {
        let (t, _) = cloud(4000);
        // centroid splits keep the tree shallow on uniform points
        assert!(t.height() <= 16, "height {}", t.height());
    }
}
