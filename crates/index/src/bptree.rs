//! An in-memory, node-instrumented B+-tree.
//!
//! This is the baseline access method the paper compares SP-GiST and the
//! SBC-tree against.  Nodes live in an arena and every node visited or
//! modified is counted through [`AccessStats`], with one node standing in
//! for one disk page (fanout defaults to a page-realistic 128).
//!
//! The tree is a multimap: duplicate keys are allowed and kept in insertion
//! order within a key.

use bdbms_common::stats::AccessStats;

const DEFAULT_FANOUT: usize = 128;

/// Arena index of a node.
type NodeId = usize;

enum Node<K, V> {
    Inner {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (≥ key).
        keys: Vec<K>,
        children: Vec<NodeId>,
    },
    Leaf {
        entries: Vec<(K, V)>,
        next: Option<NodeId>,
    },
}

/// B+-tree multimap with logical I/O accounting.
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: NodeId,
    fanout: usize,
    len: usize,
    stats: AccessStats,
    /// Estimated byte cost per entry (key bytes are measured by the caller
    /// via `key_bytes`).
    key_bytes: fn(&K) -> usize,
}

impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    /// Empty tree with the default fanout.
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// Empty tree with a custom fanout (min 4).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4, "fanout must be at least 4");
        BPlusTree {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                next: None,
            }],
            root: 0,
            fanout,
            len: 0,
            stats: AccessStats::new(),
            key_bytes: |_| 8,
        }
    }

    /// Set the function used to estimate stored key size (for the
    /// storage-bytes comparisons in E12 / E-SPGIST).
    pub fn set_key_size_fn(&mut self, f: fn(&K) -> usize) {
        self.key_bytes = f;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical node I/O counters.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Number of nodes (≈ pages) in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Estimated storage footprint in bytes: per-node header plus per-entry
    /// key/value/pointer costs.
    pub fn storage_bytes(&self) -> usize {
        let mut total = 0;
        for n in &self.nodes {
            total += 16; // node header
            match n {
                Node::Inner { keys, children } => {
                    total += keys.iter().map(|k| (self.key_bytes)(k)).sum::<usize>();
                    total += children.len() * 8;
                }
                Node::Leaf { entries, .. } => {
                    total += entries
                        .iter()
                        .map(|(k, _)| (self.key_bytes)(k) + 8)
                        .sum::<usize>();
                }
            }
        }
        total
    }

    /// Depth of the tree (1 = root is a leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return h,
                Node::Inner { children, .. } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Insert `(key, value)`.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            // Root split: make a new root.
            let old_root = self.root;
            self.nodes.push(Node::Inner {
                keys: vec![sep],
                children: vec![old_root, right],
            });
            self.root = self.nodes.len() - 1;
            self.stats.record_write();
        }
        self.len += 1;
    }

    /// Recursive insert; returns `Some((separator, new_right))` on split.
    fn insert_rec(&mut self, id: NodeId, key: K, value: V) -> Option<(K, NodeId)> {
        self.stats.record_read();
        match &mut self.nodes[id] {
            Node::Leaf { entries, .. } => {
                let pos = entries.partition_point(|(k, _)| *k <= key);
                entries.insert(pos, (key, value));
                self.stats.record_write();
                if let Node::Leaf { entries, next } = &mut self.nodes[id] {
                    if entries.len() > self.fanout {
                        let mid = entries.len() / 2;
                        let right_entries = entries.split_off(mid);
                        let old_next = *next;
                        let sep = right_entries[0].0.clone();
                        self.nodes.push(Node::Leaf {
                            entries: right_entries,
                            next: old_next,
                        });
                        let right_id = self.nodes.len() - 1;
                        if let Node::Leaf { next, .. } = &mut self.nodes[id] {
                            *next = Some(right_id);
                        }
                        self.stats.record_write();
                        return Some((sep, right_id));
                    }
                }
                None
            }
            Node::Inner { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let child = children[idx];
                let split = self.insert_rec(child, key, value);
                if let Some((sep, right)) = split {
                    if let Node::Inner { keys, children } = &mut self.nodes[id] {
                        let idx = keys.partition_point(|k| *k <= sep);
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        self.stats.record_write();
                        if keys.len() > self.fanout {
                            let mid = keys.len() / 2;
                            let up = keys[mid].clone();
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // `up` moves to the parent
                            let right_children = children.split_off(mid + 1);
                            self.nodes.push(Node::Inner {
                                keys: right_keys,
                                children: right_children,
                            });
                            self.stats.record_write();
                            return Some((up, self.nodes.len() - 1));
                        }
                    }
                }
                None
            }
        }
    }

    /// Descend to the *leftmost* leaf that may contain `key`.  Duplicate
    /// runs can straddle a separator equal to the key, so lookups start at
    /// the left edge and scan forward along the leaf chain.
    fn find_leaf(&self, key: &K) -> NodeId {
        let mut id = self.root;
        loop {
            self.stats.record_read();
            match &self.nodes[id] {
                Node::Leaf { .. } => return id,
                Node::Inner { keys, children } => {
                    let idx = keys.partition_point(|k| k < key);
                    id = children[idx];
                }
            }
        }
    }

    /// All values stored under `key`.
    pub fn get(&self, key: &K) -> Vec<V> {
        let mut out = Vec::new();
        let mut leaf = self.find_leaf(key);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next } => {
                    let start = entries.partition_point(|(k, _)| k < key);
                    let mut i = start;
                    while i < entries.len() && entries[i].0 == *key {
                        out.push(entries[i].1.clone());
                        i += 1;
                    }
                    if i < entries.len() || next.is_none() {
                        break;
                    }
                    // key run may continue into the next leaf
                    leaf = next.unwrap();
                    self.stats.record_read();
                }
                _ => unreachable!(),
            }
        }
        out
    }

    /// True iff at least one entry with `key` exists.
    pub fn contains(&self, key: &K) -> bool {
        !self.get(key).is_empty()
    }

    /// All entries with `lo <= key < hi` in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if lo >= hi {
            return out;
        }
        let mut leaf = self.find_leaf(lo);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next } => {
                    for (k, v) in entries {
                        if k < lo {
                            continue;
                        }
                        if k >= hi {
                            return out;
                        }
                        out.push((k.clone(), v.clone()));
                    }
                    match next {
                        Some(n) => {
                            leaf = *n;
                            self.stats.record_read();
                        }
                        None => return out,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// All entries within `lo`/`hi` (any [`std::ops::Bound`] combination) in key
    /// order.  This is the executor's index-scan entry point: equality
    /// probes use `Included(k)..=Included(k)`, one-sided comparisons leave
    /// the other end `Unbounded`.
    pub fn scan_bounds(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        use std::ops::Bound;
        let below_lo = |k: &K| match lo {
            Bound::Included(b) => k < b,
            Bound::Excluded(b) => k <= b,
            Bound::Unbounded => false,
        };
        let above_hi = |k: &K| match hi {
            Bound::Included(b) => k > b,
            Bound::Excluded(b) => k >= b,
            Bound::Unbounded => false,
        };
        // start at the leftmost leaf that can hold the lower bound
        let mut leaf = match lo {
            Bound::Included(b) | Bound::Excluded(b) => self.find_leaf(b),
            Bound::Unbounded => {
                let mut id = self.root;
                loop {
                    self.stats.record_read();
                    match &self.nodes[id] {
                        Node::Leaf { .. } => break id,
                        Node::Inner { children, .. } => id = children[0],
                    }
                }
            }
        };
        let mut out = Vec::new();
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next } => {
                    for (k, v) in entries {
                        if below_lo(k) {
                            continue;
                        }
                        if above_hi(k) {
                            return out;
                        }
                        out.push((k.clone(), v.clone()));
                    }
                    match next {
                        Some(n) => {
                            leaf = *n;
                            self.stats.record_read();
                        }
                        None => return out,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Delete one entry equal to `(key, value)`; returns whether one was
    /// removed.  (No rebalancing — deletes are rare in the bdbms workloads
    /// and underfull nodes only waste space, never break correctness.)
    pub fn delete(&mut self, key: &K, value: &V) -> bool
    where
        V: PartialEq,
    {
        let mut leaf = self.find_leaf(key);
        loop {
            match &mut self.nodes[leaf] {
                Node::Leaf { entries, next } => {
                    let start = entries.partition_point(|(k, _)| k < key);
                    let mut i = start;
                    while i < entries.len() && entries[i].0 == *key {
                        if entries[i].1 == *value {
                            entries.remove(i);
                            self.len -= 1;
                            self.stats.record_write();
                            return true;
                        }
                        i += 1;
                    }
                    if i < entries.len() {
                        return false;
                    }
                    match next {
                        Some(n) => {
                            leaf = *n;
                            self.stats.record_read();
                        }
                        None => return false,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Every entry in key order (test / debugging helper).
    pub fn iter_all(&self) -> Vec<(K, V)> {
        // walk to the leftmost leaf, then follow the leaf chain
        let mut id = self.root;
        while let Node::Inner { children, .. } = &self.nodes[id] {
            id = children[0];
        }
        let mut out = Vec::with_capacity(self.len);
        loop {
            match &self.nodes[id] {
                Node::Leaf { entries, next } => {
                    out.extend(entries.iter().cloned());
                    match next {
                        Some(n) => id = *n,
                        None => break,
                    }
                }
                _ => unreachable!(),
            }
        }
        out
    }
}

impl<K: Ord + Clone, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Prefix search helper for byte-string keys: all entries whose key starts
/// with `prefix`, implemented as the range `[prefix, prefix+1)` — this is
/// exactly how a B+-tree serves prefix queries, and is the baseline for the
/// trie comparisons in E-SPGIST.
pub fn prefix_range<V: Clone>(tree: &BPlusTree<Vec<u8>, V>, prefix: &[u8]) -> Vec<(Vec<u8>, V)> {
    let lo = prefix.to_vec();
    let hi = prefix_upper_bound(prefix);
    match hi {
        Some(hi) => tree.range(&lo, &hi),
        None => {
            // prefix is all 0xFF: everything ≥ prefix matches the range scan
            let mut out = Vec::new();
            for (k, v) in tree.iter_all() {
                if k.starts_with(prefix) {
                    out.push((k, v));
                }
            }
            out
        }
    }
}

/// Smallest byte string strictly greater than every string with `prefix`.
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    while let Some(last) = hi.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(hi);
        }
        hi.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_basic() {
        let mut t = BPlusTree::new();
        t.insert(5, "five");
        t.insert(3, "three");
        t.insert(8, "eight");
        assert_eq!(t.get(&3), vec!["three"]);
        assert_eq!(t.get(&5), vec!["five"]);
        assert_eq!(t.get(&9), Vec::<&str>::new());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_preserved() {
        let mut t = BPlusTree::new();
        t.insert("JW0080".to_string(), 1);
        t.insert("JW0080".to_string(), 2);
        t.insert("JW0080".to_string(), 3);
        assert_eq!(t.get(&"JW0080".to_string()), vec![1, 2, 3]);
    }

    #[test]
    fn splits_keep_order_small_fanout() {
        let mut t = BPlusTree::with_fanout(4);
        let n = 1000;
        for i in (0..n).rev() {
            t.insert(i, i * 10);
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.height() > 2, "must have split into a multi-level tree");
        let all = t.iter_all();
        assert_eq!(all.len(), n as usize);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(*k, i as i64);
            assert_eq!(*v, i as i64 * 10);
        }
    }

    #[test]
    fn range_scan() {
        let mut t = BPlusTree::with_fanout(4);
        for i in 0..100 {
            t.insert(i, ());
        }
        let r = t.range(&10, &20);
        let keys: Vec<i32> = r.into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (10..20).collect::<Vec<_>>());
        assert!(t.range(&50, &50).is_empty());
        assert!(t.range(&60, &50).is_empty());
    }

    #[test]
    fn range_spans_leaves() {
        let mut t = BPlusTree::with_fanout(4);
        for i in 0..64 {
            t.insert(i, ());
        }
        assert_eq!(t.range(&0, &64).len(), 64);
    }

    #[test]
    fn scan_bounds_all_combinations() {
        use std::ops::Bound::*;
        let mut t = BPlusTree::with_fanout(4);
        for i in 0..50 {
            t.insert(i, i);
        }
        let keys =
            |lo, hi| -> Vec<i32> { t.scan_bounds(lo, hi).into_iter().map(|(k, _)| k).collect() };
        assert_eq!(keys(Included(&10), Included(&12)), vec![10, 11, 12]);
        assert_eq!(keys(Excluded(&10), Excluded(&13)), vec![11, 12]);
        assert_eq!(keys(Included(&47), Unbounded), vec![47, 48, 49]);
        assert_eq!(keys(Unbounded, Excluded(&3)), vec![0, 1, 2]);
        assert_eq!(keys(Unbounded, Unbounded).len(), 50);
        assert_eq!(
            keys(Included(&30), Included(&30)),
            vec![30],
            "equality probe"
        );
        assert!(keys(Included(&20), Excluded(&20)).is_empty());
        assert!(keys(Included(&60), Unbounded).is_empty());
    }

    #[test]
    fn scan_bounds_with_duplicates() {
        use std::ops::Bound::*;
        let mut t = BPlusTree::with_fanout(4);
        for _ in 0..12 {
            t.insert(5, "x");
        }
        t.insert(4, "below");
        t.insert(6, "above");
        assert_eq!(t.scan_bounds(Included(&5), Included(&5)).len(), 12);
        assert_eq!(t.scan_bounds(Excluded(&5), Unbounded).len(), 1);
        assert_eq!(t.scan_bounds(Unbounded, Excluded(&5)).len(), 1);
    }

    #[test]
    fn delete_specific_entry() {
        let mut t = BPlusTree::with_fanout(4);
        t.insert(7, "a");
        t.insert(7, "b");
        assert!(t.delete(&7, &"a"));
        assert_eq!(t.get(&7), vec!["b"]);
        assert!(!t.delete(&7, &"zzz"));
        assert!(t.delete(&7, &"b"));
        assert!(t.get(&7).is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn duplicate_run_across_leaf_boundary() {
        let mut t = BPlusTree::with_fanout(4);
        for _ in 0..20 {
            t.insert(5, 1);
        }
        t.insert(1, 0);
        t.insert(9, 2);
        assert_eq!(t.get(&5).len(), 20);
    }

    #[test]
    fn prefix_search_on_bytes() {
        let mut t: BPlusTree<Vec<u8>, usize> = BPlusTree::with_fanout(8);
        let words = ["ATG", "ATGAAA", "ATGC", "ATT", "GTG", "AT"];
        for (i, w) in words.iter().enumerate() {
            t.insert(w.as_bytes().to_vec(), i);
        }
        let hits = prefix_range(&t, b"ATG");
        let mut got: Vec<&str> = hits
            .iter()
            .map(|(k, _)| std::str::from_utf8(k).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec!["ATG", "ATGAAA", "ATGC"]);
    }

    #[test]
    fn prefix_upper_bound_edge_cases() {
        assert_eq!(prefix_upper_bound(b"AB"), Some(b"AC".to_vec()));
        assert_eq!(prefix_upper_bound(&[0x41, 0xFF]), Some(vec![0x42]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn stats_count_descent() {
        let mut t = BPlusTree::with_fanout(4);
        for i in 0..1000 {
            t.insert(i, ());
        }
        t.stats().reset();
        let _ = t.get(&500);
        let h = t.height() as u64;
        assert!(t.stats().reads() >= h, "lookup must read ≥ height nodes");
        assert_eq!(t.stats().writes(), 0);
    }

    #[test]
    fn storage_bytes_grows_with_entries() {
        let mut t = BPlusTree::with_fanout(16);
        let empty = t.storage_bytes();
        for i in 0..500 {
            t.insert(i, i);
        }
        assert!(t.storage_bytes() > empty + 500 * 8);
    }
}
