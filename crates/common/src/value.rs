//! The tuple value model.
//!
//! Biological tables in the paper mix identifiers, free text, numbers, and
//! long sequences (gene / protein / secondary-structure strings).  bdbms
//! models all of them with [`Value`]; sequences are `Text` at the value
//! level and gain their compressed/indexed treatment in `bdbms-seq`.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{BdbmsError, Result};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float (e.g. BLAST E-values in Figure 9(b)).
    Float,
    /// Variable-length UTF-8 text; also used for biological sequences.
    Text,
    /// Boolean.
    Bool,
    /// Logical timestamp (ticks of [`crate::clock::LogicalClock`]).
    Timestamp,
}

impl DataType {
    /// Parse a SQL type name (`INT`, `FLOAT`, `TEXT`, `BOOL`, `TIMESTAMP`;
    /// a few common aliases accepted).
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" | "SEQUENCE" => Ok(DataType::Text),
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "TIMESTAMP" => Ok(DataType::Timestamp),
            other => Err(BdbmsError::syntax(format!("unknown type `{other}`"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Value` implements a *total* ordering (`NULL` sorts first, floats compare
/// by `total_cmp`) so it can key sorted structures and drive `ORDER BY`,
/// `GROUP BY`, and duplicate elimination deterministically.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text / sequence data.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Logical timestamp.
    Timestamp(u64),
}

impl Value {
    /// The dynamic type of this value, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks this value is NULL or matches `ty`, coercing `Int` → `Float`
    /// and `Int` → `Timestamp` (the only implicit widenings bdbms allows).
    pub fn coerce_to(self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
            (Value::Int(i), DataType::Timestamp) => {
                if i < 0 {
                    Err(BdbmsError::invalid(format!("negative timestamp {i}")))
                } else {
                    Ok(Value::Timestamp(i as u64))
                }
            }
            (v, t) if v.data_type() == Some(t) => Ok(v),
            (v, t) => Err(BdbmsError::type_mismatch(format!(
                "cannot store {} value into {} column",
                v.type_name(),
                t
            ))),
        }
    }

    /// Human-readable type name (NULL included).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Text(_) => "TEXT",
            Value::Bool(_) => "BOOL",
            Value::Timestamp(_) => "TIMESTAMP",
        }
    }

    /// Truthiness for WHERE-style predicates: only `Bool(true)` passes.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Access the text payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Access the integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Access the float payload, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Serialize to a compact byte representation (used by the slotted-page
    /// record format in `bdbms-storage`). The encoding is
    /// `tag byte || payload`, with text length-prefixed.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
            Value::Timestamp(t) => {
                out.push(5);
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
    }

    /// Decode one value from `buf` starting at `*pos`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value> {
        let err = || BdbmsError::storage("truncated value encoding");
        let tag = *buf.get(*pos).ok_or_else(err)?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(err)?;
            *pos += n;
            Ok(s)
        };
        match tag {
            0 => Ok(Value::Null),
            1 => {
                let b: [u8; 8] = take(pos, 8)?.try_into().unwrap();
                Ok(Value::Int(i64::from_le_bytes(b)))
            }
            2 => {
                let b: [u8; 8] = take(pos, 8)?.try_into().unwrap();
                Ok(Value::Float(f64::from_le_bytes(b)))
            }
            3 => {
                let b: [u8; 4] = take(pos, 4)?.try_into().unwrap();
                let n = u32::from_le_bytes(b) as usize;
                let s = take(pos, n)?;
                let s = std::str::from_utf8(s)
                    .map_err(|_| BdbmsError::storage("invalid utf8 in stored text"))?;
                Ok(Value::Text(s.to_string()))
            }
            4 => {
                let b = take(pos, 1)?[0];
                Ok(Value::Bool(b != 0))
            }
            5 => {
                let b: [u8; 8] = take(pos, 8)?.try_into().unwrap();
                Ok(Value::Timestamp(u64::from_le_bytes(b)))
            }
            t => Err(BdbmsError::storage(format!("unknown value tag {t}"))),
        }
    }

    /// Advance `*pos` past one encoded value without materializing it.
    ///
    /// Column-pruned scans use this to step over values the plan has
    /// proven unread — text payloads are not copied or even
    /// UTF-8-validated, only length-checked.
    pub fn skip(buf: &[u8], pos: &mut usize) -> Result<()> {
        let err = || BdbmsError::storage("truncated value encoding");
        let tag = *buf.get(*pos).ok_or_else(err)?;
        *pos += 1;
        let n = match tag {
            0 => 0,
            1 | 2 | 5 => 8,
            3 => {
                let b: [u8; 4] = buf.get(*pos..*pos + 4).ok_or_else(err)?.try_into().unwrap();
                *pos += 4;
                u32::from_le_bytes(b) as usize
            }
            4 => 1,
            t => return Err(BdbmsError::storage(format!("unknown value tag {t}"))),
        };
        buf.get(*pos..*pos + n).ok_or_else(err)?;
        *pos += n;
        Ok(())
    }

    /// SQL-comparison between values of compatible types.
    ///
    /// Returns `None` when either side is NULL or the types are
    /// incomparable — mirroring SQL's three-valued logic where comparisons
    /// with NULL are unknown.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Some(a.cmp(b)),
            (Value::Timestamp(a), Value::Int(b)) => Some((*a as i128).cmp(&(*b as i128))),
            (Value::Int(a), Value::Timestamp(b)) => Some((*a as i128).cmp(&(*b as i128))),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used by sorting operators: NULL < Int/Float/Timestamp
    /// (numeric, interleaved) < Text < Bool.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 1,
                Value::Text(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let fa = numeric(a);
                let fb = numeric(b);
                fa.total_cmp(&fb)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn numeric(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Timestamp(t) => *t as f64,
        _ => f64::NAN,
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash numerics through their f64 bit pattern so Int(2),
            // Float(2.0) and Timestamp(2) — which compare Equal — also
            // hash identically.
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => {
                1u8.hash(state);
                numeric(self).to_bits().hash(state);
            }
            Value::Text(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "T{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_encoding_all_variants() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Text("ATGAAAGTATC".into()),
            Value::Bool(true),
            Value::Timestamp(99),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            v.encode(&mut buf);
        }
        let mut pos = 0;
        for v in &vals {
            let d = Value::decode(&buf, &mut pos).unwrap();
            assert_eq!(&d, v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn skip_advances_exactly_like_decode() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(2.5),
            Value::Text("ATGAAAGTATC".into()),
            Value::Bool(true),
            Value::Timestamp(99),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            v.encode(&mut buf);
        }
        let (mut sp, mut dp) = (0, 0);
        for _ in &vals {
            Value::skip(&buf, &mut sp).unwrap();
            Value::decode(&buf, &mut dp).unwrap();
            assert_eq!(sp, dp);
        }
        assert_eq!(sp, buf.len());
        // truncated text payload: skip must fail, not run off the end
        let mut short = Vec::new();
        Value::Text("hello".into()).encode(&mut short);
        short.truncate(7);
        let mut pos = 0;
        assert!(Value::skip(&short, &mut pos).is_err());
    }

    #[test]
    fn decode_truncated_fails() {
        let mut buf = Vec::new();
        Value::Int(7).encode(&mut buf);
        buf.truncate(4);
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_order_null_first() {
        let mut v = [Value::Text("b".into()), Value::Int(1), Value::Null];
        v.sort();
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn coercion_int_to_float_and_timestamp() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Timestamp).unwrap(),
            Value::Timestamp(3)
        );
        assert!(Value::Int(-1).coerce_to(DataType::Timestamp).is_err());
        assert!(Value::Text("x".into()).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Text);
        assert_eq!(DataType::parse("INTEGER").unwrap(), DataType::Int);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn equal_values_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(h(&Value::Int(2)), h(&Value::Float(2.0)));
        assert_eq!(h(&Value::Timestamp(2)), h(&Value::Int(2)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(5).to_string(), "T5");
        assert_eq!(Value::Text("fruR".into()).to_string(), "fruR");
    }
}
