//! Logical time.
//!
//! The paper timestamps every annotation when it is added (§3.3: archival
//! "BETWEEN time1 AND time2" operates on those timestamps), stamps
//! provenance records ("what is the source of this value at time T?" —
//! Figure 8), and orders the content-approval log (§6).  A logical clock
//! makes every one of those behaviours deterministic and testable.

/// A strictly monotonic logical clock; one tick per observable event.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: u64,
}

impl LogicalClock {
    /// A clock starting at tick 0.
    pub fn new() -> Self {
        LogicalClock::default()
    }

    /// Advance the clock and return the new tick.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// The current tick without advancing.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jump forward to at least `t` (used when replaying logs).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_strictly_increase() {
        let mut c = LogicalClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_to_never_goes_back() {
        let mut c = LogicalClock::new();
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        c.advance_to(5);
        assert_eq!(c.now(), 10);
        assert_eq!(c.tick(), 11);
    }
}
