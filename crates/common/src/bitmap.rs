//! Outdated-cell bitmaps (Figure 10 of the paper).
//!
//! §5 of the paper: *"We propose to associate a bitmap with each table in
//! the database. A cell in the bitmap is set to 1 if the corresponding cell
//! in the data table is outdated [...] To reduce the storage overhead of
//! the maintained bitmaps, data compression techniques such as
//! Run-Length-Encoding can be used to effectively compress the bitmaps."*
//!
//! [`CellBitmap`] is the plain dense bitmap; [`RleBitmap`] is its
//! run-length-encoded form.  Experiment **E10** sweeps the fraction and
//! clustering of outdated cells and compares the two representations'
//! storage, reproducing the paper's compression argument.

/// Dense 2-D bitmap over `(row, column)` cells, packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellBitmap {
    rows: usize,
    cols: usize,
    words: Vec<u64>,
}

impl CellBitmap {
    /// All-zero bitmap for `rows × cols` cells.
    pub fn new(rows: usize, cols: usize) -> Self {
        let bits = rows * cols;
        CellBitmap {
            rows,
            cols,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Number of rows tracked.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns tracked.
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Mark `(row, col)` outdated.
    pub fn set(&mut self, row: usize, col: usize) {
        let i = self.index(row, col);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear `(row, col)` (cell re-validated — §5 "Validating outdated data").
    pub fn clear(&mut self, row: usize, col: usize) {
        let i = self.index(row, col);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Is `(row, col)` marked outdated?
    pub fn get(&self, row: usize, col: usize) -> bool {
        let i = self.index(row, col);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Grow the bitmap to cover `rows` rows (new rows start clean).
    pub fn grow_rows(&mut self, rows: usize) {
        if rows <= self.rows {
            return;
        }
        let mut bigger = CellBitmap::new(rows, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    bigger.set(r, c);
                }
            }
        }
        *self = bigger;
    }

    /// Count of set (outdated) cells.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate all set cells as `(row, col)` in row-major order.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        (0..self.rows * self.cols)
            .filter(move |i| self.words[i / 64] & (1 << (i % 64)) != 0)
            .map(move |i| (i / cols, i % cols))
    }

    /// Bytes used by the dense representation (payload only).
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Compress into run-length form over *column-major* bit order.
    ///
    /// Outdating often strikes whole columns (the closure of a procedure —
    /// §5 — invalidates a column per affected table), which row-major runs
    /// fragment into one run per row.  Column-major order turns a column
    /// stripe into a single run.  [`RleBitmap::get`] and
    /// [`RleBitmap::to_dense`] honour the stored order.
    pub fn to_rle_column_major(&self) -> RleBitmap {
        let total = self.rows * self.cols;
        let mut runs = Vec::new();
        let mut i = 0usize;
        let bit_at = |i: usize| {
            // i-th bit in column-major enumeration
            let col = i / self.rows.max(1);
            let row = i % self.rows.max(1);
            let j = row * self.cols + col;
            self.words[j / 64] & (1 << (j % 64)) != 0
        };
        while i < total {
            let bit = bit_at(i);
            let start = i;
            while i < total && bit_at(i) == bit {
                i += 1;
            }
            runs.push(Run {
                bit,
                len: (i - start) as u32,
            });
        }
        RleBitmap {
            rows: self.rows,
            cols: self.cols,
            runs,
            column_major: true,
        }
    }

    /// Compress into run-length form (row-major bit order).
    pub fn to_rle(&self) -> RleBitmap {
        let total = self.rows * self.cols;
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < total {
            let bit = self.words[i / 64] & (1 << (i % 64)) != 0;
            let start = i;
            while i < total && (self.words[i / 64] & (1 << (i % 64)) != 0) == bit {
                i += 1;
            }
            runs.push(Run {
                bit,
                len: (i - start) as u32,
            });
        }
        RleBitmap {
            rows: self.rows,
            cols: self.cols,
            runs,
            column_major: false,
        }
    }
}

/// One run of identical bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The repeated bit value.
    pub bit: bool,
    /// Number of repeats (always ≥ 1 in a well-formed bitmap).
    pub len: u32,
}

/// Run-length-encoded bitmap, the compressed form the paper proposes for
/// outdated-cell tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleBitmap {
    rows: usize,
    cols: usize,
    runs: Vec<Run>,
    /// Bit enumeration order of `runs`.
    column_major: bool,
}

impl RleBitmap {
    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns covered.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The runs, in row-major bit order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Query a cell by walking the runs (O(#runs)).
    pub fn get(&self, row: usize, col: usize) -> bool {
        let target = if self.column_major {
            (col * self.rows + row) as u64
        } else {
            (row * self.cols + col) as u64
        };
        let mut pos = 0u64;
        for r in &self.runs {
            let end = pos + r.len as u64;
            if target < end {
                return r.bit;
            }
            pos = end;
        }
        false
    }

    /// Decompress back to the dense bitmap.
    pub fn to_dense(&self) -> CellBitmap {
        let mut bm = CellBitmap::new(self.rows, self.cols);
        let mut i = 0usize;
        for r in &self.runs {
            if r.bit {
                for k in i..i + r.len as usize {
                    let j = if self.column_major {
                        let col = k / self.rows.max(1);
                        let row = k % self.rows.max(1);
                        row * self.cols + col
                    } else {
                        k
                    };
                    bm.words[j / 64] |= 1 << (j % 64);
                }
            }
            i += r.len as usize;
        }
        bm
    }

    /// Bytes used by the run-length representation: 5 bytes per run
    /// (1 tag + 4 length), matching a simple on-disk layout.
    pub fn storage_bytes(&self) -> usize {
        self.runs.len() * 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bm = CellBitmap::new(3, 4);
        assert!(!bm.get(1, 2));
        bm.set(1, 2);
        assert!(bm.get(1, 2));
        assert_eq!(bm.count_set(), 1);
        bm.clear(1, 2);
        assert!(!bm.get(1, 2));
        assert_eq!(bm.count_set(), 0);
    }

    #[test]
    fn figure10_protein_bitmap() {
        // Figure 10: Protein table, 4 columns (PName, GID, PSeq, PFun),
        // 3 rows; PFunction of rows 0 and 1 (mraW, ftsI) marked outdated.
        let mut bm = CellBitmap::new(3, 4);
        bm.set(0, 3);
        bm.set(1, 3);
        assert_eq!(bm.count_set(), 2);
        let set: Vec<_> = bm.iter_set().collect();
        assert_eq!(set, vec![(0, 3), (1, 3)]);
        // PSequence column (auto-recomputed by procedure P) stays clean.
        assert!(!bm.get(0, 2));
    }

    #[test]
    fn rle_roundtrip() {
        let mut bm = CellBitmap::new(10, 10);
        for r in 3..7 {
            for c in 0..10 {
                bm.set(r, c);
            }
        }
        let rle = bm.to_rle();
        assert_eq!(rle.to_dense(), bm);
        // One clean run, one dirty run, one clean run.
        assert_eq!(rle.runs().len(), 3);
        assert!(rle.get(4, 5));
        assert!(!rle.get(0, 0));
        assert!(!rle.get(9, 9));
    }

    #[test]
    fn rle_compresses_clustered_bitmaps() {
        // A mostly-clean table: RLE must be far smaller than dense.
        let mut bm = CellBitmap::new(1000, 8);
        for c in 0..8 {
            bm.set(500, c);
        }
        let rle = bm.to_rle();
        assert!(rle.storage_bytes() < bm.storage_bytes() / 10);
    }

    #[test]
    fn rle_expands_on_alternating_bits() {
        // Worst case for RLE: checkerboard. Dense wins; the experiment in
        // E10 shows exactly this crossover.
        let mut bm = CellBitmap::new(64, 2);
        for r in 0..64 {
            bm.set(r, r % 2);
        }
        let rle = bm.to_rle();
        assert!(rle.storage_bytes() > bm.storage_bytes());
        assert_eq!(rle.to_dense(), bm);
    }

    #[test]
    fn grow_rows_preserves_bits() {
        let mut bm = CellBitmap::new(2, 3);
        bm.set(1, 2);
        bm.grow_rows(5);
        assert_eq!(bm.rows(), 5);
        assert!(bm.get(1, 2));
        assert!(!bm.get(4, 2));
        // shrinking is a no-op
        bm.grow_rows(2);
        assert_eq!(bm.rows(), 5);
    }

    #[test]
    fn column_major_rle_compresses_column_stripes() {
        let mut bm = CellBitmap::new(1000, 8);
        for r in 0..1000 {
            bm.set(r, 3); // one full column outdated
        }
        let row_major = bm.to_rle();
        let col_major = bm.to_rle_column_major();
        assert_eq!(col_major.to_dense(), bm);
        assert_eq!(col_major.runs().len(), 3, "stripe = one dirty run");
        assert!(col_major.storage_bytes() * 100 < row_major.storage_bytes());
        for r in [0usize, 500, 999] {
            for c in 0..8 {
                assert_eq!(col_major.get(r, c), bm.get(r, c));
            }
        }
    }

    #[test]
    fn empty_bitmap_rle() {
        let bm = CellBitmap::new(0, 4);
        let rle = bm.to_rle();
        assert!(rle.runs().is_empty());
        assert_eq!(rle.to_dense(), bm);
    }
}
