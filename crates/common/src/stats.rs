//! Logical I/O instrumentation.
//!
//! The paper's access-method claims are *I/O counts* ("up to 30% reduction
//! in I/Os for the insertion operations", §7.2).  We reproduce them with
//! deterministic logical I/O: every index structure in `bdbms-index` and
//! `bdbms-seq` counts node reads and node writes through an
//! [`AccessStats`], with one node standing in for one disk page.  The heap
//! storage layer in `bdbms-storage` counts real page reads/writes through
//! its buffer pool with the same vocabulary.

use std::cell::Cell;

/// Counters for logical reads/writes.  Interior mutability lets read-only
/// operations (`&self` searches) still record their accesses.
#[derive(Debug, Default)]
pub struct AccessStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl AccessStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AccessStats::default()
    }

    /// Record one logical read (node or page).
    #[inline]
    pub fn record_read(&self) {
        self.reads.set(self.reads.get() + 1);
    }

    /// Record one logical write (node or page).
    #[inline]
    pub fn record_write(&self) {
        self.writes.set(self.writes.get() + 1);
    }

    /// Number of logical reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Number of logical writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Reads + writes.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Zero both counters (used between benchmark phases).
    pub fn reset(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }

    /// Snapshot as a plain copyable struct.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
        }
    }
}

/// A point-in-time copy of [`AccessStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Logical reads.
    pub reads: u64,
    /// Logical writes.
    pub writes: u64,
}

impl IoSnapshot {
    /// Reads + writes.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference `self - earlier`, for measuring a phase.
    pub fn since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let s = AccessStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.total(), 3);
        s.reset();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn snapshot_since() {
        let s = AccessStats::new();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_write();
        let delta = s.snapshot().since(before);
        assert_eq!(
            delta,
            IoSnapshot {
                reads: 1,
                writes: 1
            }
        );
        assert_eq!(delta.total(), 2);
    }
}
