//! # bdbms-common
//!
//! Shared foundation types for the bdbms workspace — a reproduction of
//! *"bdbms: A Database Management System for Biological Data"*
//! (Eltabakh, Ouzzani, Aref — CIDR 2007).
//!
//! This crate holds everything the other crates agree on:
//!
//! * [`value::Value`] / [`value::DataType`] — the tuple value model,
//! * [`schema::Schema`] — relation schemas,
//! * [`error::BdbmsError`] — the workspace-wide error type,
//! * [`bitmap::CellBitmap`] / [`bitmap::RleBitmap`] — the outdated-cell
//!   bitmaps of the paper's Figure 10, with the Run-Length-Encoded
//!   compressed form the paper proposes,
//! * [`stats::AccessStats`] — logical I/O instrumentation (one node ≈ one
//!   page) used by every access method so benchmark I/O counts are
//!   deterministic and comparable,
//! * [`metrics::MetricsRegistry`] — thread-safe atomic counters, gauges,
//!   and log-scale latency histograms for live observability
//!   (docs/OBSERVABILITY.md),
//! * [`clock::LogicalClock`] — the timestamp source for annotations,
//!   provenance, and the content-approval log.

pub mod bitmap;
pub mod clock;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod schema;
pub mod stats;
pub mod value;

pub use error::{BdbmsError, ErrorCode, Result, Span};
pub use schema::{ColumnDef, Schema};
pub use value::{DataType, Value};
