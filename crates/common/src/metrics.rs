//! Zero-dependency metrics core: atomic counters, gauges, and
//! fixed-bucket log-scale histograms behind a [`MetricsRegistry`].
//!
//! Design constraints (see docs/OBSERVABILITY.md):
//!
//! * **Lock-free hot path.** `Counter::inc`, `Gauge::set`, and
//!   `Histogram::record` are single relaxed atomic ops (the histogram
//!   adds two for count/sum).  Instrumented components own `Arc`
//!   handles to their instruments; the registry is only a naming and
//!   snapshot layer consulted at registration / snapshot time.
//! * **Shareable across threads.** Built on `std::sync::atomic`, not
//!   `Cell`, because instruments are bumped from the engine thread,
//!   the WAL flusher thread, and arbitrary test threads at once
//!   (unlike [`crate::stats::AccessStats`], which is single-threaded
//!   by design).
//! * **Cheap, consistent-enough `snapshot()`.** A snapshot is a
//!   relaxed read of every atom.  Individual instruments are exact;
//!   cross-instrument skew is bounded by the snapshot walk, which is
//!   fine for monitoring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value (e.g. an EMA exported from a worker loop).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log-scale buckets.  Bucket `i` counts values `v` with
/// `bucket_index(v) == i`, i.e. `v < 2^i` for the first bucket that
/// holds it; upper bounds run 1ns, 2ns, 4ns … ~34s and the last bucket
/// is a catch-all for anything larger.
pub const HISTOGRAM_BUCKETS: usize = 36;

/// Fixed-bucket log₂ histogram.  Values are `u64` in whatever unit the
/// instrument declares (latencies record nanoseconds; size histograms
/// record plain counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn bucket_index(v: u64) -> usize {
    // 0 -> 0, 1 -> 0, 2..3 -> 1, 4..7 -> 2, ... (floor(log2(v))), so
    // bucket i has inclusive upper bound 2^(i+1)-1.
    let ix = (64 - v.leading_zeros() as usize).saturating_sub(1);
    ix.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (saturating for the catch-all).
pub fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a latency in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_bound(i), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`]: only non-empty buckets are
/// kept, as `(inclusive_upper_bound, count)` pairs in ascending bound
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-th quantile
    /// (0.0 ≤ q ≤ 1.0).  Resolution is a factor of two — good enough
    /// to answer "are fsyncs ~100µs or ~10ms".
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= target.max(1) {
                return bound;
            }
        }
        self.buckets.last().map(|&(b, _)| b).unwrap_or(0)
    }
}

/// Names instruments and produces [`MetricsSnapshot`]s.
///
/// Components either ask the registry for a shared instrument by name
/// (`counter("txn.commits")` — get-or-create) or register instruments
/// they already own (`register_counter("buffer.hits", pool_hits)`),
/// which is how storage-layer atoms created before the registry exists
/// get exported.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = list.lock().unwrap();
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), v.clone()));
    v
}

fn register<T>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str, v: Arc<T>) {
    let mut list = list.lock().unwrap();
    if let Some(slot) = list.iter_mut().find(|(n, _)| n == name) {
        slot.1 = v;
    } else {
        list.push((name.to_string(), v));
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Export an instrument the caller already owns under `name`
    /// (replaces any previous registration of that name).
    pub fn register_counter(&self, name: &str, c: Arc<Counter>) {
        register(&self.counters, name, c);
    }
    pub fn register_gauge(&self, name: &str, g: Arc<Gauge>) {
        register(&self.gauges, name, g);
    }
    pub fn register_histogram(&self, name: &str, h: Arc<Histogram>) {
        register(&self.histograms, name, h);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of a whole registry, sorted by name.  This is
/// what crosses the wire for the `Metrics` request and what the REPL
/// renders for `.metrics`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Human-readable dump, one instrument per line, used by the REPL's
    /// `.metrics` and by `bdbms-hammer`'s end-of-run report.
    pub fn render(&self) -> String {
        fn fmt_ns(ns: f64) -> String {
            if ns >= 1e9 {
                format!("{:.2}s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.2}ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.2}us", ns / 1e3)
            } else {
                format!("{ns:.0}ns")
            }
        }
        let mut out = String::new();
        for (n, v) in &self.counters {
            out.push_str(&format!("{n:<32} {v}\n"));
        }
        for (n, v) in &self.gauges {
            out.push_str(&format!("{n:<32} {v}\n"));
        }
        for (n, h) in &self.histograms {
            let unit_ns = n.ends_with("_ns");
            let (mean, p50, p99) = (h.mean(), h.quantile(0.5), h.quantile(0.99));
            if unit_ns {
                out.push_str(&format!(
                    "{n:<32} count={} mean={} p50<={} p99<={}\n",
                    h.count,
                    fmt_ns(mean),
                    fmt_ns(p50 as f64),
                    fmt_ns(p99 as f64),
                ));
            } else {
                out.push_str(&format!(
                    "{n:<32} count={} mean={mean:.2} p50<={p50} p99<={p99}\n",
                    h.count,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.count");
        c.inc();
        c.add(4);
        r.gauge("a.gauge").set(99);
        // get-or-create returns the same instrument
        r.counter("a.count").inc();
        let s = r.snapshot();
        assert_eq!(s.counter("a.count"), Some(6));
        assert_eq!(s.gauge("a.gauge"), Some(99));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(9), 1023);
    }

    #[test]
    fn histogram_snapshot_stats() {
        let h = Histogram::new();
        for v in [100u64, 100, 100, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100_300);
        assert_eq!(s.mean(), 25_075.0);
        // p50 lands in the bucket holding 100 (bound 127)
        assert_eq!(s.quantile(0.5), 127);
        // p100 lands in the bucket holding 100_000 (2^17-1 = 131071)
        assert_eq!(s.quantile(1.0), 131_071);
        assert!(s.buckets.len() == 2);
    }

    #[test]
    fn registered_instruments_are_shared() {
        let r = MetricsRegistry::new();
        let owned = Arc::new(Counter::new());
        owned.add(7);
        r.register_counter("ext.count", owned.clone());
        owned.inc();
        assert_eq!(r.snapshot().counter("ext.count"), Some(8));
        // re-registering replaces
        r.register_counter("ext.count", Arc::new(Counter::new()));
        assert_eq!(r.snapshot().counter("ext.count"), Some(0));
    }

    #[test]
    fn snapshot_is_sorted_and_monotonic() {
        let r = MetricsRegistry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let s1 = r.snapshot();
        assert_eq!(
            s1.counters.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["a", "z"]
        );
        r.counter("z").add(10);
        let s2 = r.snapshot();
        assert!(s2.counter("z") >= s1.counter("z"));
    }
}
