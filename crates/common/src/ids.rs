//! Identifier newtypes shared across the workspace.
//!
//! Using newtypes (rather than bare integers) keeps the many id spaces in
//! bdbms — tables, annotations, dependency rules, pending operations —
//! from being mixed up at compile time.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// The raw integer id.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a user table in the catalog.
    TableId,
    "tbl"
);
id_newtype!(
    /// Identifies one annotation record.
    AnnotationId,
    "ann"
);
id_newtype!(
    /// Identifies a procedural dependency rule (§5).
    RuleId,
    "rule"
);
id_newtype!(
    /// Identifies a logged update operation awaiting content approval (§6).
    OperationId,
    "op"
);

/// A monotonically increasing id allocator.
#[derive(Debug, Default)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Start allocating from zero.
    pub fn new() -> Self {
        IdGen::default()
    }

    /// Allocate the next raw id.
    pub fn alloc(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TableId(3).to_string(), "tbl3");
        assert_eq!(AnnotationId(0).to_string(), "ann0");
        assert_eq!(RuleId(7).to_string(), "rule7");
        assert_eq!(OperationId(9).to_string(), "op9");
    }

    #[test]
    fn idgen_monotonic() {
        let mut g = IdGen::new();
        assert_eq!(g.alloc(), 0);
        assert_eq!(g.alloc(), 1);
        assert_eq!(g.alloc(), 2);
    }
}
