//! Relation schemas.

use crate::error::{BdbmsError, Result};
use crate::value::{DataType, Value};

/// A column definition: name + declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-preserving; lookups are case-insensitive, like SQL).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl ColumnDef {
    /// Construct a column definition.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions, rejecting duplicate names.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(BdbmsError::invalid(format!(
                    "duplicate column `{}`",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(cols: &[(&str, DataType)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect())
            .expect("static schema must not contain duplicates")
    }

    /// The column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive lookup of a column index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Lookup that errors with the column name when missing.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| BdbmsError::not_found(format!("column `{name}`")))
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validate and coerce a row against this schema.
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.arity() {
            return Err(BdbmsError::invalid(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.arity()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| v.coerce_to(c.ty))
            .collect()
    }

    /// Project this schema onto a subset of column indexes.
    pub fn project(&self, idxs: &[usize]) -> Schema {
        Schema {
            columns: idxs.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gene_schema() -> Schema {
        Schema::of(&[
            ("GID", DataType::Text),
            ("GName", DataType::Text),
            ("GSequence", DataType::Text),
        ])
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("A", DataType::Text),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = gene_schema();
        assert_eq!(s.index_of("gid"), Some(0));
        assert_eq!(s.index_of("GSEQUENCE"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("nope").is_err());
    }

    #[test]
    fn check_row_coerces_and_validates() {
        let s = Schema::of(&[("a", DataType::Float), ("b", DataType::Text)]);
        let row = s
            .check_row(vec![Value::Int(2), Value::Text("x".into())])
            .unwrap();
        assert_eq!(row[0], Value::Float(2.0));
        assert!(s.check_row(vec![Value::Int(2)]).is_err());
        assert!(s
            .check_row(vec![Value::Text("no".into()), Value::Text("x".into())])
            .is_err());
    }

    #[test]
    fn project_subset() {
        let s = gene_schema();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["GSequence", "GID"]);
    }
}
