//! The workspace-wide error type.
//!
//! Every fallible public operation in the bdbms crates returns
//! [`Result<T>`](Result), so callers handle one error type across the
//! storage engine, the access methods, and the query engine.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, BdbmsError>;

/// All error conditions surfaced by bdbms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdbmsError {
    /// A SQL / A-SQL statement failed to lex or parse.
    Parse(String),
    /// A statement referenced a table, column, annotation table, user,
    /// procedure, or rule that does not exist.
    NotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// The statement is well-formed but violates a semantic rule
    /// (type mismatch, arity mismatch, invalid granularity, ...).
    Invalid(String),
    /// The current user lacks the privilege for the attempted operation
    /// (identity-based GRANT/REVOKE check — §6 of the paper).
    Unauthorized(String),
    /// A content-based approval constraint rejected the operation
    /// (content-based authorization — §6 of the paper).
    ApprovalViolation(String),
    /// A dependency-rule operation failed (cycle detected, conflicting
    /// rules, unknown procedure — §5 of the paper).
    Dependency(String),
    /// The storage layer failed (page overflow, bad record id, I/O error).
    Storage(String),
    /// An expression failed to evaluate at runtime.
    Eval(String),
    /// Underlying filesystem error, stringified to keep the type `Clone`.
    Io(String),
}

impl BdbmsError {
    /// Short machine-readable category, handy in tests and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            BdbmsError::Parse(_) => "parse",
            BdbmsError::NotFound(_) => "not_found",
            BdbmsError::AlreadyExists(_) => "already_exists",
            BdbmsError::Invalid(_) => "invalid",
            BdbmsError::Unauthorized(_) => "unauthorized",
            BdbmsError::ApprovalViolation(_) => "approval",
            BdbmsError::Dependency(_) => "dependency",
            BdbmsError::Storage(_) => "storage",
            BdbmsError::Eval(_) => "eval",
            BdbmsError::Io(_) => "io",
        }
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            BdbmsError::Parse(m)
            | BdbmsError::NotFound(m)
            | BdbmsError::AlreadyExists(m)
            | BdbmsError::Invalid(m)
            | BdbmsError::Unauthorized(m)
            | BdbmsError::ApprovalViolation(m)
            | BdbmsError::Dependency(m)
            | BdbmsError::Storage(m)
            | BdbmsError::Eval(m)
            | BdbmsError::Io(m) => m,
        }
    }
}

impl fmt::Display for BdbmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for BdbmsError {}

impl From<std::io::Error> for BdbmsError {
    fn from(e: std::io::Error) -> Self {
        BdbmsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = BdbmsError::NotFound("table Gene".into());
        assert_eq!(e.to_string(), "not_found: table Gene");
        assert_eq!(e.kind(), "not_found");
        assert_eq!(e.message(), "table Gene");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk on fire");
        let e: BdbmsError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.message().contains("disk on fire"));
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            BdbmsError::Parse(String::new()),
            BdbmsError::NotFound(String::new()),
            BdbmsError::AlreadyExists(String::new()),
            BdbmsError::Invalid(String::new()),
            BdbmsError::Unauthorized(String::new()),
            BdbmsError::ApprovalViolation(String::new()),
            BdbmsError::Dependency(String::new()),
            BdbmsError::Storage(String::new()),
            BdbmsError::Eval(String::new()),
            BdbmsError::Io(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
