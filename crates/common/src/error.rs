//! The workspace-wide structured error type.
//!
//! Every fallible public operation in the bdbms crates returns
//! [`Result<T>`](Result), so callers handle one error type across the
//! storage engine, the access methods, and the query engine.
//!
//! A [`BdbmsError`] is a *structured* error: a machine-readable
//! [`ErrorCode`] (so clients can branch on syntax vs. authorization vs.
//! constraint failures programmatically), a human-readable message, and —
//! for errors raised while lexing or parsing a statement — an optional
//! [`Span`] pointing at the offending bytes of the SQL text.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, BdbmsError>;

/// Byte range into the source SQL text of a statement-level error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the offending region.
    pub start: usize,
    /// One past the last byte of the offending region.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Machine-readable category of every error bdbms surfaces.  Clients
/// branch on this (retry? reauthenticate? fix the statement?) instead of
/// string-matching messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// A SQL / A-SQL statement failed to lex or parse.  Carries a
    /// [`Span`] into the statement text whenever one is known.
    Syntax,
    /// A statement referenced a table, column, annotation table, user,
    /// procedure, or rule that does not exist.
    NotFound,
    /// An object with the same name already exists.
    AlreadyExists,
    /// A value's type does not match the column or operation it is used
    /// with (INSERT of TEXT into an INT column, and the like).
    TypeMismatch,
    /// The statement is well-formed but violates a semantic rule
    /// (arity mismatch, invalid granularity, ...).
    Invalid,
    /// The current user lacks the privilege for the attempted operation
    /// (identity-based GRANT/REVOKE check — §6 of the paper).
    Unauthorized,
    /// A content-based approval constraint rejected the operation
    /// (content-based authorization — §6 of the paper).
    Approval,
    /// A dependency-rule operation failed (cycle detected, conflicting
    /// rules, unknown procedure — §5 of the paper).
    Dependency,
    /// The storage layer failed (page overflow, bad record id, I/O error).
    Storage,
    /// Persisted state failed validation: a bad magic number, a checksum
    /// mismatch on a header page or WAL frame outside the torn tail, or a
    /// snapshot that does not decode.  Unlike [`ErrorCode::Storage`] this
    /// means the *bytes on disk* are wrong, not that an operation was
    /// invalid.
    Corrupt,
    /// An expression failed to evaluate at runtime.
    Eval,
    /// Underlying filesystem error, stringified to keep the type `Clone`.
    Io,
    /// A prepared statement was bound with the wrong number of
    /// parameters, or executed with a parameter slot left unbound.
    ParamMismatch,
    /// A transaction-control statement was issued in the wrong state:
    /// `BEGIN` inside an open transaction, `COMMIT`/`ROLLBACK` outside
    /// one, a savepoint command naming an unknown savepoint, or a
    /// non-transactional statement inside an explicit transaction.
    TxnState,
}

impl ErrorCode {
    /// Short machine-readable slug, handy in tests and logs.  Codes that
    /// predate the structured redesign keep their historical slugs.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Syntax => "parse",
            ErrorCode::NotFound => "not_found",
            ErrorCode::AlreadyExists => "already_exists",
            ErrorCode::TypeMismatch => "type_mismatch",
            ErrorCode::Invalid => "invalid",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::Approval => "approval",
            ErrorCode::Dependency => "dependency",
            ErrorCode::Storage => "storage",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::Eval => "eval",
            ErrorCode::Io => "io",
            ErrorCode::ParamMismatch => "param_mismatch",
            ErrorCode::TxnState => "txn_state",
        }
    }

    /// Every code, for exhaustive tests.
    pub const ALL: [ErrorCode; 14] = [
        ErrorCode::Syntax,
        ErrorCode::NotFound,
        ErrorCode::AlreadyExists,
        ErrorCode::TypeMismatch,
        ErrorCode::Invalid,
        ErrorCode::Unauthorized,
        ErrorCode::Approval,
        ErrorCode::Dependency,
        ErrorCode::Storage,
        ErrorCode::Corrupt,
        ErrorCode::Eval,
        ErrorCode::Io,
        ErrorCode::ParamMismatch,
        ErrorCode::TxnState,
    ];
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// All error conditions surfaced by bdbms: a code, a message, and (for
/// statement-text errors) an optional span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BdbmsError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// Byte range into the offending SQL text, when known.
    pub span: Option<Span>,
}

impl BdbmsError {
    /// Construct an error with an explicit code.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        BdbmsError {
            code,
            message: message.into(),
            span: None,
        }
    }

    /// Attach a source span (builder style).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// The machine-readable category.
    pub fn code(&self) -> ErrorCode {
        self.code
    }

    /// Short machine-readable category slug, handy in tests and logs.
    pub fn kind(&self) -> &'static str {
        self.code.as_str()
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        &self.message
    }

    // ---- constructors, one per code ----

    /// [`ErrorCode::Syntax`] without a span (lex/parse failures where no
    /// position is known).
    pub fn syntax(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Syntax, m)
    }

    /// [`ErrorCode::Syntax`] pointing at `start..end` of the SQL text.
    pub fn syntax_at(m: impl Into<String>, start: usize, end: usize) -> Self {
        Self::new(ErrorCode::Syntax, m).with_span(Span::new(start, end))
    }

    /// [`ErrorCode::NotFound`].
    pub fn not_found(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::NotFound, m)
    }

    /// [`ErrorCode::AlreadyExists`].
    pub fn already_exists(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::AlreadyExists, m)
    }

    /// [`ErrorCode::TypeMismatch`].
    pub fn type_mismatch(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::TypeMismatch, m)
    }

    /// [`ErrorCode::Invalid`].
    pub fn invalid(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Invalid, m)
    }

    /// [`ErrorCode::Unauthorized`].
    pub fn unauthorized(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Unauthorized, m)
    }

    /// [`ErrorCode::Approval`].
    pub fn approval(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Approval, m)
    }

    /// [`ErrorCode::Dependency`].
    pub fn dependency(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Dependency, m)
    }

    /// [`ErrorCode::Storage`].
    pub fn storage(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Storage, m)
    }

    /// [`ErrorCode::Corrupt`].
    pub fn corrupt(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Corrupt, m)
    }

    /// [`ErrorCode::Eval`].
    pub fn eval(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Eval, m)
    }

    /// [`ErrorCode::Io`].
    pub fn io(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::Io, m)
    }

    /// [`ErrorCode::ParamMismatch`].
    pub fn param_mismatch(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::ParamMismatch, m)
    }

    /// [`ErrorCode::TxnState`].
    pub fn txn_state(m: impl Into<String>) -> Self {
        Self::new(ErrorCode::TxnState, m)
    }
}

impl fmt::Display for BdbmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

impl std::error::Error for BdbmsError {}

impl From<std::io::Error> for BdbmsError {
    fn from(e: std::io::Error) -> Self {
        BdbmsError::io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = BdbmsError::not_found("table Gene");
        assert_eq!(e.to_string(), "not_found: table Gene");
        assert_eq!(e.kind(), "not_found");
        assert_eq!(e.code(), ErrorCode::NotFound);
        assert_eq!(e.message(), "table Gene");
        assert_eq!(e.span, None);
    }

    #[test]
    fn spans_render_and_compare() {
        let e = BdbmsError::syntax_at("unexpected `?`", 7, 8);
        assert_eq!(e.code(), ErrorCode::Syntax);
        assert_eq!(e.span, Some(Span::new(7, 8)));
        assert_eq!(e.to_string(), "parse: unexpected `?` (at 7..8)");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk on fire");
        let e: BdbmsError = io.into();
        assert_eq!(e.code(), ErrorCode::Io);
        assert!(e.message().contains("disk on fire"));
    }

    #[test]
    fn kinds_are_distinct() {
        let mut kinds: Vec<_> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), ErrorCode::ALL.len());
    }
}
