//! Property-based tests for bdbms-common invariants.

use bdbms_common::bitmap::CellBitmap;
use bdbms_common::value::Value;
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::Timestamp),
    ]
}

proptest! {
    /// encode → decode is the identity for every value.
    #[test]
    fn value_encoding_roundtrips(vals in prop::collection::vec(arb_value(), 0..20)) {
        let mut buf = Vec::new();
        for v in &vals {
            v.encode(&mut buf);
        }
        let mut pos = 0;
        for v in &vals {
            let d = Value::decode(&buf, &mut pos).unwrap();
            prop_assert_eq!(&d, v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// The total order on values is transitive and antisymmetric
    /// (checked by sorting and verifying sortedness is stable).
    #[test]
    fn value_order_is_total(mut vals in prop::collection::vec(arb_value(), 0..30)) {
        vals.sort();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // sorting twice yields the same order
        let again = {
            let mut v = vals.clone();
            v.sort();
            v
        };
        prop_assert_eq!(vals, again);
    }

    /// Dense → RLE → dense is the identity for arbitrary bitmaps.
    #[test]
    fn bitmap_rle_roundtrips(
        rows in 0usize..40,
        cols in 1usize..10,
        cells in prop::collection::vec((0usize..40, 0usize..10), 0..100),
    ) {
        let mut bm = CellBitmap::new(rows, cols);
        for (r, c) in cells {
            if r < rows && c < cols {
                bm.set(r, c);
            }
        }
        let rle = bm.to_rle();
        prop_assert_eq!(rle.to_dense(), bm.clone());
        // point queries agree with the dense bitmap
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(rle.get(r, c), bm.get(r, c));
            }
        }
        // run lengths always sum to the full bit count
        let total: u64 = rle.runs().iter().map(|r| r.len as u64).sum();
        prop_assert_eq!(total, (rows * cols) as u64);
    }

    /// sql_cmp is symmetric: a ? b implies b ?̄ a.
    #[test]
    fn sql_cmp_symmetry(a in arb_value(), b in arb_value()) {
        match (a.sql_cmp(&b), b.sql_cmp(&a)) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert_eq!(x, y.reverse()),
            (x, y) => prop_assert!(false, "asymmetric: {:?} vs {:?}", x, y),
        }
    }
}
