//! Criterion wall-time benches for the annotation manager and A-SQL
//! operators (experiments E03, E05, E07).

use bdbms_bench::workloads::synthetic_gene_db;
use bdbms_core::annotation::AnnotationSet;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// E05: attaching a column-granularity annotation under both schemes.
fn bench_attach(c: &mut Criterion) {
    let rows: Vec<u64> = (0..2000).collect();
    let mut g = c.benchmark_group("annotation_attach_column");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("cell_scheme", |b| {
        b.iter_batched(
            || AnnotationSet::new("a", true),
            |mut set| {
                set.add("col ann", "u", 1, black_box(&rows), &[2]);
                set
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("rect_scheme", |b| {
        b.iter_batched(
            || AnnotationSet::new("a", false),
            |mut set| {
                set.add("col ann", "u", 1, black_box(&rows), &[2]);
                set
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E05: cell lookups under both schemes.
fn bench_lookup(c: &mut Criterion) {
    let rows: Vec<u64> = (0..2000).collect();
    let mut cell = AnnotationSet::new("a", true);
    let mut rect = AnnotationSet::new("a", false);
    for set in [&mut cell, &mut rect] {
        for col in 0..4 {
            set.add("col ann", "u", 1, &rows, &[col]);
        }
        for r in (0..2000).step_by(10) {
            set.add("row ann", "u", 1, &[r], &[0, 1, 2, 3]);
        }
    }
    let mut g = c.benchmark_group("annotation_cell_lookup");
    g.sample_size(30);
    g.bench_function("cell_scheme", |b| {
        b.iter(|| {
            let mut n = 0;
            for r in (0..2000u64).step_by(37) {
                n += cell.for_cell(black_box(r), 2).len();
            }
            n
        })
    });
    g.bench_function("rect_scheme_rtree", |b| {
        b.iter(|| {
            let mut n = 0;
            for r in (0..2000u64).step_by(37) {
                n += rect.for_cell(black_box(r), 2).len();
            }
            n
        })
    });
    g.bench_function("rect_scheme_scan", |b| {
        let rs = rect.rect_scheme().unwrap();
        b.iter(|| {
            let mut n = 0;
            for r in (0..2000u64).step_by(37) {
                n += rs.for_cell_scan(black_box(r), 2).len();
            }
            n
        })
    });
    g.finish();
}

/// E07: the Figure 7 SELECT variants.
fn bench_asql_select(c: &mut Criterion) {
    let mut db = synthetic_gene_db(1000, 40);
    let mut g = c.benchmark_group("asql_select_1000rows");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (name, q) in [
        ("plain", "SELECT * FROM DB1_Gene"),
        (
            "annotation",
            "SELECT * FROM DB1_Gene ANNOTATION(GAnnotation)",
        ),
        (
            "awhere",
            "SELECT * FROM DB1_Gene ANNOTATION(GAnnotation) AWHERE CONTAINS 'curator'",
        ),
        (
            "filter",
            "SELECT * FROM DB1_Gene ANNOTATION(GAnnotation) FILTER CONTAINS 'Source'",
        ),
        (
            "intersect_annotated",
            "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) \
             INTERSECT \
             SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)",
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| db.execute(black_box(q)).unwrap().rows.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_attach, bench_lookup, bench_asql_select);
criterion_main!(benches);
