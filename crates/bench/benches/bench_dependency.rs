//! Criterion benches for dependency tracking (E01/E09) and the outdated
//! bitmaps (E10).

use bdbms_bench::workloads::pipeline_db;
use bdbms_common::bitmap::CellBitmap;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// E01: one gene update cascading through rules r1 (recompute) and r2
/// (mark outdated).
fn bench_cascade(c: &mut Criterion) {
    let mut g = c.benchmark_group("dependency_cascade");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for n in [200usize, 500] {
        g.bench_function(format!("update_1_gene_of_{n}"), |b| {
            b.iter_batched(
                || pipeline_db(n, 60),
                |mut db| {
                    db.execute("UPDATE Gene SET GSequence = 'GTGGTGGTG' WHERE GID = 'JW0000'")
                        .unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// E09: closure computation over the rule graph.
fn bench_closure(c: &mut Criterion) {
    let db = pipeline_db(10, 30);
    c.bench_function("closure_of_attribute", |b| {
        b.iter(|| {
            db.dependencies()
                .closure_of_attribute(black_box("Gene"), black_box("GSequence"))
        })
    });
}

/// E10: RLE compression of a realistic (clustered) outdated bitmap.
fn bench_bitmap_rle(c: &mut Criterion) {
    let mut bm = CellBitmap::new(20000, 8);
    for r in 5000..7000 {
        for col in 0..8 {
            bm.set(r, col);
        }
    }
    let mut g = c.benchmark_group("bitmap_rle");
    g.bench_function("compress_row_major", |b| b.iter(|| black_box(&bm).to_rle()));
    g.bench_function("compress_column_major", |b| {
        b.iter(|| black_box(&bm).to_rle_column_major())
    });
    let rle = bm.to_rle();
    g.bench_function("point_query_rle", |b| {
        b.iter(|| rle.get(black_box(6000), black_box(3)))
    });
    g.bench_function("point_query_dense", |b| {
        b.iter(|| bm.get(black_box(6000), black_box(3)))
    });
    g.finish();
}

criterion_group!(benches, bench_cascade, bench_closure, bench_bitmap_rle);
criterion_main!(benches);
