//! Executor micro-benchmark: naive full-scan executor vs. the streaming
//! pushdown/index executor on a 100k-row Gene table with selective
//! predicates (point = 0.001%, range = 1%).
//!
//! The same comparison (with wall-time numbers and a JSON rendering) is
//! available as experiment `e13` in the reproduce harness:
//! `cargo run -p bdbms-bench --release --bin reproduce -- e13 --json`.

use bdbms_bench::workloads::indexed_gene_db;
use bdbms_core::executor::ExecOptions;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let n = 100_000;
    let db = indexed_gene_db(n);
    let point = format!("SELECT GID FROM Gene WHERE Len = {}", n / 2);
    let range = format!(
        "SELECT GID FROM Gene WHERE Len >= {} AND Len < {}",
        n / 2,
        n / 2 + n / 100
    );
    let annotated = format!(
        "SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = {}",
        n / 2
    );
    let mut g = c.benchmark_group("executor_100k");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (label, sql) in [
        ("point", &point),
        ("range_1pct", &range),
        ("point_annotated", &annotated),
    ] {
        g.bench_function(format!("naive/{label}"), |b| {
            b.iter(|| {
                db.query_traced(black_box(sql), &ExecOptions::naive())
                    .unwrap()
            })
        });
        g.bench_function(format!("optimized/{label}"), |b| {
            b.iter(|| {
                db.query_traced(black_box(sql), &ExecOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
