//! Criterion benches for content-based approval (E11): the logging
//! overhead per update and the cost of a disapproval (inverse execution).

use bdbms_bench::workloads::pipeline_db;
use bdbms_core::Database;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn db_with_approval(n: usize, on: bool) -> Database {
    let mut db = pipeline_db(n, 30);
    db.execute("CREATE USER labadmin").unwrap();
    db.execute("CREATE USER alice").unwrap();
    db.execute("GRANT SELECT, UPDATE ON Gene TO alice").unwrap();
    if on {
        db.execute("START CONTENT APPROVAL ON Gene APPROVED BY labadmin")
            .unwrap();
    }
    db
}

fn bench_update_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("approval_update_overhead");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    for on in [false, true] {
        g.bench_function(if on { "approval_on" } else { "approval_off" }, |b| {
            b.iter_batched(
                || db_with_approval(200, on),
                |mut db| {
                    db.execute_as(
                        "UPDATE Gene SET GSequence = 'CCCGGGAAA' WHERE GID = 'JW0007'",
                        "alice",
                    )
                    .unwrap();
                    db
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_disapprove(c: &mut Criterion) {
    let mut g = c.benchmark_group("approval_disapprove");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("disapprove_one_update", |b| {
        b.iter_batched(
            || {
                let mut db = db_with_approval(200, true);
                db.execute_as(
                    "UPDATE Gene SET GSequence = 'CCCGGGAAA' WHERE GID = 'JW0007'",
                    "alice",
                )
                .unwrap();
                let id = db.approval().pending(None)[0].id.raw();
                (db, id)
            },
            |(mut db, id)| {
                db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
                    .unwrap();
                db
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_update_overhead, bench_disapprove);
criterion_main!(benches);
