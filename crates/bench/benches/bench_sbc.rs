//! Criterion benches for the SBC-tree vs String B-tree comparison (E12):
//! insertion and the three search operations on both structures.

use bdbms_bench::workloads::{pattern_from, ss_corpus};
use bdbms_seq::{SbcTree, StringBTree};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn build_both(corpus: &[Vec<u8>]) -> (StringBTree, SbcTree) {
    let mut sbt = StringBTree::new();
    let mut sbc = SbcTree::new();
    for t in corpus {
        sbt.insert_text(t);
        sbc.insert_sequence(t);
    }
    (sbt, sbc)
}

fn bench_insert(c: &mut Criterion) {
    let corpus = ss_corpus(40, 300, 12.0);
    let mut g = c.benchmark_group("sbc_insert_40x300");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("string_btree", |b| {
        b.iter_batched(
            StringBTree::new,
            |mut t| {
                for s in &corpus {
                    t.insert_text(black_box(s));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("sbc_tree", |b| {
        b.iter_batched(
            SbcTree::new,
            |mut t| {
                for s in &corpus {
                    t.insert_sequence(black_box(s));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let corpus = ss_corpus(120, 300, 12.0);
    let (sbt, sbc) = build_both(&corpus);
    let pat = pattern_from(&corpus, 12, 7);
    let mut g = c.benchmark_group("sbc_substring_search");
    g.sample_size(30);
    g.bench_function("string_btree", |b| {
        b.iter(|| sbt.substring_search(black_box(&pat)).len())
    });
    g.bench_function("sbc_three_sided", |b| {
        b.iter(|| sbc.substring_search(black_box(&pat)).len())
    });
    g.bench_function("sbc_scan_ablation", |b| {
        b.iter(|| sbc.substring_search_scan(black_box(&pat)).len())
    });
    g.finish();

    let prefix = corpus[3][..8].to_vec();
    let mut g = c.benchmark_group("sbc_prefix_and_range");
    g.sample_size(30);
    g.bench_function("prefix_string_btree", |b| {
        b.iter(|| sbt.prefix_search(black_box(&prefix)).len())
    });
    g.bench_function("prefix_sbc", |b| {
        b.iter(|| sbc.prefix_search(black_box(&prefix)).len())
    });
    g.bench_function("range_string_btree", |b| {
        b.iter(|| sbt.range_search(black_box(b"EE"), black_box(b"HL")).len())
    });
    g.bench_function("range_sbc", |b| {
        b.iter(|| sbc.range_search(black_box(b"EE"), black_box(b"HL")).len())
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_search);
criterion_main!(benches);
