//! Criterion benches for the SP-GiST instantiations vs B+-tree / R-tree
//! (E-SPGIST): exact / prefix / regex on strings, window / kNN on points.

use bdbms_index::bptree::{prefix_range, BPlusTree};
use bdbms_index::kdtree::{KdTreeOps, PointQuery};
use bdbms_index::quadtree::QuadtreeOps;
use bdbms_index::regex::Regex;
use bdbms_index::trie::{StrQuery, TrieOps};
use bdbms_index::{RTree, Rect, SpGist};
use bdbms_seq::gen;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn string_keys(n: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                gen::gene_id(i).into_bytes()
            } else {
                gen::dna(&mut rng, 8 + i % 6)
            }
        })
        .collect()
}

fn bench_strings(c: &mut Criterion) {
    let keys = string_keys(20000);
    let mut trie: SpGist<TrieOps, u32> = SpGist::new(TrieOps);
    let mut bpt: BPlusTree<Vec<u8>, u32> = BPlusTree::new();
    for (i, k) in keys.iter().enumerate() {
        trie.insert(k.clone(), i as u32);
        bpt.insert(k.clone(), i as u32);
    }
    let probe = keys[777].clone();
    let mut g = c.benchmark_group("spgist_strings_20k");
    g.bench_function("trie_exact", |b| {
        b.iter(|| {
            trie.search(&StrQuery::Exact(black_box(probe.clone())))
                .len()
        })
    });
    g.bench_function("bptree_exact", |b| {
        b.iter(|| bpt.get(black_box(&probe)).len())
    });
    g.bench_function("trie_prefix", |b| {
        b.iter(|| trie.search(&StrQuery::Prefix(b"JW00".to_vec())).len())
    });
    g.bench_function("bptree_prefix", |b| {
        b.iter(|| prefix_range(&bpt, black_box(b"JW00")).len())
    });
    g.bench_function("trie_regex", |b| {
        b.iter(|| {
            let re = Regex::compile("JW0[0-1][0-9][02468]").unwrap();
            trie.search(&StrQuery::Regex(re)).len()
        })
    });
    g.bench_function("bptree_regex_fullscan", |b| {
        b.iter(|| {
            let re = Regex::compile("JW0[0-1][0-9][02468]").unwrap();
            bpt.iter_all()
                .iter()
                .filter(|(k, _)| re.is_match(k))
                .count()
        })
    });
    g.finish();
}

fn bench_points(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let pts: Vec<[f64; 2]> = (0..20000)
        .map(|_| [rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)])
        .collect();
    let mut kd: SpGist<KdTreeOps, u32> = SpGist::new(KdTreeOps);
    let mut qt: SpGist<QuadtreeOps, u32> = SpGist::new(QuadtreeOps);
    let mut rt = RTree::new();
    for (i, p) in pts.iter().enumerate() {
        kd.insert(*p, i as u32);
        qt.insert(*p, i as u32);
        rt.insert(Rect::point(p[0], p[1]), i as u64);
    }
    let mut g = c.benchmark_group("spgist_points_20k");
    let (lo, hi) = ([400.0, 400.0], [425.0, 425.0]);
    g.bench_function("kdtree_window", |b| {
        b.iter(|| {
            kd.search(&PointQuery::Window(black_box(lo), black_box(hi)))
                .len()
        })
    });
    g.bench_function("quadtree_window", |b| {
        b.iter(|| {
            qt.search(&PointQuery::Window(black_box(lo), black_box(hi)))
                .len()
        })
    });
    g.bench_function("rtree_window", |b| {
        b.iter(|| rt.search(&Rect::new(black_box(lo), black_box(hi))).len())
    });
    g.bench_function("kdtree_knn10", |b| {
        b.iter(|| kd.knn(black_box(&[500.0, 500.0]), 10).len())
    });
    g.bench_function("quadtree_knn10", |b| {
        b.iter(|| qt.knn(black_box(&[500.0, 500.0]), 10).len())
    });
    g.bench_function("rtree_knn10", |b| {
        b.iter(|| rt.knn(black_box([500.0, 500.0]), 10).len())
    });
    g.finish();
}

criterion_group!(benches, bench_strings, bench_points);
criterion_main!(benches);
