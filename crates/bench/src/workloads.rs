//! Shared workload builders used by the experiments and criterion benches.

use bdbms_common::Value;
use bdbms_core::Database;
use bdbms_seq::gen;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for every experiment.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(20070107) // CIDR 2007 :)
}

/// Build the paper's Figure 2 database (both gene tables, all eight
/// annotations at their paper granularities).
pub fn figure2_db() -> Database {
    let mut db = Database::new_in_memory();
    for t in ["DB1_Gene", "DB2_Gene"] {
        db.execute(&format!(
            "CREATE TABLE {t} (GID TEXT, GName TEXT, GSequence TEXT)"
        ))
        .unwrap();
        db.execute(&format!("CREATE ANNOTATION TABLE GAnnotation ON {t}"))
            .unwrap();
    }
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAA"),
        ("JW0082", "ftsI", "ATGAAAGCAGC"),
        ("JW0055", "yabP", "ATGAAAGTATC"),
        ("JW0078", "fruR", "GTGAAACTGGA"),
    ] {
        db.execute(&format!(
            "INSERT INTO DB1_Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }
    for (gid, name, seq) in [
        ("JW0080", "mraW", "ATGATGGAAAA"),
        ("JW0041", "fixB", "ATGAACACGTT"),
        ("JW0037", "caiB", "ATGGATCATCT"),
        ("JW0027", "ispH", "ATGCAGATCCT"),
        ("JW0055", "yabP", "ATGAAAGTATC"),
    ] {
        db.execute(&format!(
            "INSERT INTO DB2_Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
    }
    let adds = [
        // A1 over tuples JW0080/JW0082 of DB1
        "ADD ANNOTATION TO DB1_Gene.GAnnotation VALUE 'A1: These genes are published in Nature' \
         ON (SELECT G.* FROM DB1_Gene G WHERE GID IN ('JW0080', 'JW0082'))",
        // A2 over tuples JW0055/JW0078 of DB1
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE '<Annotation>A2: These genes were obtained from RegulonDB</Annotation>' \
         ON (SELECT G.* FROM DB1_Gene G WHERE GID IN ('JW0055', 'JW0078'))",
        // A3 on the single GSequence cell of mraW
        "ADD ANNOTATION TO DB1_Gene.GAnnotation \
         VALUE 'A3: Involved in methyltransferase activity' \
         ON (SELECT G.GSequence FROM DB1_Gene G WHERE GID = 'JW0080')",
        // B1 on GID+GName of three DB2 tuples
        "ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE 'B1: Curated by user admin' \
         ON (SELECT G.GID, G.GName FROM DB2_Gene G \
             WHERE GID IN ('JW0080', 'JW0037', 'JW0041'))",
        // B2 on GName of two tuples
        "ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE 'B2: possibly split by frameshift' \
         ON (SELECT G.GName FROM DB2_Gene G WHERE GID IN ('JW0027', 'JW0055'))",
        // B3 over the entire GSequence column
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B3: obtained from GenoBase</Annotation>' \
         ON (SELECT G.GSequence FROM DB2_Gene G)",
        // B4 over the caiB tuple
        "ADD ANNOTATION TO DB2_Gene.GAnnotation VALUE 'B4: pseudogene' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0037')",
        // B5 over the mraW tuple
        "ADD ANNOTATION TO DB2_Gene.GAnnotation \
         VALUE '<Annotation>B5: This gene has an unknown function</Annotation>' \
         ON (SELECT G.* FROM DB2_Gene G WHERE GID = 'JW0080')",
    ];
    for stmt in adds {
        db.execute(stmt).unwrap();
    }
    db
}

/// Deterministic attributes for gene `i`: overlapping GIDs carry
/// identical names/sequences in both tables, so set operations find the
/// common tuples (as in the paper's example).
pub fn gene_attrs(i: usize, seq_len: usize) -> (String, String, String) {
    let mut r = StdRng::seed_from_u64(0xB10_0000 + i as u64);
    (
        gen::gene_id(i),
        gen::gene_name(&mut r, i),
        String::from_utf8(gen::dna(&mut r, seq_len)).unwrap(),
    )
}

/// Two synthetic gene tables with `n` rows each and ~50% GID overlap,
/// each with a populated `GAnnotation` annotation table (row/column/cell
/// granularities mixed).  Returns the database.
pub fn synthetic_gene_db(n: usize, seq_len: usize) -> Database {
    let mut db = Database::new_in_memory();
    for (t, offset) in [("DB1_Gene", 0usize), ("DB2_Gene", n / 2)] {
        db.execute(&format!(
            "CREATE TABLE {t} (GID TEXT, GName TEXT, GSequence TEXT)"
        ))
        .unwrap();
        db.execute(&format!("CREATE ANNOTATION TABLE GAnnotation ON {t}"))
            .unwrap();
        for i in 0..n {
            let (gid, name, seq) = gene_attrs(offset + i, seq_len);
            db.execute(&format!(
                "INSERT INTO {t} VALUES ('{gid}', '{name}', '{seq}')"
            ))
            .unwrap();
        }
        // column annotation (provenance-ish)
        db.execute(&format!(
            "ADD ANNOTATION TO {t}.GAnnotation \
             VALUE '<Annotation>obtained from Source_{t}</Annotation>' \
             ON (SELECT G.GSequence FROM {t} G)"
        ))
        .unwrap();
        // row annotations on ~10% of the tuples
        for i in (0..n).step_by(10) {
            let gid = gen::gene_id(offset + i);
            db.execute(&format!(
                "ADD ANNOTATION TO {t}.GAnnotation VALUE 'curator note {i}' \
                 ON (SELECT G.* FROM {t} G WHERE GID = '{gid}')"
            ))
            .unwrap();
        }
    }
    db
}

/// The Figure 9 dependency pipeline with `n` genes (and one protein per
/// gene), the executable prediction tool registered, and rules r1/r2.
pub fn pipeline_db(n: usize, seq_len: usize) -> Database {
    let mut rng = rng();
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, GSequence TEXT)")
        .unwrap();
    db.execute("CREATE TABLE Protein (PName TEXT, GID TEXT, PSequence TEXT, PFunction TEXT)")
        .unwrap();
    db.register_procedure("P", |args| match &args[0] {
        Value::Text(dna) => Value::Text(dna.as_bytes().chunks(3).map(|c| c[0] as char).collect()),
        _ => Value::Null,
    });
    db.execute(
        "CREATE DEPENDENCY RULE r1 FROM Gene.GSequence TO Protein.PSequence \
         VIA PROCEDURE 'P' EXECUTABLE LINK Gene.GID = Protein.GID",
    )
    .unwrap();
    db.execute(
        "CREATE DEPENDENCY RULE r2 FROM Protein.PSequence TO Protein.PFunction \
         VIA PROCEDURE 'lab-experiment'",
    )
    .unwrap();
    for i in 0..n {
        let gid = gen::gene_id(i);
        let name = gen::gene_name(&mut rng, i);
        let seq = String::from_utf8(gen::dna(&mut rng, seq_len)).unwrap();
        let pseq: String = seq.as_bytes().chunks(3).map(|c| c[0] as char).collect();
        db.execute(&format!(
            "INSERT INTO Gene VALUES ('{gid}', '{name}', '{seq}')"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO Protein VALUES ('{name}', '{gid}', '{pseq}', 'function {i}')"
        ))
        .unwrap();
    }
    db
}

/// The executor-bench fixture:
///
/// * a `Gene` table with `n` rows whose `Len` column holds the row
///   number (so `Len = k` selects exactly one row and `Len >= a AND
///   Len < a + n/100` selects 1%) and whose `Bucket` column holds
///   `row % 100` (so `Bucket = b` selects 1% — a *less* selective
///   equality than a narrow `Len` range, which is what the cost-based
///   multi-index choice workload exploits);
/// * secondary indexes on **both** `Len` and `Bucket`;
/// * a column-granularity `Curation` annotation over `GName`;
/// * a small `Tag` dimension table (`n / 100` rows, `Len` values spaced
///   100 apart) for join-order workloads — written first in FROM lists
///   so FROM-order execution hash-builds the big table while the
///   cost-based order streams it.
pub fn indexed_gene_db(n: usize) -> Database {
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Gene (GID TEXT, GName TEXT, Len INT, Bucket INT)")
        .unwrap();
    db.execute("CREATE ANNOTATION TABLE Curation ON Gene")
        .unwrap();
    // batched inserts: one statement per 500 rows keeps parse overhead
    // negligible at 100k rows
    let mut i = 0;
    while i < n {
        let hi = (i + 500).min(n);
        let tuples: Vec<String> = (i..hi)
            .map(|r| format!("('JW{r:06}', 'g{r}', {r}, {})", r % 100))
            .collect();
        db.execute(&format!("INSERT INTO Gene VALUES {}", tuples.join(", ")))
            .unwrap();
        i = hi;
    }
    db.execute(
        "ADD ANNOTATION TO Gene.Curation VALUE 'curated against GenoBase' \
         ON (SELECT G.GName FROM Gene G)",
    )
    .unwrap();
    db.execute("CREATE INDEX len_idx ON Gene (Len)").unwrap();
    db.execute("CREATE INDEX bucket_idx ON Gene (Bucket)")
        .unwrap();
    db.execute("CREATE TABLE Tag (Len INT, TName TEXT)")
        .unwrap();
    let tags: Vec<String> = (0..n.div_ceil(100))
        .map(|t| format!("({}, 'tag{t}')", t * 100))
        .collect();
    if !tags.is_empty() {
        db.execute(&format!("INSERT INTO Tag VALUES {}", tags.join(", ")))
            .unwrap();
    }
    db
}

/// `n` protein secondary-structure sequences of `len` residues with the
/// given geometric mean run length.
pub fn ss_corpus(n: usize, len: usize, mean_run: f64) -> Vec<Vec<u8>> {
    let mut rng = rng();
    (0..n)
        .map(|_| gen::secondary_structure(&mut rng, len, mean_run))
        .collect()
}

/// Extract a substring of `m` chars from a random corpus position (so the
/// pattern is guaranteed to occur at least once).
pub fn pattern_from(corpus: &[Vec<u8>], m: usize, salt: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(salt);
    loop {
        let t = &corpus[rng.gen_range(0..corpus.len())];
        if t.len() > m {
            let start = rng.gen_range(0..t.len() - m);
            return t[start..start + m].to_vec();
        }
    }
}
