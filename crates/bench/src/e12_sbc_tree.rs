//! E12 — The SBC-tree vs the String B-tree (§7.2, Figure 12).
//!
//! The paper's three claims:
//! 1. *"up to an order of magnitude reduction in storage"* — the ratio
//!    grows with the mean run length (one suffix per run instead of one
//!    per character, plus compressed text);
//! 2. *"up to 30% reduction in I/Os for the insertion operations"*;
//! 3. *"retains the optimal search performance achieved by the String
//!    B-tree over the uncompressed sequences"*.
//!
//! Sweeps the mean run length of the generated protein secondary
//! structures and reports storage, insertion write-I/O, and search
//! read-I/O for both structures (plus the scan ablation that shows what
//! the 3-sided structure buys).

use bdbms_seq::rle::RleSeq;
use bdbms_seq::string_btree::naive_substring_search;
use bdbms_seq::{SbcTree, StringBTree};

use crate::report::{ratio, Report};
use crate::workloads::{pattern_from, ss_corpus};

const N_SEQS: usize = 120;
const SEQ_LEN: usize = 300;
const N_QUERIES: usize = 20;
const PATTERN_LEN: usize = 12;

/// E12 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e12",
        "SBC-tree vs String B-tree over protein secondary structures (Fig 12)",
        "~10x storage reduction, ~30% fewer insertion I/Os, search I/O retained",
    );
    r.headers(&[
        "mean run",
        "suffixes SBT/SBC",
        "storage SBT",
        "storage SBC",
        "ratio",
        "insert writes SBT",
        "insert writes SBC",
        "reduction",
        "search reads SBT",
        "SBC 3-sided",
        "SBC scan",
    ]);
    for mean_run in [4.0, 8.0, 16.0, 24.0, 32.0] {
        let corpus = ss_corpus(N_SEQS, SEQ_LEN, mean_run);
        let mut sbt = StringBTree::new();
        let mut sbc = SbcTree::new();
        for t in &corpus {
            sbt.insert_text(t);
            sbc.insert_sequence(t);
        }
        let sbt_writes = sbt.io_stats().writes;
        let sbc_writes = sbc.io_stats().writes;

        // searches: patterns drawn from the corpus (guaranteed hits)
        let mut sbt_reads = 0u64;
        let mut three_reads = 0u64;
        let mut scan_reads = 0u64;
        for q in 0..N_QUERIES {
            let pat = pattern_from(&corpus, PATTERN_LEN, q as u64);
            sbt.reset_io();
            let a = sbt.substring_search(&pat);
            sbt_reads += sbt.io_stats().reads;
            sbc.reset_io();
            // forced 3-sided ablation (the production `substring_search`
            // falls back to a class scan when the tail class is small)
            let b = sbc.substring_search_three_sided(&pat);
            three_reads += sbc.io_stats().reads;
            sbc.reset_io();
            let c = sbc.substring_search_scan(&pat);
            scan_reads += sbc.io_stats().reads;
            // three-way correctness vs the naive oracle
            let mut want = naive_substring_search(&corpus, &pat);
            want.sort_unstable();
            let mut a_sorted = a.clone();
            a_sorted.sort_unstable();
            assert_eq!(a_sorted, want, "string b-tree correct");
            let b_pairs: Vec<(u32, u64)> = b.iter().map(|o| (o.text, o.pos)).collect();
            assert_eq!(b_pairs, want, "sbc 3-sided correct");
            let c_pairs: Vec<(u32, u64)> = c.iter().map(|o| (o.text, o.pos)).collect();
            assert_eq!(c_pairs, want, "sbc scan correct");
        }
        let mean_run_measured: f64 = corpus
            .iter()
            .map(|t| t.len() as f64 / RleSeq::encode(t).num_runs() as f64)
            .sum::<f64>()
            / corpus.len() as f64;
        r.row(vec![
            format!("{mean_run} ({mean_run_measured:.1})"),
            format!("{}/{}", sbt.num_suffixes(), sbc.num_suffixes()),
            sbt.storage_bytes().to_string(),
            sbc.storage_bytes().to_string(),
            ratio(sbt.storage_bytes() as f64, sbc.storage_bytes() as f64),
            sbt_writes.to_string(),
            sbc_writes.to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - sbc_writes as f64 / sbt_writes as f64)
            ),
            (sbt_reads / N_QUERIES as u64).to_string(),
            (three_reads / N_QUERIES as u64).to_string(),
            (scan_reads / N_QUERIES as u64).to_string(),
        ]);
    }
    r.note("storage ratio grows with run length, crossing 10x for long-run data — the paper's 'up to an order of magnitude'");
    r.note("insertion I/O reduction exceeds the paper's 30% because we index one suffix per run end-to-end (their prototype paid PostgreSQL page overheads)");
    r.note("every query checked against the String B-tree AND a naive scan oracle");
    r
}

/// Prefix + range search comparison (same corpus, separate table).
pub fn run_prefix_range() -> Report {
    let mut r = Report::new(
        "e12b",
        "SBC-tree prefix/range search vs String B-tree",
        "the SBC-tree supports substring as well as prefix matching, and range \
         search operations over RLE-compressed sequences",
    );
    r.headers(&["mean run", "op", "hits", "reads SBT", "reads SBC"]);
    for mean_run in [8.0, 24.0] {
        let corpus = ss_corpus(N_SEQS, SEQ_LEN, mean_run);
        let mut sbt = StringBTree::new();
        let mut sbc = SbcTree::new();
        for t in &corpus {
            sbt.insert_text(t);
            sbc.insert_sequence(t);
        }
        // prefix search: first 8 chars of a corpus text
        let pat = corpus[7][..8].to_vec();
        sbt.reset_io();
        let a = sbt.prefix_search(&pat);
        let ra = sbt.io_stats().reads;
        sbc.reset_io();
        let b = sbc.prefix_search(&pat);
        let rb = sbc.io_stats().reads;
        assert_eq!(a, b);
        r.row(vec![
            format!("{mean_run}"),
            "prefix".into(),
            a.len().to_string(),
            ra.to_string(),
            rb.to_string(),
        ]);
        // range search over text space
        sbt.reset_io();
        let a = sbt.range_search(b"EE", b"HL");
        let ra = sbt.io_stats().reads;
        sbc.reset_io();
        let b = sbc.range_search(b"EE", b"HL");
        let rb = sbc.io_stats().reads;
        assert_eq!(a, b);
        r.row(vec![
            format!("{mean_run}"),
            "range [EE,HL)".into(),
            a.len().to_string(),
            ra.to_string(),
            rb.to_string(),
        ]);
    }
    r
}
