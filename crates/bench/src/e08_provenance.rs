//! E08 — Provenance at multiple granularities and time travel (Figure 8).
//!
//! Replays the figure's story at scale: values arrive from sources S1/S2
//! or local inserts, a program P1 updates some, source S3 overwrites a
//! column — then "what is the source of this value at time T?" must
//! answer correctly for every (cell, T).

use std::time::Instant;

use bdbms_core::provenance::{ProvOp, ProvenanceRecord};
use bdbms_core::Database;

use crate::report::{ms, Report};

/// E08 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e08",
        "provenance management: multi-source lineage + time travel (Figure 8)",
        "data from sources S1/S2/local, updated by program P1, overwritten by \
         S3; query the source of any value at any time T",
    );
    r.headers(&[
        "rows",
        "prov records",
        "time-travel queries",
        "correct",
        "ms/query",
    ]);
    for n in [500usize, 2000] {
        let mut db = Database::new_in_memory();
        db.execute("CREATE TABLE T (id INT, v TEXT)").unwrap();
        let mut multi = String::from("INSERT INTO T VALUES ");
        for i in 0..n {
            if i > 0 {
                multi.push_str(", ");
            }
            multi.push_str(&format!("({i}, 'v{i}')"));
        }
        db.execute(&multi).unwrap();
        db.enable_provenance("T").unwrap();
        // phase 1: halves from S1 / S2
        let half: Vec<u64> = (0..n as u64 / 2).collect();
        let rest: Vec<u64> = (n as u64 / 2..n as u64).collect();
        let rec = |source: &str, op: ProvOp| ProvenanceRecord {
            source: source.into(),
            operation: op,
            program: None,
            time: 0,
        };
        db.record_provenance("T", &half, &[0, 1], &rec("S1", ProvOp::Copy))
            .unwrap();
        db.record_provenance("T", &rest, &[0, 1], &rec("S2", ProvOp::Copy))
            .unwrap();
        let t_loaded = db.now();
        // phase 2: program P1 updates every 4th row's v
        let p1_rows: Vec<u64> = (0..n as u64).step_by(4).collect();
        db.record_provenance("T", &p1_rows, &[1], &rec("P1", ProvOp::ProgramUpdate))
            .unwrap();
        let t_program = db.now();
        // phase 3: S3 overwrites the whole v column
        let all: Vec<u64> = (0..n as u64).collect();
        db.record_provenance("T", &all, &[1], &rec("S3", ProvOp::Overwrite))
            .unwrap();
        let t_final = db.now();

        // time-travel correctness over sampled cells × times
        let mut correct = 0;
        let mut total = 0;
        let t0 = Instant::now();
        for row in (0..n as u64).step_by(7) {
            for (at, expect) in [
                (t_loaded, if row < n as u64 / 2 { "S1" } else { "S2" }),
                (
                    t_program,
                    if row % 4 == 0 {
                        "P1"
                    } else if row < n as u64 / 2 {
                        "S1"
                    } else {
                        "S2"
                    },
                ),
                (t_final, "S3"),
            ] {
                total += 1;
                let got = db.source_of("T", row, 1, at).unwrap();
                if got.map(|g| g.source) == Some(expect.to_string()) {
                    correct += 1;
                }
            }
        }
        let elapsed = t0.elapsed() / total as u32;
        let prov_records = db
            .catalog()
            .table("T")
            .unwrap()
            .ann_set("provenance")
            .unwrap()
            .len();
        r.row(vec![
            n.to_string(),
            prov_records.to_string(),
            total.to_string(),
            format!("{correct}/{total}"),
            ms(elapsed),
        ]);
        assert_eq!(correct, total);
    }
    r.note(
        "provenance stored as rectangle annotations: whole-column overwrites are single records",
    );
    r
}
