//! E11 — Content-based approval (Figure 11, §6).
//!
//! Measures the logging overhead the approval machinery adds to updates,
//! the size of the operation log with its auto-generated inverses, and
//! the correctness/throughput of bulk disapproval (inverse execution).

use std::time::Instant;

use crate::report::{ms, Report};
use crate::workloads::pipeline_db;

/// E11 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e11",
        "content-based approval: logging overhead + inverse execution",
        "all updates logged with auto-generated inverse statements; \
         disapproval executes the inverse and re-triggers dependency tracking",
    );
    r.headers(&[
        "updates",
        "approval",
        "ms/update",
        "log entries",
        "log bytes",
        "undone ok",
    ]);
    for n in [200usize, 1000] {
        // OFF baseline
        let mut db = pipeline_db(n, 30);
        let t0 = Instant::now();
        for i in 0..n {
            let gid = bdbms_seq::gen::gene_id(i);
            db.execute(&format!(
                "UPDATE Gene SET GSequence = 'AAACCCGGG' WHERE GID = '{gid}'"
            ))
            .unwrap();
        }
        let off_t = t0.elapsed() / n as u32;
        r.row(vec![
            n.to_string(),
            "OFF".into(),
            ms(off_t),
            "0".into(),
            "0".into(),
            "-".into(),
        ]);

        // ON: log everything, then disapprove everything
        let mut db = pipeline_db(n, 30);
        db.execute("CREATE USER labadmin").unwrap();
        db.execute("CREATE USER alice").unwrap();
        db.execute("GRANT SELECT, UPDATE ON Gene TO alice").unwrap();
        db.execute("START CONTENT APPROVAL ON Gene APPROVED BY labadmin")
            .unwrap();
        let originals: Vec<String> = (0..n)
            .map(|i| {
                let gid = bdbms_seq::gen::gene_id(i);
                db.execute(&format!("SELECT GSequence FROM Gene WHERE GID = '{gid}'"))
                    .unwrap()
                    .rows[0]
                    .values[0]
                    .to_string()
            })
            .collect();
        let t0 = Instant::now();
        for i in 0..n {
            let gid = bdbms_seq::gen::gene_id(i);
            db.execute_as(
                &format!("UPDATE Gene SET GSequence = 'AAACCCGGG' WHERE GID = '{gid}'"),
                "alice",
            )
            .unwrap();
        }
        let on_t = t0.elapsed() / n as u32;
        let log_entries = db.approval().log().len();
        let log_bytes = db.approval().log_bytes();
        // disapprove everything; all originals must come back
        let ids: Vec<u64> = db
            .approval()
            .pending(None)
            .iter()
            .map(|op| op.id.raw())
            .collect();
        for id in ids {
            db.execute_as(&format!("DISAPPROVE OPERATION {id}"), "labadmin")
                .unwrap();
        }
        let mut undone = 0;
        for (i, orig) in originals.iter().enumerate() {
            let gid = bdbms_seq::gen::gene_id(i);
            let now = db
                .execute(&format!("SELECT GSequence FROM Gene WHERE GID = '{gid}'"))
                .unwrap()
                .rows[0]
                .values[0]
                .to_string();
            if now == *orig {
                undone += 1;
            }
        }
        r.row(vec![
            n.to_string(),
            "ON".into(),
            ms(on_t),
            log_entries.to_string(),
            log_bytes.to_string(),
            format!("{undone}/{n}"),
        ]);
        assert_eq!(undone, n);
    }
    r.note("updates stay visible while pending (§6); disapproval restores every original value through the stored inverse");
    r
}
