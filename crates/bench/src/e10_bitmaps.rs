//! E10 — Outdated-cell bitmaps: dense vs Run-Length-Encoded (Figure 10).
//!
//! The paper: *"To reduce the storage overhead of the maintained bitmaps,
//! data compression techniques such as Run-Length-Encoding can be used to
//! effectively compress the bitmaps."*  Sweeps the fraction and the
//! clustering of outdated cells, showing where RLE wins and where it
//! loses (scattered bits).

use bdbms_common::bitmap::CellBitmap;
use rand::Rng;

use crate::report::{ratio, Report};
use crate::workloads::rng;

const ROWS: usize = 20000;
const COLS: usize = 8;

fn clustered(frac: f64) -> CellBitmap {
    let mut bm = CellBitmap::new(ROWS, COLS);
    let dirty_rows = (ROWS as f64 * frac) as usize;
    // one contiguous block of rows (e.g. a batch import gone stale)
    let start = ROWS / 4;
    for r in start..(start + dirty_rows).min(ROWS) {
        for c in 0..COLS {
            bm.set(r, c);
        }
    }
    bm
}

fn column_stripe(frac: f64) -> CellBitmap {
    let mut bm = CellBitmap::new(ROWS, COLS);
    // entire columns outdated (procedure version change — §5's closure of
    // a procedure produces exactly this shape)
    let cols = ((COLS as f64 * frac).ceil() as usize).clamp(1, COLS);
    for r in 0..ROWS {
        for c in 0..cols {
            bm.set(r, c);
        }
    }
    bm
}

fn scattered(frac: f64) -> CellBitmap {
    let mut rng = rng();
    let mut bm = CellBitmap::new(ROWS, COLS);
    let n = (ROWS * COLS) as f64 * frac;
    for _ in 0..n as usize {
        bm.set(rng.gen_range(0..ROWS), rng.gen_range(0..COLS));
    }
    bm
}

/// E10 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e10",
        "outdated-cell bitmap storage: dense vs RLE (Figure 10)",
        "RLE effectively compresses the per-table outdated bitmaps",
    );
    r.headers(&[
        "pattern",
        "outdated frac",
        "set cells",
        "dense bytes",
        "rle row-major",
        "rle col-major",
        "dense/best-rle",
    ]);
    for frac in [0.001, 0.01, 0.1, 0.5] {
        for (name, bm) in [
            ("clustered rows", clustered(frac)),
            ("column stripe", column_stripe(frac)),
            ("scattered cells", scattered(frac)),
        ] {
            let rle = bm.to_rle();
            assert_eq!(rle.to_dense(), bm, "lossless");
            let rle_cm = bm.to_rle_column_major();
            assert_eq!(rle_cm.to_dense(), bm, "lossless (column-major)");
            let best = rle.storage_bytes().min(rle_cm.storage_bytes());
            r.row(vec![
                name.into(),
                format!("{frac}"),
                bm.count_set().to_string(),
                bm.storage_bytes().to_string(),
                rle.storage_bytes().to_string(),
                rle_cm.storage_bytes().to_string(),
                ratio(bm.storage_bytes() as f64, best as f64),
            ]);
        }
    }
    r.note(
        "clustered invalidation (the realistic case: batch updates, procedure \
         upgrades) compresses by orders of magnitude under the matching run \
         order; truly scattered bits at high density favour the dense bitmap",
    );
    r.note(
        "ablation: column stripes (procedure-closure invalidation) need \
         column-major run order — row-major RLE fragments them into one run \
         per row",
    );
    r
}
