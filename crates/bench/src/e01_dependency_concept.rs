//! E01 / E09 — Local dependency tracking (Figures 1, 9, 10; §5).
//!
//! E01 measures the cascade at scale: modify k gene sequences in the
//! Figure 9 pipeline and observe recomputation (executable rule r1) vs
//! outdating (non-executable rule r2), plus cascade latency.
//!
//! E09 exercises the paper's *reasoning* over procedural dependencies:
//! attribute closures, procedure closures, and derived rules (Rule 4).

use std::time::Instant;

use bdbms_core::dependency::{figure9_rules, DependencyManager};

use crate::report::{ms, Report};
use crate::workloads::pipeline_db;

/// E01: cascade behaviour and cost.
pub fn run() -> Report {
    let mut r = Report::new(
        "e01",
        "dependency cascade: recompute vs outdate (Figure 9/10)",
        "gene edits auto-recompute protein sequences (executable tool P) and \
         mark protein functions outdated (lab experiment)",
    );
    r.headers(&[
        "genes",
        "edits",
        "recomputed PSeq",
        "outdated PFun",
        "outdated PSeq",
        "cascade ms/edit",
    ]);
    for n in [100usize, 500, 2000] {
        let mut db = pipeline_db(n, 60);
        let edits = n / 10;
        let t0 = Instant::now();
        for i in 0..edits {
            let gid = bdbms_seq::gen::gene_id(i * 10);
            db.execute(&format!(
                "UPDATE Gene SET GSequence = 'GTGGTGGTGGTGGTG' WHERE GID = '{gid}'"
            ))
            .unwrap();
        }
        let elapsed = t0.elapsed();
        // recomputed = proteins whose PSequence now decodes the new gene
        let recomputed = db
            .execute("SELECT PSequence FROM Protein WHERE PSequence = 'GGGGG'")
            .unwrap()
            .rows
            .len();
        let outdated = db.execute("SHOW OUTDATED ON Protein").unwrap();
        let fun_outdated = outdated
            .rows
            .iter()
            .filter(|row| row.values[2].to_string() == "PFunction")
            .count();
        let seq_outdated = outdated.rows.len() - fun_outdated;
        r.row(vec![
            n.to_string(),
            edits.to_string(),
            recomputed.to_string(),
            fun_outdated.to_string(),
            seq_outdated.to_string(),
            ms(elapsed / edits as u32),
        ]);
    }
    r.note(
        "PSequence is recomputed (never marked) and PFunction is marked \
         outdated — the exact Figure 10 bitmap shape",
    );
    r
}

/// E09: closures and derived rules.
pub fn run_closures() -> Report {
    let mut r = Report::new(
        "e09",
        "procedural-dependency reasoning (closures, derived Rule 4)",
        "closure of an attribute / of a procedure; derived rule \
         Gene.GSequence -> Protein.PFunction is non-executable",
    );
    r.headers(&["query", "result"]);
    let mut m = DependencyManager::new();
    for rule in figure9_rules() {
        m.add_rule(rule).unwrap();
    }
    let fmt_cols = |cols: Vec<(String, String)>| {
        cols.iter()
            .map(|(t, c)| format!("{t}.{c}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    r.row(vec![
        "closure(Gene.GSequence)".into(),
        fmt_cols(m.closure_of_attribute("Gene", "GSequence")),
    ]);
    r.row(vec![
        "closure(Protein.PSequence)".into(),
        fmt_cols(m.closure_of_attribute("Protein", "PSequence")),
    ]);
    r.row(vec![
        "closure(procedure P)".into(),
        fmt_cols(m.closure_of_procedure("P")),
    ]);
    r.row(vec![
        "closure(procedure BLAST-2.2.15)".into(),
        fmt_cols(m.closure_of_procedure("BLAST-2.2.15")),
    ]);
    for d in m.derived_rules() {
        r.row(vec![
            "derived rule".into(),
            format!(
                "{} -> {}.{} via {:?} (executable={}, invertible={})",
                fmt_cols(d.src.clone()),
                d.dst.0,
                d.dst.1,
                d.chain,
                d.executable,
                d.invertible
            ),
        ]);
    }
    // scaling of closure computation over synthetic rule chains
    let mut big = DependencyManager::new();
    for i in 0..200 {
        big.add_rule(bdbms_core::dependency::DependencyRule {
            id: bdbms_common::ids::RuleId(0),
            name: format!("chain{i}"),
            src_table: format!("T{i}"),
            src_cols: vec!["c".into()],
            dst_table: format!("T{}", i + 1),
            dst_col: "c".into(),
            procedure: format!("p{i}"),
            executable: i % 2 == 0,
            invertible: false,
            link: Some(("k".into(), "k".into())),
        })
        .unwrap();
    }
    let t0 = Instant::now();
    let c = big.closure_of_attribute("T0", "c");
    r.row(vec![
        "closure over 200-rule chain".into(),
        format!("{} columns in {} ms", c.len(), ms(t0.elapsed())),
    ]);
    r.note("matches the paper's Rule 4 derivation exactly");
    r
}
