//! E15 — bulk ingestion (`COPY`) + SQL-surfaced sequence search.
//!
//! Two acceptance claims from the ingestion subsystem (ISSUE 8, not a
//! paper figure — the paper's §7.2 curation scenario motivates both):
//!
//! * **bulk load**: `COPY <table> FROM '<file>' FORMAT FASTA` must load a
//!   50k-record FASTA dump ≥10x faster than the same records issued as
//!   row-at-a-time `INSERT` statements.  Both sides run against a durable
//!   database under `NoSync` (so the ratio measures the amortization —
//!   deferred index build, deferred stats, one logical `BulkLoad` WAL
//!   record instead of 50k row records — not the fsync count).
//! * **indexed substring search**: `SELECT … WHERE col CONTAINS SEQ
//!   '<pat>'` over a column with a `CREATE SEQUENCE INDEX … USING SBC`
//!   must be planner-routed through the SBC-tree (visible as
//!   `ExecStats::seq_index_probes`) and beat the naive full scan ≥10x.
//!
//! Both rows are gated in CI by `scripts/check_perf.py --id e15` with
//! absolute floors of 10x.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bdbms_core::executor::ExecOptions;
use bdbms_core::{Database, DurabilityOptions};

use crate::report::{ms, ratio, Report};
use crate::workloads::{pattern_from, ss_corpus};

/// Sequence length / RLE mean-run of the search corpus (protein
/// secondary structures — the SBC-tree's native workload, as in E12).
const SEARCH_SEQ_LEN: usize = 300;
const SEARCH_MEAN_RUN: f64 = 8.0;
/// Pattern length: long enough to span several runs, so the SBC-tree's
/// multi-run path (String-B-tree probe + 3-sided filter) is exercised.
const PATTERN_LEN: usize = 24;

fn tmp(name: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "bdbms-e15-{name}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// Render a corpus as a FASTA file (`>JWxxxx` headers, 60-char lines).
fn write_fasta(path: &std::path::Path, corpus: &[Vec<u8>]) {
    let mut out = String::new();
    for (i, seq) in corpus.iter().enumerate() {
        writeln!(out, ">JW{i:04}").unwrap();
        for chunk in seq.chunks(60) {
            out.push_str(std::str::from_utf8(chunk).expect("ASCII corpus"));
            out.push('\n');
        }
    }
    std::fs::write(path, out).expect("bench FASTA file");
}

fn fresh_gene_db(dir: &std::path::Path) -> Database {
    let _ = std::fs::remove_dir_all(dir);
    let mut db =
        Database::create_with(dir, DurabilityOptions::no_sync()).expect("durable bench db");
    db.execute("CREATE TABLE Gene (Hdr TEXT, Seq TEXT)")
        .unwrap();
    db.execute("CREATE INDEX hdr_idx ON Gene (Hdr)").unwrap();
    db
}

/// One-shot wall time of `COPY`ing `corpus` vs. inserting it row by row,
/// each against its own fresh durable (`NoSync`) database with a
/// secondary B+-tree index to maintain.
fn time_bulk_load(corpus: &[Vec<u8>]) -> (Duration, Duration) {
    let fasta = tmp("load.fasta");
    write_fasta(&fasta, corpus);

    let copy_dir = tmp("copy-db");
    let mut db = fresh_gene_db(&copy_dir);
    let s = Instant::now();
    let r = db
        .execute(&format!(
            "COPY Gene FROM '{}' FORMAT FASTA",
            fasta.display()
        ))
        .expect("bench COPY");
    let copy_t = s.elapsed();
    assert_eq!(r.affected, corpus.len(), "COPY must load every record");
    db.simulate_crash(); // skip the shutdown checkpoint (already forced)
    let _ = std::fs::remove_dir_all(&copy_dir);

    let insert_dir = tmp("insert-db");
    let mut db = fresh_gene_db(&insert_dir);
    let statements: Vec<String> = corpus
        .iter()
        .enumerate()
        .map(|(i, seq)| {
            format!(
                "INSERT INTO Gene VALUES ('JW{i:04}', '{}')",
                std::str::from_utf8(seq).expect("ASCII corpus")
            )
        })
        .collect();
    let s = Instant::now();
    for stmt in &statements {
        db.execute(stmt).expect("bench INSERT");
    }
    let insert_t = s.elapsed();
    assert_eq!(
        db.catalog().table("Gene").unwrap().len(),
        corpus.len(),
        "row-at-a-time must load every record"
    );
    db.simulate_crash();
    let _ = std::fs::remove_dir_all(&insert_dir);
    let _ = std::fs::remove_file(&fasta);
    (copy_t, insert_t)
}

/// Mean wall time of the `CONTAINS SEQ` query over a COPY-loaded,
/// sequence-indexed table: naive full scan vs. planner-routed SBC-tree
/// probe.  Returns `(scan, probe, matches)` and asserts the two paths
/// agree and that the optimized path really probed the sequence index.
fn time_substring_search(corpus: &[Vec<u8>]) -> (Duration, Duration, usize) {
    let fasta = tmp("search.fasta");
    write_fasta(&fasta, corpus);
    let mut db = Database::new_in_memory();
    db.execute("CREATE TABLE Prot (Hdr TEXT, SS TEXT)").unwrap();
    db.execute(&format!(
        "COPY Prot FROM '{}' FORMAT FASTA",
        fasta.display()
    ))
    .unwrap();
    db.execute("CREATE SEQUENCE INDEX ss_sbc ON Prot (SS) USING SBC")
        .unwrap();
    let pat = pattern_from(corpus, PATTERN_LEN, 7);
    let sql = format!(
        "SELECT Hdr FROM Prot WHERE SS CONTAINS SEQ '{}'",
        std::str::from_utf8(&pat).expect("ASCII pattern")
    );
    let time_query = |opts: &ExecOptions| {
        let (r, stats) = db.query_traced(&sql, opts).expect("bench query");
        let once = {
            let s = Instant::now();
            let _ = db.query_traced(&sql, opts).unwrap();
            s.elapsed()
        };
        let reps =
            (Duration::from_millis(300).as_nanos() / once.as_nanos().max(1)).clamp(2, 2000) as u32;
        let s = Instant::now();
        for _ in 0..reps {
            let _ = db.query_traced(&sql, opts).unwrap();
        }
        (s.elapsed() / reps, r, stats)
    };
    let (scan_t, scan_r, scan_s) = time_query(&ExecOptions::naive());
    let (probe_t, probe_r, probe_s) = time_query(&ExecOptions::default());
    assert_eq!(scan_s.full_scans, 1);
    assert_eq!(scan_s.seq_index_probes, 0);
    assert_eq!(
        probe_s.seq_index_probes, 1,
        "the planner must route CONTAINS SEQ through the sequence index"
    );
    assert_eq!(probe_s.chosen_indexes, vec!["ss_sbc".to_string()]);
    let key = |r: &bdbms_core::result::QueryResult| {
        let mut v: Vec<String> = r.rows.iter().map(|x| x.values[0].to_string()).collect();
        v.sort();
        v
    };
    let (a, b) = (key(&scan_r), key(&probe_r));
    assert_eq!(a, b, "probe and scan must agree");
    assert!(!a.is_empty(), "the pattern is drawn from the corpus");
    let _ = std::fs::remove_file(&fasta);
    (scan_t, probe_t, a.len())
}

/// Run E15 at the acceptance scale: a 50k-record bulk load and a
/// 12k-sequence search corpus (large enough that the scan side — linear
/// in the corpus — dwarfs the SBC probe's fixed per-query cost).
pub fn run() -> Report {
    run_sized(50_000, 12_000)
}

/// Run E15 at a chosen scale (tests use a smaller one).
pub fn run_sized(load_n: usize, search_n: usize) -> Report {
    let mut report = Report::new(
        "e15",
        &format!("bulk ingestion + sequence search ({load_n} / {search_n} records)"),
        "ingestion subsystem: COPY amortizes index/stats/WAL work; \
         CONTAINS SEQ rides the SBC-tree (§7.2 curation scenario)",
    );
    report.headers(&["query", "scale", "baseline ms", "optimized ms", "speedup"]);

    // short records for the load (payload shape does not matter there)
    let load_corpus = ss_corpus(load_n, 60, SEARCH_MEAN_RUN);
    let (copy_t, insert_t) = time_bulk_load(&load_corpus);
    report.row(vec![
        "bulk load (COPY vs row INSERTs)".to_string(),
        format!("{load_n} records"),
        ms(insert_t),
        ms(copy_t),
        ratio(insert_t.as_secs_f64(), copy_t.as_secs_f64()),
    ]);

    let search_corpus = ss_corpus(search_n, SEARCH_SEQ_LEN, SEARCH_MEAN_RUN);
    let (scan_t, probe_t, matches) = time_substring_search(&search_corpus);
    report.row(vec![
        "indexed substring (CONTAINS SEQ vs scan)".to_string(),
        format!("{search_n} x {SEARCH_SEQ_LEN} chars, {matches} hits"),
        ms(scan_t),
        ms(probe_t),
        ratio(scan_t.as_secs_f64(), probe_t.as_secs_f64()),
    ]);

    let load_rate = load_n as f64 / copy_t.as_secs_f64().max(1e-12);
    let insert_rate = load_n as f64 / insert_t.as_secs_f64().max(1e-12);
    report.note(format!(
        "bulk load: {load_rate:.0} rows/s via COPY vs {insert_rate:.0} rows/s \
         row-at-a-time (both durable, NoSync; hdr_idx maintained on both \
         sides — COPY defers it to one sorted rebuild)"
    ));
    report.note(
        "COPY writes one logical BulkLoad WAL record plus a forced \
         checkpoint; the INSERT side writes one WAL record per row",
    );
    report.note(format!(
        "substring search: {PATTERN_LEN}-char pattern over protein \
         secondary structures (mean run {SEARCH_MEAN_RUN}); the optimized \
         path probes the SBC-tree (seq_index_probes = 1) and fetches only \
         candidates, the naive path decodes and scans every row"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic shape check at a small scale; wall-clock floors are
    /// asserted by the release-mode perf gate, not here.
    #[test]
    fn report_has_two_gated_rows_and_json_renders() {
        let r = run_sized(300, 120);
        assert_eq!(r.rows.len(), 2);
        let j = r.render_json();
        assert!(j.contains("\"id\":\"e15\""));
        assert!(j.contains("bulk load (COPY vs row INSERTs)"));
        assert!(j.contains("indexed substring (CONTAINS SEQ vs scan)"));
    }

    /// The workload helpers carry their own correctness asserts (row
    /// counts, probe/scan agreement, seq_index_probes); run them small.
    #[test]
    fn workloads_hold_their_invariants() {
        let corpus = ss_corpus(150, 80, 6.0);
        let (copy_t, insert_t) = time_bulk_load(&corpus);
        assert!(copy_t > Duration::ZERO && insert_t > Duration::ZERO);
        let corpus = ss_corpus(200, 200, 8.0);
        let (scan_t, probe_t, matches) = time_substring_search(&corpus);
        assert!(scan_t > Duration::ZERO && probe_t > Duration::ZERO);
        assert!(matches > 0);
    }
}
