//! E04 — Archive / restore of annotations (Figure 6b/6c, §3.3).
//!
//! Archived annotations must disappear from query answers without being
//! deleted, and restoring must bring them back; the `BETWEEN t1 AND t2`
//! window selects by creation timestamp.

use std::time::Instant;

use crate::report::{ms, Report};
use crate::workloads::synthetic_gene_db;

/// E04 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e04",
        "annotation archival and restoration (time-windowed)",
        "§3.3: archived annotations are not propagated with query answers; \
         restoring makes them propagate again",
    );
    r.headers(&[
        "rows",
        "anns live",
        "archived",
        "live after",
        "restored",
        "live final",
        "archive ms",
    ]);
    for n in [500usize, 2000] {
        let mut db = synthetic_gene_db(n, 30);
        let count_live = |db: &mut bdbms_core::Database| {
            db.execute("SELECT * FROM DB1_Gene ANNOTATION(GAnnotation)")
                .unwrap()
                .rows
                .iter()
                .map(|row| row.all_anns().len())
                .sum::<usize>()
        };
        let before = count_live(&mut db);
        let t0 = Instant::now();
        let res = db
            .execute(
                "ARCHIVE ANNOTATION FROM DB1_Gene.GAnnotation \
                 ON (SELECT G.GSequence FROM DB1_Gene G)",
            )
            .unwrap();
        let archive_t = t0.elapsed();
        let archived: usize = res
            .message
            .as_deref()
            .and_then(|m| m.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let after = count_live(&mut db);
        let res = db
            .execute(
                "RESTORE ANNOTATION FROM DB1_Gene.GAnnotation \
                 ON (SELECT G.GSequence FROM DB1_Gene G)",
            )
            .unwrap();
        let restored: usize = res
            .message
            .as_deref()
            .and_then(|m| m.split(' ').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let final_count = count_live(&mut db);
        assert_eq!(before, final_count, "restore is exact");
        assert!(after < before);
        r.row(vec![
            n.to_string(),
            before.to_string(),
            archived.to_string(),
            after.to_string(),
            restored.to_string(),
            final_count.to_string(),
            ms(archive_t),
        ]);
    }
    r.note("archive/restore round-trips exactly; archived annotations never reach query answers");
    r
}
