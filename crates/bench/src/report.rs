//! Experiment report formatting.

/// One experiment's result table, printable and Markdown-renderable.
pub struct Report {
    /// Experiment id (DESIGN.md §4).
    pub id: &'static str,
    /// Short title.
    pub title: String,
    /// The paper artifact / claim being reproduced.
    pub paper_claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form observations (comparison against the paper).
    pub notes: Vec<String>,
    /// Total wall-clock the experiment took to run, in milliseconds.
    /// Stamped by the `reproduce` harness after the run returns (0.0
    /// until then), so `--json` trajectories capture absolute latency
    /// alongside the gated ratios.
    pub wall_ms: f64,
}

impl Report {
    /// Start a report.
    pub fn new(id: &'static str, title: &str, paper_claim: &str) -> Report {
        Report {
            id,
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
            wall_ms: 0.0,
        }
    }

    /// Set the header row.
    pub fn headers(&mut self, hs: &[&str]) -> &mut Self {
        self.headers = hs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a data row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Append an observation.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## [{}] {}\n", self.id, self.title));
        out.push_str(&format!("paper: {}\n\n", self.paper_claim));
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("* {n}\n"));
        }
        out.push('\n');
        out
    }

    /// Render as a JSON object (hand-rolled — the workspace carries no
    /// serde).  `reproduce --json` emits an array of these so future PRs
    /// can track the perf trajectory mechanically.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let str_array = |items: &[String]| -> String {
            let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| str_array(r)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"paper_claim\":\"{}\",\
             \"headers\":{},\"rows\":[{}],\"notes\":{},\"wall_ms\":{:.3}}}",
            esc(self.id),
            esc(&self.title),
            esc(&self.paper_claim),
            str_array(&self.headers),
            rows.join(","),
            str_array(&self.notes),
            self.wall_ms,
        )
    }

    /// Render as a Markdown table section (used to build EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "### {} — {}\n\n",
            self.id.to_uppercase(),
            self.title
        ));
        out.push_str(&format!("**Paper:** {}\n\n", self.paper_claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("* {n}\n"));
        }
        out.push('\n');
        out
    }
}

/// Format a duration as milliseconds with 3 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Format a ratio with 1 decimal and an `x` suffix.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "-".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_carries_notes() {
        let mut r = Report::new("eXX", "demo", "a claim");
        r.headers(&["col", "value"]);
        r.row(vec!["a".into(), "1".into()]);
        r.row(vec!["long-name".into(), "2".into()]);
        r.note("all good");
        let s = r.render();
        assert!(s.contains("## [eXX] demo"));
        assert!(s.contains("long-name"));
        assert!(s.contains("* all good"));
        let md = r.render_markdown();
        assert!(md.contains("| col | value |"));
    }

    #[test]
    fn render_json_escapes_and_structures() {
        let mut r = Report::new("e13", "exec \"perf\"", "claim\nwith newline");
        r.headers(&["path", "ms"]);
        r.row(vec!["naive\\scan".into(), "12.5".into()]);
        r.note("5.0x");
        r.wall_ms = 1234.5678;
        let j = r.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"e13\""));
        assert!(j.contains("exec \\\"perf\\\""));
        assert!(j.contains("claim\\nwith newline"));
        assert!(j.contains("naive\\\\scan"));
        assert!(j.contains("\"notes\":[\"5.0x\"]"));
        assert!(j.contains("\"wall_ms\":1234.568"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut r = Report::new("e", "t", "c");
        r.headers(&["a", "b"]);
        r.row(vec!["only-one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.500");
    }
}
