//! E14 — wire-protocol server: group-commit throughput and fsync
//! amortization under concurrent clients.
//!
//! Not a paper figure: this experiment gates the server tier the ROADMAP
//! added on top of the embedded engine.  It boots an in-process
//! [`bdbms_server::Server`] on a durable database (`Durability::Full`,
//! one WAL fsync required per acknowledged commit) and compares:
//!
//! * **sequential commits** — one client performing every commit
//!   back-to-back, the degenerate group of one: each commit pays a full
//!   fsync round-trip;
//! * **group commit** — the same total number of commits issued by 16
//!   concurrent clients: the engine keeps appending while the flusher
//!   fsyncs, so one fsync acknowledges every commit that reached the
//!   log before it;
//! * **point reads** — the same client fleet running prepared point
//!   reads, concurrent vs sequential, to show reads pipeline through
//!   the single engine thread too.
//!
//! The gated numbers (see `scripts/check_perf.py --id e14`, which also
//! applies *absolute* floors to this table): group commit must deliver
//! ≥4x the sequential commit throughput, and ≥4 commits per fsync
//! (i.e. ≤0.25 fsyncs per acknowledged commit).

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use bdbms_client::RemoteConnection;
use bdbms_common::Value;
use bdbms_core::client::Connection;
use bdbms_core::Database;
use bdbms_server::proto::{read_response, write_request, Request, Response};
use bdbms_server::{Server, ServerConfig};

use crate::report::{ratio, Report};

/// A booted server on its own scratch directory.
struct Harness {
    server: Option<Server>,
    addr: String,
    dir: PathBuf,
}

impl Harness {
    fn start(name: &str) -> Harness {
        static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bdbms-e14-{}-{}-{name}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let server =
            Server::start(ServerConfig::new(&dir, "127.0.0.1:0")).expect("boot bench server");
        let addr = server.local_addr().to_string();
        Harness {
            server: Some(server),
            addr,
            dir,
        }
    }

    fn connect(&self) -> RemoteConnection {
        RemoteConnection::connect(&self.addr, "admin").expect("bench client connect")
    }

    fn fsyncs(&self) -> u64 {
        self.server.as_ref().unwrap().fsync_count()
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// The pre-server status quo: one embedded session (the only way the
/// single-threaded core can be driven) committing `total` single-row
/// INSERTs back-to-back under `Durability::Full` — every commit pays
/// its own fsync before the next one can start.  This is what "16
/// clients" amounted to before the wire protocol existed: sixteen
/// workers taking turns on one `Database`.  Returns (elapsed, fsyncs).
fn embedded_sequential_commits(total: usize) -> (Duration, u64) {
    static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bdbms-e14-embedded-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::create(&dir).expect("embedded bench db");
    db.execute("CREATE TABLE Commits (K INT, Who TEXT)")
        .unwrap();
    let fsyncs = db.wal_sync_counter().expect("durable db has a WAL");
    let mut session = db.session("admin");
    let ins = session
        .prepare("INSERT INTO Commits VALUES (?, ?)")
        .unwrap();
    ins.execute(
        &mut session,
        &[Value::Int(-1), Value::Text("warm-up".into())],
    )
    .unwrap();
    let fsyncs0 = fsyncs.load(std::sync::atomic::Ordering::Relaxed);
    let s = Instant::now();
    for i in 0..total {
        ins.execute(
            &mut session,
            &[Value::Int(i as i64), Value::Text("seq".into())],
        )
        .unwrap();
    }
    let elapsed = s.elapsed();
    let paid = fsyncs.load(std::sync::atomic::Ordering::Relaxed) - fsyncs0;
    drop(session);
    db.simulate_crash(); // skip the shutdown checkpoint
    let _ = std::fs::remove_dir_all(&dir);
    (elapsed, paid)
}

/// One remote client committing `total` single-row INSERTs
/// back-to-back over the wire: the sequential wire baseline (a group
/// of one per fsync).  Returns (elapsed, fsyncs consumed).
fn sequential_commits(h: &Harness, total: usize) -> (Duration, u64) {
    let mut conn = h.connect();
    let ins = conn.prepare("INSERT INTO Commits VALUES (?, ?)").unwrap();
    conn.execute(&ins, &[Value::Int(-1), Value::Text("warm-up".into())])
        .unwrap();
    let fsyncs0 = h.fsyncs();
    let s = Instant::now();
    for i in 0..total {
        conn.execute(&ins, &[Value::Int(i as i64), Value::Text("seq".into())])
            .unwrap();
    }
    let elapsed = s.elapsed();
    let fsyncs = h.fsyncs() - fsyncs0;
    conn.close().unwrap();
    (elapsed, fsyncs)
}

/// A raw wire connection: the bench speaks the protocol directly so
/// one driver thread can multiplex many client connections.
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    stmt: u64,
}

impl RawConn {
    fn connect(addr: &str) -> RawConn {
        let stream = TcpStream::connect(addr).expect("bench client connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        let mut conn = RawConn {
            reader,
            writer: stream,
            stmt: 0,
        };
        conn.send(&Request::Hello {
            user: "admin".into(),
        });
        match conn.recv() {
            Response::HelloOk { .. } => {}
            other => panic!("hello failed: {other:?}"),
        }
        conn
    }

    /// Encode and write one request as a single `write(2)`.
    fn send(&mut self, req: &Request) {
        let mut buf = Vec::new();
        write_request(&mut buf, req).expect("encode request");
        self.writer.write_all(&buf).expect("send request");
    }

    fn recv(&mut self) -> Response {
        read_response(&mut self.reader).expect("read response")
    }

    fn prepare_insert(&mut self, warm_key: i64) {
        self.send(&Request::Prepare {
            sql: "INSERT INTO Commits VALUES (?, ?)".into(),
        });
        self.stmt = match self.recv() {
            Response::PrepareOk { stmt, .. } => stmt,
            other => panic!("prepare failed: {other:?}"),
        };
        self.commit_row(warm_key, "warm-up");
        match self.recv() {
            Response::Result { .. } => {}
            other => panic!("warm-up insert failed: {other:?}"),
        }
    }

    /// Fire one INSERT without waiting for the acknowledgment.
    fn commit_row(&mut self, key: i64, who: &str) {
        self.send(&Request::Execute {
            stmt: self.stmt,
            params: vec![Value::Int(key), Value::Text(who.into())],
        });
    }
}

/// `clients` concurrent connections, each committing `per_client`
/// single-row INSERTs: the group-commit workload.  Returns (elapsed,
/// fsyncs consumed, commits acknowledged).
///
/// One driver thread multiplexes the connections in lock-step rounds —
/// each connection always has exactly one commit outstanding and never
/// sends the next before its acknowledgment arrives, so semantically
/// this is `clients` zero-think-time clients.  A thread per client
/// (what `bdbms-hammer` does) measures the same server behavior but,
/// on a small box, adds a scheduler wakeup per commit *in the driver*,
/// which is noise this experiment should not count.
fn concurrent_commits(h: &Harness, clients: usize, per_client: usize) -> (Duration, u64, u64) {
    let mut conns: Vec<RawConn> = (0..clients).map(|_| RawConn::connect(&h.addr)).collect();
    let whos: Vec<String> = (0..clients).map(|c| format!("client-{c}")).collect();
    for (c, conn) in conns.iter_mut().enumerate() {
        conn.prepare_insert(-2 - c as i64);
    }
    let fsyncs0 = h.fsyncs();
    let s = Instant::now();
    for i in 0..per_client {
        for (c, conn) in conns.iter_mut().enumerate() {
            let key = 1_000_000 + (c * per_client + i) as i64;
            conn.commit_row(key, &whos[c]);
        }
        for conn in conns.iter_mut() {
            match conn.recv() {
                Response::Result { .. } => {}
                other => panic!("commit not acknowledged: {other:?}"),
            }
        }
    }
    let elapsed = s.elapsed();
    let fsyncs = h.fsyncs() - fsyncs0;
    for conn in &mut conns {
        conn.send(&Request::Quit);
    }
    (elapsed, fsyncs, (clients * per_client) as u64)
}

/// Prepared point reads: `total` sequential on one connection, then the
/// same total spread over `clients` concurrent connections.
fn point_reads(h: &Harness, clients: usize, total: usize) -> (Duration, Duration) {
    let read_one = |conn: &mut RemoteConnection, sel: &bdbms_core::StatementHandle, key: i64| {
        let mut rows = conn.query(sel, &[Value::Int(key)]).unwrap();
        rows.next_row().unwrap().expect("seeded key readable");
    };
    let mut conn = h.connect();
    let sel = conn.prepare("SELECT Who FROM Commits WHERE K = ?").unwrap();
    read_one(&mut conn, &sel, 0); // warm-up
    let s = Instant::now();
    for i in 0..total {
        read_one(&mut conn, &sel, (i % 64) as i64);
    }
    let sequential = s.elapsed();
    conn.close().unwrap();

    let per_client = total / clients;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = h.addr.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut conn =
                    RemoteConnection::connect(&addr, "admin").expect("bench client connect");
                let sel = conn.prepare("SELECT Who FROM Commits WHERE K = ?").unwrap();
                let mut rows = conn.query(&sel, &[Value::Int(0)]).unwrap();
                rows.next_row().unwrap().expect("seeded key readable");
                drop(rows);
                barrier.wait();
                for i in 0..per_client {
                    let key = (i % 64) as i64;
                    let mut rows = conn.query(&sel, &[Value::Int(key)]).unwrap();
                    rows.next_row().unwrap().expect("seeded key readable");
                }
                conn.close().unwrap();
            })
        })
        .collect();
    let s = Instant::now();
    barrier.wait();
    for handle in handles {
        handle.join().expect("read client");
    }
    let concurrent = s.elapsed();
    (sequential, concurrent)
}

/// Run E14 at the standard scale: 16 clients, 512 commits total.
pub fn run() -> Report {
    run_sized(16, 32, 512)
}

/// Run E14 at a chosen scale (tests use a smaller one).
pub fn run_sized(clients: usize, per_client: usize, reads: usize) -> Report {
    let total = clients * per_client;
    let mut report = Report::new(
        "e14",
        &format!("wire-protocol server: group commit ({clients} clients x {per_client} commits)"),
        "server tier on top of the embedded engine (ROADMAP, not a paper \
         figure): one fsync acknowledges every commit that reached the log",
    );
    report.headers(&[
        "query",
        "clients",
        "ops",
        "elapsed ms",
        "ops/s",
        "fsyncs/commit",
        "speedup",
    ]);

    // each leg gets a fresh server + database so WAL growth from one leg
    // never taxes the next
    let seed = |h: &Harness| {
        let mut setup = h.connect();
        setup.run("CREATE TABLE Commits (K INT, Who TEXT)").unwrap();
        // seed keys 0..64 for the point-read leg
        for k in 0..64 {
            setup
                .run(&format!("INSERT INTO Commits VALUES ({k}, 'seed')"))
                .unwrap();
        }
        setup.close().unwrap();
    };

    let (emb_t, emb_fsyncs) = embedded_sequential_commits(total);

    let seq_h = Harness::start("seq");
    seed(&seq_h);
    let (seq_t, seq_fsyncs) = sequential_commits(&seq_h, total);
    drop(seq_h);

    let grp_h = Harness::start("group");
    seed(&grp_h);
    let (grp_t, grp_fsyncs, acked) = concurrent_commits(&grp_h, clients, per_client);
    let (read_seq_t, read_con_t) = point_reads(&grp_h, clients, reads);
    drop(grp_h);

    let emb_rate = total as f64 / emb_t.as_secs_f64().max(1e-9);
    let seq_rate = total as f64 / seq_t.as_secs_f64().max(1e-9);
    let grp_rate = acked as f64 / grp_t.as_secs_f64().max(1e-9);
    let fsyncs_per_commit = grp_fsyncs as f64 / acked as f64;
    let commits_per_fsync = acked as f64 / (grp_fsyncs as f64).max(1e-9);
    let read_seq_rate = reads as f64 / read_seq_t.as_secs_f64().max(1e-9);
    let read_con_rate = reads as f64 / read_con_t.as_secs_f64().max(1e-9);

    report.row(vec![
        "sequential commits (embedded)".to_string(),
        "1".to_string(),
        total.to_string(),
        format!("{:.1}", emb_t.as_secs_f64() * 1e3),
        format!("{emb_rate:.0}"),
        format!("{:.2}", emb_fsyncs as f64 / total as f64),
        "1.0x".to_string(),
    ]);
    report.row(vec![
        "sequential commits (wire)".to_string(),
        "1".to_string(),
        total.to_string(),
        format!("{:.1}", seq_t.as_secs_f64() * 1e3),
        format!("{seq_rate:.0}"),
        format!("{:.2}", seq_fsyncs as f64 / total as f64),
        ratio(seq_rate, emb_rate),
    ]);
    report.row(vec![
        "group commit".to_string(),
        clients.to_string(),
        acked.to_string(),
        format!("{:.1}", grp_t.as_secs_f64() * 1e3),
        format!("{grp_rate:.0}"),
        format!("{fsyncs_per_commit:.2}"),
        ratio(grp_rate, emb_rate),
    ]);
    report.row(vec![
        "commits per fsync".to_string(),
        clients.to_string(),
        acked.to_string(),
        format!("{:.1}", grp_t.as_secs_f64() * 1e3),
        format!("{grp_rate:.0}"),
        format!("{fsyncs_per_commit:.2}"),
        format!("{commits_per_fsync:.1}x"),
    ]);
    report.row(vec![
        "point reads".to_string(),
        clients.to_string(),
        reads.to_string(),
        format!("{:.1}", read_con_t.as_secs_f64() * 1e3),
        format!("{read_con_rate:.0}"),
        "0.00".to_string(),
        ratio(read_con_rate, read_seq_rate),
    ]);

    report.note(format!(
        "group commit: {acked} acknowledged commits consumed {grp_fsyncs} fsyncs \
         ({fsyncs_per_commit:.2} fsyncs/commit, {commits_per_fsync:.1} commits/fsync); \
         the embedded sequential baseline paid {emb_fsyncs} fsyncs for {total}, \
         the wire-sequential run {seq_fsyncs}"
    ));
    report.note(
        "speedups are against the embedded single-session baseline — the only \
         way concurrent workers could drive the single-threaded core before \
         the server existed was taking turns, one fsync each",
    );
    report.note(
        "every commit is acknowledged only after the flusher's fsync covers \
         its LSN — the crash test (crates/server/tests/crash_commit.rs) \
         SIGKILLs the server mid-burst and asserts no acknowledged commit \
         is lost",
    );
    report.note(
        "the engine thread keeps executing other connections' statements \
         while a handler blocks on its commit ticket, so commits pile onto \
         the next fsync instead of queueing behind each other",
    );
    report.note(
        "gated with absolute floors (scripts/check_perf.py --id e14): \
         group commit >= 4x sequential throughput, >= 4 commits per fsync",
    );
    report.note(format!(
        "the throughput ratio scales with the device's fsync latency (the \
         embedded row's {:.0} us/commit is almost entirely one fsync): \
         group commit amortizes the barrier but still pays the engine's \
         per-commit CPU, so a write-cached VM syncing in ~100 us bounds \
         the ratio lower than the >= 4x floor, while any device syncing \
         in >= 200 us clears it — gate on real-disk CI runners, not \
         cache-backed dev VMs",
        emb_t.as_secs_f64() * 1e6 / total as f64
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape check at a small scale: the report renders, carries the
    /// four workloads, and group commit actually amortizes fsyncs (the
    /// >= 4x floors are asserted by the release-mode CI gate, not here).
    #[test]
    fn report_shape_and_fsync_amortization() {
        let r = run_sized(4, 8, 32);
        assert_eq!(r.rows.len(), 5);
        let j = r.render_json();
        assert!(j.contains("\"id\":\"e14\""));
        assert!(j.contains("sequential commits (embedded)"));
        assert!(j.contains("group commit"));
        assert!(j.contains("commits per fsync"));
        let fsyncs_per_commit: f64 = r.rows[2][5].parse().unwrap();
        assert!(
            fsyncs_per_commit < 1.0,
            "expected amortization, got {fsyncs_per_commit} fsyncs/commit"
        );
    }
}
