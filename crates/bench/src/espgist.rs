//! E-SPGIST — SP-GiST instantiations vs classical baselines (§7.1).
//!
//! The paper cites experiments "demonstrating the performance potential
//! of the class of space-partitioning tree indexes over the B+-tree and
//! R-tree indexes" for k-NN, regular-expression match, and
//! substring/prefix search.  This experiment reproduces that comparison:
//!
//! * strings: SP-GiST trie vs B+-tree — exact match, prefix match, regex
//!   match (the B+-tree serves regex by scanning its key range);
//! * points: SP-GiST kd-tree & point quadtree vs R-tree — window queries
//!   and k-NN.
//!
//! Metrics are logical node reads/writes (one node ≈ one page).

use bdbms_index::bptree::{prefix_range, BPlusTree};
use bdbms_index::kdtree::{KdTreeOps, PointQuery};
use bdbms_index::quadtree::QuadtreeOps;
use bdbms_index::regex::Regex;
use bdbms_index::trie::{StrQuery, TrieOps};
use bdbms_index::{RTree, Rect, SpGist};
use bdbms_seq::gen;
use rand::Rng;

use crate::report::Report;
use crate::workloads::rng;

const N_KEYS: usize = 20000;
const N_PROBES: usize = 500;

/// E-SPGIST report.
pub fn run() -> Report {
    let mut r = Report::new(
        "spgist",
        "SP-GiST (trie, kd-tree, quadtree) vs B+-tree / R-tree",
        "space-partitioning indexes outperform the classical baselines for \
         kNN, regex match, and prefix search ([16], cited in §7.1)",
    );
    r.headers(&[
        "workload",
        "structure",
        "build writes",
        "nodes",
        "storage B",
        "op",
        "avg reads/op",
        "hits",
    ]);
    let mut rng = rng();

    // ---------- strings ----------
    let keys: Vec<Vec<u8>> = (0..N_KEYS)
        .map(|i| {
            if i % 2 == 0 {
                gen::gene_id(i).into_bytes()
            } else {
                gen::dna(&mut rng, 8 + i % 6)
            }
        })
        .collect();
    let mut trie: SpGist<TrieOps, u32> = SpGist::new(TrieOps);
    let mut bpt: BPlusTree<Vec<u8>, u32> = BPlusTree::new();
    bpt.set_key_size_fn(|k| k.len() + 4);
    for (i, k) in keys.iter().enumerate() {
        trie.insert(k.clone(), i as u32);
        bpt.insert(k.clone(), i as u32);
    }
    let trie_build = trie.stats().writes();
    let bpt_build = bpt.stats().writes();

    // exact match
    let mut trie_reads = 0;
    let mut bpt_reads = 0;
    let mut hits = 0;
    trie.stats().reset();
    bpt.stats().reset();
    for i in (0..N_KEYS).step_by(N_KEYS / N_PROBES) {
        hits += trie.search(&StrQuery::Exact(keys[i].clone())).len();
        let _ = bpt.get(&keys[i]);
    }
    trie_reads += trie.stats().reads();
    bpt_reads += bpt.stats().reads();
    let probes = (N_KEYS / (N_KEYS / N_PROBES)) as u64;
    r.row(vec![
        "strings".into(),
        "SP-GiST trie".into(),
        trie_build.to_string(),
        trie.node_count().to_string(),
        trie.storage_bytes().to_string(),
        "exact".into(),
        (trie_reads / probes).to_string(),
        hits.to_string(),
    ]);
    r.row(vec![
        "strings".into(),
        "B+-tree".into(),
        bpt_build.to_string(),
        bpt.node_count().to_string(),
        bpt.storage_bytes().to_string(),
        "exact".into(),
        (bpt_reads / probes).to_string(),
        hits.to_string(),
    ]);

    // prefix match (JW00 → 1000 gene ids)
    trie.stats().reset();
    bpt.stats().reset();
    let t_hits = trie.search(&StrQuery::Prefix(b"JW00".to_vec())).len();
    let trie_prefix_reads = trie.stats().reads();
    let b_hits = prefix_range(&bpt, b"JW00").len();
    let bpt_prefix_reads = bpt.stats().reads();
    assert_eq!(t_hits, b_hits);
    r.row(vec![
        "strings".into(),
        "SP-GiST trie".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "prefix JW00*".into(),
        trie_prefix_reads.to_string(),
        t_hits.to_string(),
    ]);
    r.row(vec![
        "strings".into(),
        "B+-tree".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "prefix JW00*".into(),
        bpt_prefix_reads.to_string(),
        b_hits.to_string(),
    ]);

    // regex match: the trie prunes; the B+-tree must scan everything
    let pattern = "JW0[0-1][0-9][02468]";
    trie.stats().reset();
    let re = Regex::compile(pattern).unwrap();
    let t_hits = trie.search(&StrQuery::Regex(re)).len();
    let trie_regex_reads = trie.stats().reads();
    bpt.stats().reset();
    let re = Regex::compile(pattern).unwrap();
    let b_hits = bpt
        .iter_all()
        .iter()
        .filter(|(k, _)| re.is_match(k))
        .count();
    // B+-tree regex = full scan: charge all node reads
    let bpt_regex_reads = bpt.node_count() as u64;
    assert_eq!(t_hits, b_hits);
    r.row(vec![
        "strings".into(),
        "SP-GiST trie".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("regex {pattern}"),
        trie_regex_reads.to_string(),
        t_hits.to_string(),
    ]);
    r.row(vec![
        "strings".into(),
        "B+-tree (full scan)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("regex {pattern}"),
        bpt_regex_reads.to_string(),
        b_hits.to_string(),
    ]);

    // ---------- points ----------
    let pts: Vec<[f64; 2]> = (0..N_KEYS)
        .map(|_| [rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)])
        .collect();
    let mut kd: SpGist<KdTreeOps, u32> = SpGist::new(KdTreeOps);
    let mut qt: SpGist<QuadtreeOps, u32> = SpGist::new(QuadtreeOps);
    let mut rt = RTree::new();
    for (i, p) in pts.iter().enumerate() {
        kd.insert(*p, i as u32);
        qt.insert(*p, i as u32);
        rt.insert(Rect::point(p[0], p[1]), i as u64);
    }
    let builds = [
        (
            "SP-GiST kd-tree",
            kd.stats().writes(),
            kd.node_count(),
            kd.storage_bytes(),
        ),
        (
            "SP-GiST quadtree",
            qt.stats().writes(),
            qt.node_count(),
            qt.storage_bytes(),
        ),
        (
            "R-tree",
            rt.stats().writes(),
            rt.node_count(),
            rt.storage_bytes(),
        ),
    ];

    // window queries
    let windows: Vec<([f64; 2], [f64; 2])> = (0..N_PROBES)
        .map(|_| {
            let x = rng.gen_range(0.0..950.0);
            let y = rng.gen_range(0.0..950.0);
            ([x, y], [x + 25.0, y + 25.0])
        })
        .collect();
    kd.stats().reset();
    qt.stats().reset();
    rt.stats().reset();
    let mut kd_hits = 0;
    let mut qt_hits = 0;
    let mut rt_hits = 0;
    for (lo, hi) in &windows {
        kd_hits += kd.search(&PointQuery::Window(*lo, *hi)).len();
        qt_hits += qt.search(&PointQuery::Window(*lo, *hi)).len();
        rt_hits += rt.search(&Rect::new(*lo, *hi)).len();
    }
    assert_eq!(kd_hits, rt_hits);
    assert_eq!(qt_hits, rt_hits);
    let window_reads = [
        kd.stats().reads() / windows.len() as u64,
        qt.stats().reads() / windows.len() as u64,
        rt.stats().reads() / windows.len() as u64,
    ];

    // kNN
    kd.stats().reset();
    qt.stats().reset();
    rt.stats().reset();
    for i in 0..N_PROBES {
        let p = [(i as f64 * 7.3) % 1000.0, (i as f64 * 13.7) % 1000.0];
        let a = kd.knn(&p, 10);
        let b = qt.knn(&p, 10);
        let c = rt.knn(p, 10);
        debug_assert_eq!(a.len(), 10);
        debug_assert_eq!(b.len(), 10);
        debug_assert_eq!(c.len(), 10);
    }
    let knn_reads = [
        kd.stats().reads() / N_PROBES as u64,
        qt.stats().reads() / N_PROBES as u64,
        rt.stats().reads() / N_PROBES as u64,
    ];
    for (i, (name, build, nodes, storage)) in builds.iter().enumerate() {
        r.row(vec![
            "points".into(),
            (*name).into(),
            build.to_string(),
            nodes.to_string(),
            storage.to_string(),
            "window 25x25".into(),
            window_reads[i].to_string(),
            (rt_hits / windows.len()).to_string(),
        ]);
        r.row(vec![
            "points".into(),
            (*name).into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "kNN k=10".into(),
            knn_reads[i].to_string(),
            "10".into(),
        ]);
    }
    r.note("trie regex search prunes to a tiny fraction of the nodes a B+-tree scan touches");
    r.note("all structures verified to return identical window results");
    r
}
