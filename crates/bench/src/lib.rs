//! # bdbms-bench
//!
//! The reproduction harness: one experiment per figure/claim of the paper
//! (see DESIGN.md §4 for the experiment index).  Each experiment builds
//! its workload, runs the system, and returns a [`report::Report`] whose
//! rows are printed by the `reproduce` binary and recorded in
//! EXPERIMENTS.md.  Criterion wall-time benches live in `benches/`.

pub mod report;
pub mod workloads;

pub mod e01_dependency_concept;
pub mod e02_figure2;
pub mod e03_asql_vs_manual;
pub mod e04_archive_restore;
pub mod e05_storage_schemes;
pub mod e07_propagation_overhead;
pub mod e08_provenance;
pub mod e10_bitmaps;
pub mod e11_approval;
pub mod e12_sbc_tree;
pub mod e13_executor;
pub mod e14_server;
pub mod e15_ingest;
pub mod espgist;

use report::Report;

/// An experiment id paired with its runner.
pub type Experiment = (&'static str, fn() -> Report);

/// Every experiment in DESIGN.md order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("e01", e01_dependency_concept::run as fn() -> Report),
        ("e02", e02_figure2::run),
        ("e03", e03_asql_vs_manual::run),
        ("e04", e04_archive_restore::run),
        ("e05", e05_storage_schemes::run),
        ("e07", e07_propagation_overhead::run),
        ("e08", e08_provenance::run),
        ("e09", e01_dependency_concept::run_closures),
        ("e10", e10_bitmaps::run),
        ("e11", e11_approval::run),
        ("e12", e12_sbc_tree::run),
        ("e13", e13_executor::run),
        ("e14", e14_server::run),
        ("e15", e15_ingest::run),
        ("spgist", espgist::run),
    ]
}
