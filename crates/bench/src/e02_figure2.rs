//! E02 — The Figure 2 running example, checked cell by cell.
//!
//! Reproduces the two §3.4 worked examples verbatim:
//! * projecting GID from DB2_Gene must report **B1, B4, B5 only**;
//! * selecting the JW0080 tuple must report **B1, B3, B5**.

use crate::report::Report;
use crate::workloads::figure2_db;

/// Run the checks and report PASS/FAIL per paper statement.
pub fn run() -> Report {
    let mut r = Report::new(
        "e02",
        "Figure 2 running example (annotations A1-A3, B1-B5)",
        "§3.4: projection of GID -> {B1,B4,B5}; selection of JW0080 -> {B1,B3,B5}",
    );
    r.headers(&["check", "expected", "got", "status"]);
    let mut db = figure2_db();

    // projection check
    let qr = db
        .execute("SELECT GID FROM DB2_Gene ANNOTATION(GAnnotation)")
        .unwrap();
    let mut got: Vec<String> = qr
        .rows
        .iter()
        .flat_map(|row| row.anns[0].iter().map(|a| a.text()[..2].to_string()))
        .collect();
    got.sort();
    got.dedup();
    let expected = vec!["B1", "B4", "B5"];
    let pass = got == expected;
    r.row(vec![
        "project GID from DB2_Gene".into(),
        expected.join(","),
        got.join(","),
        if pass { "PASS" } else { "FAIL" }.into(),
    ]);

    // selection check
    let qr = db
        .execute("SELECT * FROM DB2_Gene ANNOTATION(GAnnotation) WHERE GID = 'JW0080'")
        .unwrap();
    let mut got: Vec<String> = qr.rows[0]
        .all_anns()
        .iter()
        .map(|a| a.text()[..2].to_string())
        .collect();
    got.sort();
    let expected = vec!["B1", "B3", "B5"];
    let pass = got == expected;
    r.row(vec![
        "select tuple JW0080 from DB2_Gene".into(),
        expected.join(","),
        got.join(","),
        if pass { "PASS" } else { "FAIL" }.into(),
    ]);

    // the intersect example: common genes carry annotations from both
    let qr = db
        .execute(
            "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) \
             INTERSECT \
             SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation) \
             ORDER BY GID",
        )
        .unwrap();
    let gids: Vec<String> = qr
        .rows
        .iter()
        .map(|row| row.values[0].to_string())
        .collect();
    let pass = gids == vec!["JW0055", "JW0080"];
    r.row(vec![
        "INTERSECT common genes".into(),
        "JW0055,JW0080".into(),
        gids.join(","),
        if pass { "PASS" } else { "FAIL" }.into(),
    ]);
    let jw80 = &qr.rows[1];
    let mut all: Vec<String> = jw80
        .all_anns()
        .iter()
        .map(|a| a.text()[..2].to_string())
        .collect();
    all.sort();
    all.dedup();
    let expected = vec!["A1", "A3", "B1", "B3", "B5"];
    let pass = all == expected;
    r.row(vec![
        "JW0080 annotations from BOTH tables".into(),
        expected.join(","),
        all.join(","),
        if pass { "PASS" } else { "FAIL" }.into(),
    ]);

    // storage-compactness aside from §3.1: B3 covers 5 cells with ONE record
    let table = db.catalog().table("DB2_Gene").unwrap();
    let set = table.ann_set("GAnnotation").unwrap();
    r.row(vec![
        "attachment records (rect scheme)".into(),
        "1 record per annotation (B1-B5)".into(),
        format!(
            "{} records for {} annotations",
            set.attachment_records(),
            set.len()
        ),
        if set.attachment_records() <= set.len() + 2 {
            "PASS"
        } else {
            "FAIL"
        }
        .into(),
    ]);
    r.note("the naive Figure 3 scheme would store B3 five times and A2/B1 per cell");
    r
}
