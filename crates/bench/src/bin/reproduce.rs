//! The reproduction harness binary.
//!
//! Runs every experiment in DESIGN.md §4 (or the ids passed as arguments)
//! and prints the paper-vs-measured tables.  `--markdown` renders the
//! EXPERIMENTS.md body instead of console tables.
//!
//! ```text
//! cargo run -p bdbms-bench --release --bin reproduce            # everything
//! cargo run -p bdbms-bench --release --bin reproduce -- e12     # one table
//! cargo run -p bdbms-bench --release --bin reproduce -- --markdown
//! ```

use std::time::Instant;

use bdbms_bench::{all_experiments, e12_sbc_tree};

/// Flags the harness understands; anything else starting with `--` is
/// rejected (a typo like `--jsn` silently falling through to console
/// output would corrupt scripted perf-gate pipelines).
const KNOWN_FLAGS: &[&str] = &["--markdown", "--json"];

/// Every runnable experiment: the DESIGN.md set plus the e12 companion
/// table (registered here because it shares e12's module).
fn experiments() -> Vec<bdbms_bench::Experiment> {
    let mut experiments = all_experiments();
    experiments.push(("e12b", e12_sbc_tree::run_prefix_range as fn() -> _));
    experiments
}

/// Usage text for error paths: flags and every registered experiment id,
/// so a typo'd invocation shows what *would* have worked.
fn usage() -> String {
    let ids: Vec<&str> = experiments().iter().map(|(id, _)| *id).collect();
    format!(
        "usage: reproduce [{}] [experiment id ...]\nexperiment ids: {}",
        KNOWN_FLAGS.join("|"),
        ids.join(", ")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if a.starts_with("--") && !KNOWN_FLAGS.contains(&a.as_str()) {
            eprintln!("unknown flag `{a}`\n{}", usage());
            std::process::exit(1);
        }
    }
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let selected: Vec<_> = experiments()
        .into_iter()
        .filter(|(id, _)| filter.is_empty() || filter.iter().any(|f| f.as_str() == *id))
        .collect();
    if selected.is_empty() {
        eprintln!("no experiment matches\n{}", usage());
        std::process::exit(1);
    }
    if !markdown && !json {
        println!("bdbms reproduction harness — CIDR 2007 paper experiments\n");
    }
    let t0 = Instant::now();
    let mut json_reports = Vec::new();
    for (id, f) in selected {
        let start = Instant::now();
        let mut report = f();
        let elapsed = start.elapsed();
        report.wall_ms = elapsed.as_secs_f64() * 1e3;
        if json {
            json_reports.push(report.render_json());
        } else if markdown {
            print!("{}", report.render_markdown());
        } else {
            print!("{}", report.render());
            println!("({id} completed in {:.2}s)\n", elapsed.as_secs_f64());
        }
    }
    if json {
        println!("[{}]", json_reports.join(","));
    } else if !markdown {
        println!("total: {:.2}s", t0.elapsed().as_secs_f64());
    }
}
