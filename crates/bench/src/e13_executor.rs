//! E13 — streaming executor: predicate pushdown + index-backed scans +
//! lazy annotation attachment vs. the naive materializing executor.
//!
//! Not a paper figure: this experiment tracks the engine's own executor
//! rework (the ROADMAP's "as fast as the hardware allows" line).  It
//! measures selective queries over a 100k-row Gene table and reports
//! wall time, rows fetched, and the speedup of the optimized path; the
//! `reproduce --json` output of this table is the perf trajectory future
//! PRs compare against.

use std::time::{Duration, Instant};

use bdbms_common::Value;
use bdbms_core::executor::{ExecOptions, ExecStats};
use bdbms_core::{Database, DurabilityOptions};

use crate::report::{ms, ratio, Report};
use crate::workloads::indexed_gene_db;

/// Mean wall time of `sql` under `opts`, adaptively repeated so fast
/// paths are measured over many iterations.
fn time_query(db: &Database, sql: &str, opts: &ExecOptions) -> (Duration, ExecStats) {
    // warm up (and capture stats once — they are deterministic)
    let (_, stats) = db.query_traced(sql, opts).expect("bench query");
    let once = {
        let s = Instant::now();
        let _ = db.query_traced(sql, opts).unwrap();
        s.elapsed()
    };
    // aim for ~300ms of measurement, capped to keep the harness quick
    let reps =
        (Duration::from_millis(300).as_nanos() / once.as_nanos().max(1)).clamp(2, 2000) as u32;
    let s = Instant::now();
    for _ in 0..reps {
        let _ = db.query_traced(sql, opts).unwrap();
    }
    (s.elapsed() / reps, stats)
}

/// Run E13 at the standard 100k-row scale.
pub fn run() -> Report {
    run_sized(100_000)
}

/// Per-call mean of `reps` one-shot `Database::execute` calls vs. `reps`
/// re-executions of one prepared statement through a `Session` — the
/// same point lookup, so the difference is pure parse/plan overhead
/// amortized away by the prepared-statement cache.
fn time_prepared(db: &mut Database, n: usize, reps: u32) -> (Duration, Duration) {
    let literal = format!("SELECT GID FROM Gene WHERE Len = {}", n / 2);
    db.execute(&literal).expect("warm-up");
    let s = Instant::now();
    for _ in 0..reps {
        let r = db.execute(&literal).unwrap();
        debug_assert_eq!(r.rows.len(), 1);
    }
    let one_shot = s.elapsed() / reps;

    let session = db.session("admin");
    let stmt = session
        .prepare("SELECT GID FROM Gene WHERE Len = ?")
        .unwrap();
    let params = [Value::Int((n / 2) as i64)];
    // warm-up fills the generation-stamped plan cache
    session
        .query(&stmt, &params)
        .unwrap()
        .into_result()
        .unwrap();
    let s = Instant::now();
    for _ in 0..reps {
        let mut cursor = session.query(&stmt, &params).unwrap();
        let row = cursor.next_row().unwrap().expect("one matching row");
        std::hint::black_box(row);
    }
    let prepared = s.elapsed() / reps;
    (one_shot, prepared)
}

/// Per-cycle mean of `BEGIN; INSERT <batch rows>; COMMIT` vs. the same
/// cycle ending in `ROLLBACK`, on a scratch table.  Both legs pay the
/// undo-log *recording* cost; the rollback leg additionally replays the
/// log (row deletes + snapshot restore).  The gated ratio therefore
/// pins the *replay* path — a pathological rollback drags it toward 0
/// and trips the gate — while recording regressions inflate both legs
/// alike and show up in the report's absolute ms columns, not the
/// ratio.
fn time_txn_batch(db: &mut Database, batch: usize, reps: u32) -> (Duration, Duration) {
    db.execute("CREATE TABLE TxnScratch (K INT, V TEXT)")
        .expect("scratch table");
    let mut insert = String::from("INSERT INTO TxnScratch VALUES ");
    for i in 0..batch {
        if i > 0 {
            insert.push(',');
        }
        insert.push_str(&format!("({i}, 'v{i}')"));
    }
    // warm-up one full cycle of each shape
    db.execute("BEGIN").unwrap();
    db.execute(&insert).unwrap();
    db.execute("ROLLBACK").unwrap();
    let mut commit_total = Duration::ZERO;
    for _ in 0..reps {
        let s = Instant::now();
        db.execute("BEGIN").unwrap();
        db.execute(&insert).unwrap();
        db.execute("COMMIT").unwrap();
        commit_total += s.elapsed();
        // cleanup outside the timed window
        db.execute("DELETE FROM TxnScratch").unwrap();
    }
    let mut rollback_total = Duration::ZERO;
    for _ in 0..reps {
        let s = Instant::now();
        db.execute("BEGIN").unwrap();
        db.execute(&insert).unwrap();
        db.execute("ROLLBACK").unwrap();
        rollback_total += s.elapsed();
    }
    db.execute("DROP TABLE TxnScratch").unwrap();
    (commit_total / reps, rollback_total / reps)
}

/// Per-commit mean of single-row `INSERT`s (each an implicit
/// transaction) against a durable database under `Durability::Full`
/// (WAL append + fsync per commit) vs `Durability::NoSync` (WAL append
/// only).  The gated ratio pins the fsync discipline: Full collapsing
/// towards NoSync would mean commits stopped syncing; the absolute
/// NoSync column exposes pure WAL-append overhead regressions.
fn time_commit_durability(reps: u32) -> (Duration, Duration) {
    // unique per call: two tests in one cargo-test process may run this
    // concurrently, and sharing a directory would race create/remove
    static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let base = std::env::temp_dir().join(format!(
        "bdbms-e13-durability-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let mut times = Vec::new();
    for (tag, opts) in [
        ("full", DurabilityOptions::default()),
        ("nosync", DurabilityOptions::no_sync()),
    ] {
        let dir = base.join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Database::create_with(&dir, opts).expect("durable bench db");
        db.execute("CREATE TABLE Durable (K INT, V TEXT)").unwrap();
        db.execute("INSERT INTO Durable VALUES (-1, 'warm-up')")
            .unwrap();
        let s = Instant::now();
        for i in 0..reps {
            db.execute(&format!("INSERT INTO Durable VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        times.push(s.elapsed() / reps);
        // skip the shutdown checkpoint: it is not part of the commit path
        db.simulate_crash();
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
    (times[0], times[1])
}

/// Per-scan mean of the same full-table SELECT against a durable,
/// checkpointed database: cold (the buffer pool is emptied before each
/// scan, so every page comes off the medium and has its CRC-32 trailer
/// verified on the way in) vs warm (every page is a pool hit, no
/// verification).  The cold column carries the entire checksummed-read
/// path; the ratio is gated loosely because cold reads ride the OS page
/// cache, which varies wildly across CI runners.
fn time_checksummed_read(rows: usize, reps: u32) -> (Duration, Duration) {
    static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bdbms-e13-cksum-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db =
        Database::create_with(&dir, DurabilityOptions::no_sync()).expect("durable bench db");
    db.execute("CREATE TABLE Scan (K INT, V TEXT)").unwrap();
    let mut insert = String::from("INSERT INTO Scan VALUES ");
    for i in 0..rows {
        if i > 0 {
            insert.push(',');
        }
        insert.push_str(&format!("({i}, 'value-{i:06}')"));
    }
    db.execute(&insert).unwrap();
    // fold the rows into the checkpoint image so cold scans read real
    // checksummed pages, not WAL-replayed in-memory state
    db.checkpoint().expect("bench checkpoint");
    let sql = "SELECT K FROM Scan";
    db.execute(sql).unwrap(); // warm-up
    let mut cold_total = Duration::ZERO;
    for _ in 0..reps {
        db.pool().clear_cache().expect("drop cached frames");
        let s = Instant::now();
        let r = db.execute(sql).unwrap();
        cold_total += s.elapsed();
        debug_assert_eq!(r.rows.len(), rows);
    }
    let s = Instant::now();
    for _ in 0..reps {
        let r = db.execute(sql).unwrap();
        debug_assert_eq!(r.rows.len(), rows);
    }
    let warm_total = s.elapsed();
    db.simulate_crash(); // skip the shutdown checkpoint
    let _ = std::fs::remove_dir_all(&dir);
    (cold_total / reps, warm_total / reps)
}

/// Per-scan mean of the same full-table aggregate with buffer-pool
/// metric recording disabled vs enabled (the production default) — the
/// price of the always-on counters on the hottest page-fetch path.
/// The legs alternate and each keeps its best pass: the minimum is
/// robust to one-off scheduler noise, which matters because the gate on
/// this ratio is tight (~5%, see scripts/check_perf.py).
fn time_instrumentation(db: &Database) -> (Duration, Duration) {
    let sql = "SELECT COUNT(*), SUM(Len), MIN(Len), MAX(Len) FROM Gene";
    let opts = ExecOptions::default();
    let mut off = Duration::MAX;
    let mut on = Duration::MAX;
    for _ in 0..3 {
        db.pool().set_metrics_enabled(false);
        off = off.min(time_query(db, sql, &opts).0);
        db.pool().set_metrics_enabled(true);
        on = on.min(time_query(db, sql, &opts).0);
    }
    (off, on)
}

/// Run E13 at a chosen table size (tests use a smaller one).
pub fn run_sized(n: usize) -> Report {
    let mut db = indexed_gene_db(n);
    let mut report = Report::new(
        "e13",
        &format!("streaming executor vs naive scan ({n} rows)"),
        "engine rework: pushdown + index scans + lazy annotations \
         (ROADMAP north star, not a paper figure)",
    );
    report.headers(&[
        "query",
        "selectivity",
        "naive ms",
        "optimized ms",
        "naive rows fetched",
        "optimized rows fetched",
        "speedup",
    ]);
    let queries = [
        (
            "point (indexed)",
            format!("SELECT GID FROM Gene WHERE Len = {}", n / 2),
            format!("{:.4}%", 100.0 / n as f64),
        ),
        (
            "1% range (indexed)",
            format!(
                "SELECT GID FROM Gene WHERE Len >= {} AND Len < {}",
                n / 2,
                n / 2 + n / 100
            ),
            "1%".to_string(),
        ),
        (
            "point + annotations",
            format!(
                "SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = {}",
                n / 2
            ),
            format!("{:.4}%", 100.0 / n as f64),
        ),
        (
            // two competing indexes: Bucket = b matches 1% of the table,
            // the Len range matches 0.1% — stats must pick len_idx over
            // the first-seen equality on bucket_idx
            "multi-index choice",
            format!(
                "SELECT GID FROM Gene WHERE Bucket = 7 AND Len >= {} AND Len < {}",
                n / 2,
                n / 2 + (n / 1000).max(1)
            ),
            "0.1%".to_string(),
        ),
        (
            // full-scan LIMIT: the pushed limit stops the scan after 10
            // tuples; the naive path materializes everything first
            "limit 10 (full scan)",
            "SELECT GID, GName FROM Gene LIMIT 10".to_string(),
            "10 rows".to_string(),
        ),
        (
            // join order: FROM order hash-builds the 100k-row Gene table;
            // the cost-based order streams Gene and builds the small Tag
            "join (reordered)",
            "SELECT G.GID, T.TName FROM Tag T, Gene G WHERE T.Len = G.Len".to_string(),
            "1%".to_string(),
        ),
    ];
    let mut speedups = Vec::new();
    for (label, sql, selectivity) in &queries {
        let (naive_t, naive_s) = time_query(&db, sql, &ExecOptions::naive());
        let (opt_t, opt_s) = time_query(&db, sql, &ExecOptions::default());
        let speedup = naive_t.as_secs_f64() / opt_t.as_secs_f64().max(1e-12);
        speedups.push((label.to_string(), speedup));
        report.row(vec![
            label.to_string(),
            selectivity.clone(),
            ms(naive_t),
            ms(opt_t),
            naive_s.rows_fetched.to_string(),
            opt_s.rows_fetched.to_string(),
            ratio(naive_t.as_secs_f64(), opt_t.as_secs_f64()),
        ]);
    }
    // vectorized vs row-at-a-time: the same plan (both legs run the
    // optimized planner), differing only in the operator interface —
    // next_batch() with per-conjunct tight loops vs next() per row
    let row_opts = ExecOptions::builder().batch(false).build();
    let batch_opts = ExecOptions::default();
    let batch_queries = [
        (
            // every operator pull touches every row: the purest measure
            // of per-row dispatch overhead, and the gated ≥2x floor
            "full-scan aggregate (batch vs row)",
            "SELECT COUNT(*), SUM(Len), MIN(Len), MAX(Len) FROM Gene".to_string(),
            "100%".to_string(),
        ),
        (
            // non-indexable predicate: the pushed conjunct runs as a
            // tight loop over each scan batch
            "selective filter scan (batch vs row)",
            "SELECT GID FROM Gene WHERE Len % 10 = 3".to_string(),
            "10%".to_string(),
        ),
        (
            "hash join (batch vs row)",
            "SELECT G.GID, T.TName FROM Tag T, Gene G WHERE T.Len = G.Len".to_string(),
            "1%".to_string(),
        ),
    ];
    for (label, sql, selectivity) in &batch_queries {
        let (row_t, row_s) = time_query(&db, sql, &row_opts);
        let (batch_t, batch_s) = time_query(&db, sql, &batch_opts);
        let speedup = row_t.as_secs_f64() / batch_t.as_secs_f64().max(1e-12);
        speedups.push((label.to_string(), speedup));
        report.row(vec![
            label.to_string(),
            selectivity.clone(),
            ms(row_t),
            ms(batch_t),
            row_s.rows_fetched.to_string(),
            batch_s.rows_fetched.to_string(),
            ratio(row_t.as_secs_f64(), batch_t.as_secs_f64()),
        ]);
    }
    // prepared-statement amortization: 1,000 re-executions of the same
    // point lookup, one-shot execute (re-parse + re-plan per call) vs. a
    // prepared statement streaming off its cached AST + plan
    let reps = 1000;
    let (one_shot, prepared) = time_prepared(&mut db, n, reps);
    let speedup = one_shot.as_secs_f64() / prepared.as_secs_f64().max(1e-12);
    speedups.push(("prepared point (1000x)".to_string(), speedup));
    report.row(vec![
        "prepared point (1000x)".to_string(),
        format!("{:.4}%", 100.0 / n as f64),
        ms(one_shot),
        ms(prepared),
        reps.to_string(),
        reps.to_string(),
        ratio(one_shot.as_secs_f64(), prepared.as_secs_f64()),
    ]);
    // transactional batch insert: commit (undo-log recording only) vs
    // rollback (recording + replay); the ratio pins the undo-log overhead
    let batch = (n / 100).max(10);
    let (commit_t, rollback_t) = time_txn_batch(&mut db, batch, 25);
    let txn_speedup = commit_t.as_secs_f64() / rollback_t.as_secs_f64().max(1e-12);
    speedups.push((
        "txn batch insert (commit vs rollback)".to_string(),
        txn_speedup,
    ));
    report.row(vec![
        "txn batch insert (commit vs rollback)".to_string(),
        format!("{batch} rows"),
        ms(commit_t),
        ms(rollback_t),
        batch.to_string(),
        batch.to_string(),
        ratio(commit_t.as_secs_f64(), rollback_t.as_secs_f64()),
    ]);
    // commit durability: WAL fsync per commit (Full) vs buffered (NoSync)
    let dur_reps = (n / 500).clamp(20, 200) as u32;
    let (full_t, nosync_t) = time_commit_durability(dur_reps);
    let dur_speedup = full_t.as_secs_f64() / nosync_t.as_secs_f64().max(1e-12);
    speedups.push((
        "commit durability (Full vs NoSync)".to_string(),
        dur_speedup,
    ));
    report.row(vec![
        "commit durability (Full vs NoSync)".to_string(),
        "1 row/txn".to_string(),
        ms(full_t),
        ms(nosync_t),
        dur_reps.to_string(),
        dur_reps.to_string(),
        ratio(full_t.as_secs_f64(), nosync_t.as_secs_f64()),
    ]);
    // checksummed reads: cold scans re-fetch (and CRC-verify) every page
    let scan_rows = (n / 10).clamp(100, 10_000);
    let cksum_reps = 10;
    let (cold_t, warm_t) = time_checksummed_read(scan_rows, cksum_reps);
    let cksum_speedup = cold_t.as_secs_f64() / warm_t.as_secs_f64().max(1e-12);
    speedups.push(("checksummed read (cold vs warm)".to_string(), cksum_speedup));
    report.row(vec![
        "checksummed read (cold vs warm)".to_string(),
        format!("{scan_rows} rows"),
        ms(cold_t),
        ms(warm_t),
        scan_rows.to_string(),
        scan_rows.to_string(),
        ratio(cold_t.as_secs_f64(), warm_t.as_secs_f64()),
    ]);
    // instrumentation overhead: the same aggregate scan with buffer-pool
    // counters off vs on; the ratio hovers at ~1.0 and is gated with an
    // absolute floor of 0.95 — always-on metrics may cost at most ~5%
    let (off_t, on_t) = time_instrumentation(&db);
    let inst_speedup = off_t.as_secs_f64() / on_t.as_secs_f64().max(1e-12);
    speedups.push((
        "instrumentation overhead (metrics on vs off)".to_string(),
        inst_speedup,
    ));
    report.row(vec![
        "instrumentation overhead (metrics on vs off)".to_string(),
        "100%".to_string(),
        ms(off_t),
        ms(on_t),
        n.to_string(),
        n.to_string(),
        ratio(off_t.as_secs_f64(), on_t.as_secs_f64()),
    ]);
    for (label, s) in &speedups {
        report.note(format!("{label}: {s:.1}x"));
    }
    report.note(
        "optimized path probes the Len B+-tree and attaches annotations \
         only to surviving tuples; naive path materializes and annotates \
         every row before filtering",
    );
    report.note(
        "planner workloads: multi-index choice picks the more selective \
         index by stats, LIMIT terminates the scan after 10 tuples, and \
         the join streams Gene while hash-building the small Tag table",
    );
    report.note(
        "batch vs row rows: identical plans, different operator API — \
         next_batch() moves up to 1024 tuples per virtual call with \
         per-conjunct tight loops and a streaming aggregate accumulator, \
         next() moves one; the 'ms' columns are row-path vs batch-path",
    );
    report.note(
        "prepared point: Session::prepare caches the parsed AST and the \
         generation-stamped plan, so 1,000 re-executions skip lex/parse/\
         plan and stream one row each off the index probe",
    );
    report.note(
        "txn batch insert: BEGIN + batch INSERT + COMMIT vs the same \
         cycle ending in ROLLBACK; the gated ratio pins undo-log replay \
         (recording cost is in both legs' absolute times, ungated)",
    );
    report.note(
        "checksummed read: the same full scan of a checkpointed table, \
         cold (cache cleared, every page read off the medium with its \
         CRC-32 trailer verified) vs warm (pool hits); gated loosely — \
         the cold leg rides the OS page cache (see scripts/check_perf.py)",
    );
    report.note(
        "instrumentation overhead: the full-scan aggregate with \
         buffer-pool metric recording disabled ('naive ms' column) vs \
         the always-on production default ('optimized ms'); the ratio \
         sits at ~1.0x and scripts/check_perf.py holds it above an \
         absolute 0.95 floor — counters may cost at most ~5%",
    );
    report.note(
        "commit durability: per-commit time of single-row implicit \
         transactions against Database::create(path) under Full (WAL \
         fsync each commit) vs NoSync (buffered WAL); the ratio is the \
         price of the fsync barrier and is gated loosely (fsync latency \
         is hardware-dependent — see scripts/check_perf.py)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic shape check at a small scale: the optimized path
    /// must fetch only the qualifying rows (wall-clock speedup is
    /// asserted by the release-mode bench, not here).
    #[test]
    fn optimized_path_fetches_only_qualifying_rows() {
        let n = 2000;
        let db = indexed_gene_db(n);
        let sql = format!("SELECT GID FROM Gene WHERE Len = {}", n / 2);
        let (_, naive) = db.query_traced(&sql, &ExecOptions::naive()).unwrap();
        let (_, opt) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
        assert_eq!(naive.rows_fetched, n as u64);
        assert_eq!(opt.rows_fetched, 1);
        assert_eq!(opt.index_probes, 1);
        assert_eq!(opt.anns_attached, 0, "no ANNOTATION clause in the query");

        // with ANNOTATION(Curation), the naive path attaches the GName
        // annotation to every scanned row; the lazy path only to the one
        // surviving tuple
        let sql = format!(
            "SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = {}",
            n / 2
        );
        let (_, naive) = db.query_traced(&sql, &ExecOptions::naive()).unwrap();
        let (_, opt) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
        assert!(
            naive.anns_attached >= n as u64,
            "eager attach covers every row's GName (got {})",
            naive.anns_attached
        );
        assert_eq!(opt.anns_attached, 1, "lazy attach: one surviving tuple");
    }

    #[test]
    fn report_has_fourteen_rows_and_json_renders() {
        let r = run_sized(3000);
        assert_eq!(r.rows.len(), 14);
        let j = r.render_json();
        assert!(j.contains("\"id\":\"e13\""));
        assert!(j.contains("instrumentation overhead (metrics on vs off)"));
        assert!(j.contains("txn batch insert (commit vs rollback)"));
        assert!(j.contains("commit durability (Full vs NoSync)"));
        assert!(j.contains("checksummed read (cold vs warm)"));
        assert!(j.contains("full-scan aggregate (batch vs row)"));
        assert!(j.contains("selective filter scan (batch vs row)"));
        assert!(j.contains("hash join (batch vs row)"));
    }

    /// The instrumentation workload must leave metric recording back on
    /// (the production default) and produce sane timings.
    #[test]
    fn instrumentation_workload_restores_metrics() {
        let mut db = indexed_gene_db(500);
        let (off_t, on_t) = time_instrumentation(&db);
        assert!(off_t > Duration::ZERO && on_t > Duration::ZERO);
        let before = db.pool().metrics().hits.get();
        db.execute("SELECT COUNT(*) FROM Gene").unwrap();
        assert!(
            db.pool().metrics().hits.get() > before,
            "pool counters must be recording again after the workload"
        );
    }

    /// The checksummed-read workload must produce sane timings and a
    /// cold leg at least as slow as the warm one (it does strictly more
    /// work: page fetch + CRC verification per page).
    #[test]
    fn checksummed_read_workload_runs_clean() {
        let (cold_t, warm_t) = time_checksummed_read(300, 3);
        assert!(cold_t > Duration::ZERO && warm_t > Duration::ZERO);
    }

    /// The durability workload must produce sane (non-zero) timings
    /// (the helper cleans up its own per-call temp directories).
    #[test]
    fn commit_durability_workload_runs_clean() {
        let (full_t, nosync_t) = time_commit_durability(10);
        assert!(full_t > Duration::ZERO && nosync_t > Duration::ZERO);
    }

    /// The transactional batch cycle must be exact: commit keeps every
    /// row, rollback keeps none, and the cycle leaves no scratch state.
    #[test]
    fn txn_batch_workload_is_self_cleaning() {
        let mut db = indexed_gene_db(200);
        let (commit_t, rollback_t) = time_txn_batch(&mut db, 50, 2);
        assert!(commit_t > Duration::ZERO && rollback_t > Duration::ZERO);
        assert!(
            db.catalog().table("TxnScratch").is_err(),
            "scratch table dropped after the workload"
        );
    }

    /// The cost-based planner must pick the more selective of two
    /// competing indexes, terminate LIMIT scans after O(limit) tuples,
    /// and stream the big join input instead of hash-building it.
    #[test]
    fn planner_decisions_on_the_e13_workloads() {
        let n = 2000;
        let db = indexed_gene_db(n);

        // multi-index: Bucket = 7 matches n/100 rows, the Len range
        // matches n/1000 — stats pick len_idx
        let sql = format!(
            "SELECT GID FROM Gene WHERE Bucket = 7 AND Len >= {} AND Len < {}",
            n / 2,
            n / 2 + n / 1000
        );
        let (_, st) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
        assert_eq!(st.chosen_indexes, vec!["len_idx".to_string()]);
        // flipped selectivities: a table-wide Len range loses to Bucket
        let sql = format!("SELECT GID FROM Gene WHERE Bucket = 7 AND Len >= 0 AND Len < {n}");
        let (_, st) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
        assert_eq!(st.chosen_indexes, vec!["bucket_idx".to_string()]);

        // LIMIT pushdown: the scan stops after 10 tuples
        let sql = "SELECT GID, GName FROM Gene LIMIT 10";
        let (naive_r, naive) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
        let (opt_r, opt) = db.query_traced(sql, &ExecOptions::default()).unwrap();
        assert_eq!(naive.rows_fetched, n as u64);
        assert_eq!(naive.rows_limit_discarded, n as u64 - 10);
        assert_eq!(opt.rows_fetched, 10);
        assert_eq!(opt.limit_pushdowns, 1);
        assert_eq!(opt.rows_limit_discarded, 0);
        // full-scan order is row order on both paths, so the kept subset
        // is identical
        assert_eq!(
            naive_r.rows.iter().map(|r| &r.values).collect::<Vec<_>>(),
            opt_r.rows.iter().map(|r| &r.values).collect::<Vec<_>>()
        );

        // join order: FROM lists Tag first, the planner streams Gene
        let sql = "SELECT G.GID, T.TName FROM Tag T, Gene G WHERE T.Len = G.Len";
        let (_, naive) = db.query_traced(sql, &ExecOptions::naive()).unwrap();
        let (_, opt) = db.query_traced(sql, &ExecOptions::default()).unwrap();
        assert_eq!(naive.join_order, vec![0, 1], "naive keeps FROM order");
        assert_eq!(opt.join_order, vec![1, 0], "Gene (big) streams first");
    }
}
