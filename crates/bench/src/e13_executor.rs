//! E13 — streaming executor: predicate pushdown + index-backed scans +
//! lazy annotation attachment vs. the naive materializing executor.
//!
//! Not a paper figure: this experiment tracks the engine's own executor
//! rework (the ROADMAP's "as fast as the hardware allows" line).  It
//! measures selective queries over a 100k-row Gene table and reports
//! wall time, rows fetched, and the speedup of the optimized path; the
//! `reproduce --json` output of this table is the perf trajectory future
//! PRs compare against.

use std::time::{Duration, Instant};

use bdbms_core::executor::{ExecOptions, ExecStats};
use bdbms_core::Database;

use crate::report::{ms, ratio, Report};
use crate::workloads::indexed_gene_db;

/// Mean wall time of `sql` under `opts`, adaptively repeated so fast
/// paths are measured over many iterations.
fn time_query(db: &Database, sql: &str, opts: &ExecOptions) -> (Duration, ExecStats) {
    // warm up (and capture stats once — they are deterministic)
    let (_, stats) = db.query_traced(sql, opts).expect("bench query");
    let once = {
        let s = Instant::now();
        let _ = db.query_traced(sql, opts).unwrap();
        s.elapsed()
    };
    // aim for ~300ms of measurement, capped to keep the harness quick
    let reps =
        (Duration::from_millis(300).as_nanos() / once.as_nanos().max(1)).clamp(2, 2000) as u32;
    let s = Instant::now();
    for _ in 0..reps {
        let _ = db.query_traced(sql, opts).unwrap();
    }
    (s.elapsed() / reps, stats)
}

/// Run E13 at the standard 100k-row scale.
pub fn run() -> Report {
    run_sized(100_000)
}

/// Run E13 at a chosen table size (tests use a smaller one).
pub fn run_sized(n: usize) -> Report {
    let db = indexed_gene_db(n);
    let mut report = Report::new(
        "e13",
        &format!("streaming executor vs naive scan ({n} rows)"),
        "engine rework: pushdown + index scans + lazy annotations \
         (ROADMAP north star, not a paper figure)",
    );
    report.headers(&[
        "query",
        "selectivity",
        "naive ms",
        "optimized ms",
        "naive rows fetched",
        "optimized rows fetched",
        "speedup",
    ]);
    let queries = [
        (
            "point (indexed)",
            format!("SELECT GID FROM Gene WHERE Len = {}", n / 2),
            format!("{:.4}%", 100.0 / n as f64),
        ),
        (
            "1% range (indexed)",
            format!(
                "SELECT GID FROM Gene WHERE Len >= {} AND Len < {}",
                n / 2,
                n / 2 + n / 100
            ),
            "1%".to_string(),
        ),
        (
            "point + annotations",
            format!(
                "SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = {}",
                n / 2
            ),
            format!("{:.4}%", 100.0 / n as f64),
        ),
    ];
    let mut speedups = Vec::new();
    for (label, sql, selectivity) in &queries {
        let (naive_t, naive_s) = time_query(&db, sql, &ExecOptions::naive());
        let (opt_t, opt_s) = time_query(&db, sql, &ExecOptions::default());
        let speedup = naive_t.as_secs_f64() / opt_t.as_secs_f64().max(1e-12);
        speedups.push((label.to_string(), speedup));
        report.row(vec![
            label.to_string(),
            selectivity.clone(),
            ms(naive_t),
            ms(opt_t),
            naive_s.rows_fetched.to_string(),
            opt_s.rows_fetched.to_string(),
            ratio(naive_t.as_secs_f64(), opt_t.as_secs_f64()),
        ]);
    }
    for (label, s) in &speedups {
        report.note(format!("{label}: {s:.1}x"));
    }
    report.note(
        "optimized path probes the Len B+-tree and attaches annotations \
         only to surviving tuples; naive path materializes and annotates \
         every row before filtering",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic shape check at a small scale: the optimized path
    /// must fetch only the qualifying rows (wall-clock speedup is
    /// asserted by the release-mode bench, not here).
    #[test]
    fn optimized_path_fetches_only_qualifying_rows() {
        let n = 2000;
        let db = indexed_gene_db(n);
        let sql = format!("SELECT GID FROM Gene WHERE Len = {}", n / 2);
        let (_, naive) = db.query_traced(&sql, &ExecOptions::naive()).unwrap();
        let (_, opt) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
        assert_eq!(naive.rows_fetched, n as u64);
        assert_eq!(opt.rows_fetched, 1);
        assert_eq!(opt.index_probes, 1);
        assert_eq!(opt.anns_attached, 0, "no ANNOTATION clause in the query");

        // with ANNOTATION(Curation), the naive path attaches the GName
        // annotation to every scanned row; the lazy path only to the one
        // surviving tuple
        let sql = format!(
            "SELECT GID, GName FROM Gene ANNOTATION(Curation) WHERE Len = {}",
            n / 2
        );
        let (_, naive) = db.query_traced(&sql, &ExecOptions::naive()).unwrap();
        let (_, opt) = db.query_traced(&sql, &ExecOptions::default()).unwrap();
        assert!(
            naive.anns_attached >= n as u64,
            "eager attach covers every row's GName (got {})",
            naive.anns_attached
        );
        assert_eq!(opt.anns_attached, 1, "lazy attach: one surviving tuple");
    }

    #[test]
    fn report_has_three_rows_and_json_renders() {
        let r = run_sized(3000);
        assert_eq!(r.rows.len(), 3);
        let j = r.render_json();
        assert!(j.contains("\"id\":\"e13\""));
    }
}
