//! E07 — Cost of the Figure 7 A-SQL operators.
//!
//! What does annotation propagation cost on top of a plain SELECT, and
//! what do AWHERE / FILTER / PROMOTE add?

use std::time::Instant;

use bdbms_core::Database;

use crate::report::{ms, Report};
use crate::workloads::synthetic_gene_db;

fn time_query(db: &mut Database, q: &str, reps: u32) -> (usize, std::time::Duration) {
    let mut rows = 0;
    let t0 = Instant::now();
    for _ in 0..reps {
        rows = db.execute(q).unwrap().rows.len();
    }
    (rows, t0.elapsed() / reps)
}

/// E07 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e07",
        "A-SQL operator overhead (Figure 7)",
        "ANNOTATION propagation, AWHERE, FILTER, PROMOTE as increments over a \
         plain SELECT",
    );
    r.headers(&["rows", "query variant", "out rows", "ms/query", "vs plain"]);
    for n in [1000usize, 4000] {
        let mut db = synthetic_gene_db(n, 60);
        let reps = 5;
        let variants: Vec<(&str, String)> = vec![
            ("plain SELECT", "SELECT * FROM DB1_Gene".to_string()),
            (
                "+ ANNOTATION",
                "SELECT * FROM DB1_Gene ANNOTATION(GAnnotation)".to_string(),
            ),
            (
                "+ AWHERE",
                "SELECT * FROM DB1_Gene ANNOTATION(GAnnotation) \
                 AWHERE CONTAINS 'curator'"
                    .to_string(),
            ),
            (
                "+ FILTER",
                "SELECT * FROM DB1_Gene ANNOTATION(GAnnotation) \
                 FILTER CONTAINS 'Source'"
                    .to_string(),
            ),
            (
                "+ PROMOTE",
                "SELECT GID PROMOTE (GSequence, GName) FROM DB1_Gene \
                 ANNOTATION(GAnnotation)"
                    .to_string(),
            ),
            (
                "+ DISTINCT (ann-union)",
                "SELECT DISTINCT GName FROM DB1_Gene ANNOTATION(GAnnotation)".to_string(),
            ),
        ];
        let mut plain_ms = None;
        for (label, q) in &variants {
            let (rows, t) = time_query(&mut db, q, reps);
            let base = *plain_ms.get_or_insert(t.as_secs_f64());
            r.row(vec![
                n.to_string(),
                (*label).into(),
                rows.to_string(),
                ms(t),
                format!("{:.2}x", t.as_secs_f64() / base),
            ]);
        }
    }
    r.note("annotation propagation costs a constant factor over the plain scan; AWHERE prunes output, FILTER keeps all tuples");
    r
}
