//! E03 — A-SQL propagation vs the manual 3-statement workaround (§3,
//! steps (a)–(c); Figure 3).
//!
//! The paper motivates A-SQL by showing what users must write *without*
//! it: with annotations stored in ordinary columns (Figure 3's scheme),
//! retrieving the common genes **with** their annotations takes three
//! SELECT statements and two intermediate results.  With A-SQL it is one
//! INTERSECT with `ANNOTATION(...)`.
//!
//! The manual variant here is implemented faithfully: Figure 3 schema
//! (one `Ann_*` text column per data column), the paper's statements
//! (a), (b), (c), with the intermediate relations materialized the way a
//! user script would.

use std::time::Instant;

use bdbms_core::Database;

use crate::report::{ms, ratio, Report};
use crate::workloads::{gene_attrs, synthetic_gene_db};

/// Build the Figure 3 variant: annotations live in ordinary columns.
fn fig3_db(n: usize, seq_len: usize) -> Database {
    let mut db = Database::new_in_memory();
    for (t, offset, src) in [("DB1_GeneF3", 0usize, "S1"), ("DB2_GeneF3", n / 2, "S2")] {
        db.execute(&format!(
            "CREATE TABLE {t} (GID TEXT, GName TEXT, GSequence TEXT, \
             Ann_GID TEXT, Ann_GName TEXT, Ann_GSequence TEXT)"
        ))
        .unwrap();
        for i in 0..n {
            let (gid, name, seq) = gene_attrs(offset + i, seq_len);
            // column-level provenance is REPEATED per row (the scheme's
            // weakness the paper calls out), row notes every 10th row
            let note = if i % 10 == 0 {
                format!("note {i}")
            } else {
                String::new()
            };
            db.execute(&format!(
                "INSERT INTO {t} VALUES ('{gid}', '{name}', '{seq}', \
                 '{note}', '{note}', 'from {src},{note}')"
            ))
            .unwrap();
        }
    }
    db
}

/// The paper's manual steps (a)–(c) over the Figure 3 schema.
fn manual_propagation(db: &mut Database) -> (usize, std::time::Duration) {
    let t0 = Instant::now();
    // (a) intersect the data columns only
    let r1 = db
        .execute(
            "SELECT GID, GName, GSequence FROM DB1_GeneF3 \
             INTERSECT SELECT GID, GName, GSequence FROM DB2_GeneF3",
        )
        .unwrap();
    // materialize R1 the way a user script would
    db.execute("CREATE TABLE R1 (GID TEXT, GName TEXT, GSequence TEXT)")
        .unwrap();
    if !r1.rows.is_empty() {
        let values: Vec<String> = r1
            .rows
            .iter()
            .map(|row| {
                format!(
                    "('{}', '{}', '{}')",
                    row.values[0], row.values[1], row.values[2]
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO R1 VALUES {}", values.join(", ")))
            .unwrap();
    }
    // (b) join back to DB1 to pick up its annotation columns
    let r2 = db
        .execute(
            "SELECT R.GID, R.GName, R.GSequence, \
             G.Ann_GID, G.Ann_GName, G.Ann_GSequence \
             FROM R1 R, DB1_GeneF3 G WHERE R.GID = G.GID",
        )
        .unwrap();
    db.execute(
        "CREATE TABLE R2 (GID TEXT, GName TEXT, GSequence TEXT, \
         Ann_GID TEXT, Ann_GName TEXT, Ann_GSequence TEXT)",
    )
    .unwrap();
    if !r2.rows.is_empty() {
        let values: Vec<String> = r2
            .rows
            .iter()
            .map(|row| {
                format!(
                    "('{}', '{}', '{}', '{}', '{}', '{}')",
                    row.values[0],
                    row.values[1],
                    row.values[2],
                    row.values[3],
                    row.values[4],
                    row.values[5]
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO R2 VALUES {}", values.join(", ")))
            .unwrap();
    }
    // (c) join to DB2 and union the annotations with `+` (here: `||`)
    let r3 = db
        .execute(
            "SELECT R.GID, R.GName, R.GSequence, \
             R.Ann_GID || '+' || G.Ann_GID, \
             R.Ann_GName || '+' || G.Ann_GName, \
             R.Ann_GSequence || '+' || G.Ann_GSequence \
             FROM R2 R, DB2_GeneF3 G WHERE R.GID = G.GID",
        )
        .unwrap();
    let n = r3.rows.len();
    let elapsed = t0.elapsed();
    db.execute("DROP TABLE R1").unwrap();
    db.execute("DROP TABLE R2").unwrap();
    (n, elapsed)
}

/// E03 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e03",
        "annotation propagation: one A-SQL statement vs the manual 3-step query",
        "§3 steps (a)-(c): without DBMS support the query takes 3 SELECTs and \
         2 intermediate relations; A-SQL does it in 1 statement",
    );
    r.headers(&[
        "rows/table",
        "common",
        "manual stmts",
        "manual ms",
        "A-SQL stmts",
        "A-SQL ms",
        "speedup",
    ]);
    for n in [200usize, 1000, 4000] {
        let mut fig3 = fig3_db(n, 40);
        let (manual_rows, manual_t) = manual_propagation(&mut fig3);

        let mut asql = synthetic_gene_db(n, 40);
        let t0 = Instant::now();
        let qr = asql
            .execute(
                "SELECT GID, GName, GSequence FROM DB1_Gene ANNOTATION(GAnnotation) \
                 INTERSECT \
                 SELECT GID, GName, GSequence FROM DB2_Gene ANNOTATION(GAnnotation)",
            )
            .unwrap();
        let asql_t = t0.elapsed();
        assert_eq!(qr.rows.len(), manual_rows, "both variants agree on tuples");
        // annotations really did propagate
        assert!(qr.rows.iter().all(|row| !row.all_anns().is_empty()));
        r.row(vec![
            n.to_string(),
            manual_rows.to_string(),
            "3 (+2 materializations)".into(),
            ms(manual_t),
            "1".into(),
            ms(asql_t),
            ratio(manual_t.as_secs_f64(), asql_t.as_secs_f64()),
        ]);
    }
    r.note("tuple results identical; A-SQL additionally yields structured annotations instead of concatenated text");
    r
}
