//! E05 — Annotation storage: per-cell scheme (Figure 3) vs compact
//! rectangles (Figure 5).
//!
//! The paper: *"instead of storing the annotations at the cell level, we
//! may store some of the annotations at coarser granularities [...] an
//! annotation over any group of contiguous cells can be represented by a
//! single annotation record"* — and notes A2/B3 are repeated 6 and 5
//! times under the naive scheme.
//!
//! Sweeps annotation granularity and reports attachment records, bytes,
//! and cell-lookup latency for both schemes, plus the R-tree-vs-scan
//! lookup ablation inside the rectangle scheme.

use std::time::Instant;

use bdbms_core::annotation::AnnotationSet;
use rand::Rng;

use crate::report::{ms, ratio, Report};
use crate::workloads::rng;

const ROWS: u64 = 5000;
const COLS: usize = 4;

enum Workload {
    /// One annotation per column (provenance-style).
    Columns,
    /// One annotation per 10th row (curation notes).
    Rows,
    /// Single-cell annotations, scattered.
    Cells,
    /// Block annotations: 50-row × 2-column rectangles.
    Blocks,
}

fn populate(set: &mut AnnotationSet, w: &Workload) {
    let mut rng = rng();
    match w {
        Workload::Columns => {
            let all_rows: Vec<u64> = (0..ROWS).collect();
            for c in 0..COLS {
                set.add(&format!("col-ann {c}"), "u", 1, &all_rows, &[c]);
            }
        }
        Workload::Rows => {
            let all_cols: Vec<usize> = (0..COLS).collect();
            for row in (0..ROWS).step_by(10) {
                set.add(&format!("row-ann {row}"), "u", 1, &[row], &all_cols);
            }
        }
        Workload::Cells => {
            for i in 0..(ROWS / 10) {
                let row = rng.gen_range(0..ROWS);
                let col = rng.gen_range(0..COLS);
                set.add(&format!("cell-ann {i}"), "u", 1, &[row], &[col]);
            }
        }
        Workload::Blocks => {
            for i in 0..(ROWS / 100) {
                let start = rng.gen_range(0..ROWS - 50);
                let rows: Vec<u64> = (start..start + 50).collect();
                let c0 = rng.gen_range(0..COLS - 1);
                set.add(&format!("block-ann {i}"), "u", 1, &rows, &[c0, c0 + 1]);
            }
        }
    }
}

fn probe_cells(set: &AnnotationSet, probes: &[(u64, usize)]) -> (usize, std::time::Duration) {
    let t0 = Instant::now();
    let mut hits = 0;
    for &(row, col) in probes {
        hits += set.for_cell(row, col).len();
    }
    (hits, t0.elapsed())
}

/// E05 report.
pub fn run() -> Report {
    let mut r = Report::new(
        "e05",
        "annotation attachment storage: cell scheme (Fig 3) vs rectangles (Fig 5)",
        "compact multi-granularity storage avoids repeating one annotation per \
         covered cell",
    );
    r.headers(&[
        "workload",
        "scheme",
        "attach records",
        "bytes",
        "bytes ratio",
        "probe hits",
        "probe ms",
    ]);
    let mut rng = rng();
    let probes: Vec<(u64, usize)> = (0..2000)
        .map(|_| (rng.gen_range(0..ROWS), rng.gen_range(0..COLS)))
        .collect();
    for (name, w) in [
        ("column-level", Workload::Columns),
        ("row-level", Workload::Rows),
        ("cell-level", Workload::Cells),
        ("block-level", Workload::Blocks),
    ] {
        let mut cell = AnnotationSet::new("a", true);
        populate(&mut cell, &w);
        let mut rect = AnnotationSet::new("a", false);
        populate(&mut rect, &w);
        let (cell_hits, cell_t) = probe_cells(&cell, &probes);
        let (rect_hits, rect_t) = probe_cells(&rect, &probes);
        assert_eq!(cell_hits, rect_hits, "schemes agree on lookups");
        let cb = cell.attachment_bytes();
        let rb = rect.attachment_bytes();
        r.row(vec![
            name.into(),
            "cell (Fig 3)".into(),
            cell.attachment_records().to_string(),
            cb.to_string(),
            "1.0x".into(),
            cell_hits.to_string(),
            ms(cell_t),
        ]);
        r.row(vec![
            name.into(),
            "rect (Fig 5)".into(),
            rect.attachment_records().to_string(),
            rb.to_string(),
            ratio(cb as f64, rb as f64),
            rect_hits.to_string(),
            ms(rect_t),
        ]);
        // ablation: rectangle lookups via R-tree vs linear scan
        if let Some(rs) = rect.rect_scheme() {
            let t0 = Instant::now();
            let mut scan_hits = 0;
            for &(row, col) in &probes {
                scan_hits += rs.for_cell_scan(row, col).len();
            }
            let scan_t = t0.elapsed();
            assert_eq!(scan_hits, rect_hits);
            r.row(vec![
                name.into(),
                "rect, scan ablation".into(),
                rect.attachment_records().to_string(),
                "-".into(),
                "-".into(),
                scan_hits.to_string(),
                ms(scan_t),
            ]);
        }
    }
    r.note(
        "coarse granularities (column/row/block) compress dramatically under \
         rectangles; single-cell annotations are the break-even case",
    );
    r
}
