//! Run-Length Encoding of sequences (Figure 12 of the paper).
//!
//! *"RLE replaces the consecutive repeats of a character C by one
//! occurrence of C followed by C's frequency."*  Protein secondary
//! structures (`H`/`E`/`L` with long runs) compress by roughly an order of
//! magnitude, which is the source of the paper's storage claims.
//!
//! [`RleSeq`] supports random access, run-boundary iteration (the SBC-tree
//! indexes suffixes at run boundaries), and textual form matching the
//! figure (`L3E7H22E6…`).

use std::fmt;

/// One run: `len` repeats of `ch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The repeated byte.
    pub ch: u8,
    /// Repeat count (≥ 1).
    pub len: u32,
}

/// A run-length-encoded byte sequence.
///
/// Invariant: adjacent runs have distinct characters and every run has
/// `len ≥ 1`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RleSeq {
    runs: Vec<Run>,
    /// Cumulative start offset of each run (same length as `runs`);
    /// `offsets[i]` = uncompressed position where run `i` begins.
    offsets: Vec<u64>,
    total_len: u64,
}

impl RleSeq {
    /// Compress a raw byte sequence.
    pub fn encode(raw: &[u8]) -> RleSeq {
        let mut runs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let ch = raw[i];
            let start = i;
            while i < raw.len() && raw[i] == ch {
                i += 1;
            }
            runs.push(Run {
                ch,
                len: (i - start) as u32,
            });
        }
        Self::from_runs(runs)
    }

    /// Build from runs, merging adjacent equal characters and dropping
    /// zero-length runs so the invariant holds.
    pub fn from_runs(raw_runs: Vec<Run>) -> RleSeq {
        let mut runs: Vec<Run> = Vec::with_capacity(raw_runs.len());
        for r in raw_runs {
            if r.len == 0 {
                continue;
            }
            match runs.last_mut() {
                Some(last) if last.ch == r.ch => last.len += r.len,
                _ => runs.push(r),
            }
        }
        let mut offsets = Vec::with_capacity(runs.len());
        let mut pos = 0u64;
        for r in &runs {
            offsets.push(pos);
            pos += r.len as u64;
        }
        RleSeq {
            runs,
            offsets,
            total_len: pos,
        }
    }

    /// Decompress to raw bytes.
    pub fn decode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_len as usize);
        for r in &self.runs {
            out.extend(std::iter::repeat_n(r.ch, r.len as usize));
        }
        out
    }

    /// The runs.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Uncompressed length in bytes.
    pub fn uncompressed_len(&self) -> u64 {
        self.total_len
    }

    /// Compressed storage: 5 bytes per run (1 char + 4 length), the layout
    /// used for the paper's storage comparisons.
    pub fn compressed_bytes(&self) -> usize {
        self.runs.len() * 5
    }

    /// Compression ratio (uncompressed / compressed); 0 for empty input.
    pub fn compression_ratio(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.total_len as f64 / self.compressed_bytes() as f64
    }

    /// Uncompressed start offset of run `i`.
    pub fn run_offset(&self, i: usize) -> u64 {
        self.offsets[i]
    }

    /// Random access to the byte at uncompressed position `pos`, without
    /// decompressing (binary search over run offsets).
    pub fn char_at(&self, pos: u64) -> Option<u8> {
        if pos >= self.total_len {
            return None;
        }
        let i = self.offsets.partition_point(|&o| o <= pos) - 1;
        Some(self.runs[i].ch)
    }

    /// Textual form as in Figure 12: `L3E7H22E6…`.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.runs.len() * 3);
        for r in &self.runs {
            s.push(r.ch as char);
            s.push_str(&r.len.to_string());
        }
        s
    }

    /// Parse the textual form back (inverse of [`to_text`](Self::to_text)).
    pub fn from_text(text: &str) -> Option<RleSeq> {
        let bytes = text.as_bytes();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            let ch = bytes[i];
            if ch.is_ascii_digit() {
                return None;
            }
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if start == i {
                return None;
            }
            let len: u32 = text[start..i].parse().ok()?;
            runs.push(Run { ch, len });
        }
        Some(RleSeq::from_runs(runs))
    }

    /// Compare the *decompressed* content of `self[self_run..]` with
    /// `other[other_run..]` in lexicographic (string) order, walking runs
    /// without decompressing.  This is the comparator of the SBC-tree's
    /// String B-tree component.
    pub fn cmp_suffixes(
        &self,
        self_run: usize,
        other: &RleSeq,
        other_run: usize,
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let (mut i, mut j) = (self_run, other_run);
        // remaining length within the current run of each side
        let mut a_left = self.runs.get(i).map(|r| r.len).unwrap_or(0);
        let mut b_left = other.runs.get(j).map(|r| r.len).unwrap_or(0);
        loop {
            match (self.runs.get(i), other.runs.get(j)) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(a), Some(b)) => {
                    if a.ch != b.ch {
                        return a.ch.cmp(&b.ch);
                    }
                    // same character: consume the shorter remaining run
                    let step = a_left.min(b_left);
                    a_left -= step;
                    b_left -= step;
                    if a_left == 0 {
                        i += 1;
                        a_left = self.runs.get(i).map(|r| r.len).unwrap_or(0);
                    }
                    if b_left == 0 {
                        j += 1;
                        b_left = other.runs.get(j).map(|r| r.len).unwrap_or(0);
                    }
                }
            }
        }
    }

    /// Compare the *decompressed* content of `self[run_idx..]` against a
    /// raw byte string, walking runs without decompressing.
    pub fn cmp_suffix_bytes(&self, run_idx: usize, bytes: &[u8]) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let mut p = 0usize; // position in `bytes`
        let mut i = run_idx;
        loop {
            match (self.runs.get(i), bytes.get(p)) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(r), Some(&b)) => {
                    if r.ch != b {
                        return r.ch.cmp(&b);
                    }
                    // consume min(run length, matching stretch of bytes)
                    let mut want = 0usize;
                    while p + want < bytes.len() && bytes[p + want] == r.ch && want < r.len as usize
                    {
                        want += 1;
                    }
                    p += want;
                    if want < r.len as usize {
                        // run not exhausted: the next byte (if any) differs
                        match bytes.get(p) {
                            None => return Ordering::Greater,
                            Some(&nb) => return r.ch.cmp(&nb),
                        }
                    }
                    i += 1;
                }
            }
        }
    }

    /// Does the suffix starting at run `run_idx` begin with `pat` (raw
    /// bytes)?  Walks runs without decompressing.
    pub fn suffix_starts_with(&self, run_idx: usize, pat: &[u8]) -> bool {
        let mut p = 0;
        let mut i = run_idx;
        while p < pat.len() {
            let Some(r) = self.runs.get(i) else {
                return false;
            };
            let need_ch = pat[p];
            if r.ch != need_ch {
                return false;
            }
            // how many of this char does the pattern want here?
            let mut want = 0usize;
            while p + want < pat.len() && pat[p + want] == need_ch {
                want += 1;
            }
            let have = r.len as usize;
            if have >= want {
                p += want;
                if p < pat.len() {
                    // pattern continues with a different char: the run must
                    // be exactly consumed
                    if have != want {
                        return false;
                    }
                    i += 1;
                }
            } else {
                // run shorter than the wanted stretch: pattern must continue
                // with the same char in the next run — impossible in RLE
                return false;
            }
        }
        true
    }
}

impl fmt::Display for RleSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn encode_decode_roundtrip() {
        let raw = b"LLLEEEEEEEHHHHHHHHHHHHHHHHHHHHHHEEEEEELLEEELHHHHHHHHHHLL";
        let rle = RleSeq::encode(raw);
        assert_eq!(rle.decode(), raw);
        assert_eq!(rle.to_text(), "L3E7H22E6L2E3L1H10L2");
        assert_eq!(rle.uncompressed_len(), raw.len() as u64);
    }

    #[test]
    fn figure12_compression_direction() {
        // Long-run secondary structures compress well.
        let raw: Vec<u8> = "L3E7H22E6L2E3L1H10L10H16L4E7H12E10L4H7L4H14E10H7E8H10"
            .as_bytes()
            .to_vec();
        let rle = RleSeq::from_text(std::str::from_utf8(&raw).unwrap()).unwrap();
        assert!(rle.uncompressed_len() > 100);
        assert!(rle.compression_ratio() > 1.0);
    }

    #[test]
    fn from_text_parses_and_rejects() {
        let r = RleSeq::from_text("H5E3L10").unwrap();
        assert_eq!(r.decode(), b"HHHHHEEELLLLLLLLLL");
        assert!(RleSeq::from_text("5H").is_none());
        assert!(RleSeq::from_text("H").is_none());
        assert_eq!(RleSeq::from_text("").unwrap().num_runs(), 0);
    }

    #[test]
    fn from_runs_normalizes() {
        let r = RleSeq::from_runs(vec![
            Run { ch: b'H', len: 2 },
            Run { ch: b'H', len: 3 },
            Run { ch: b'E', len: 0 },
            Run { ch: b'L', len: 1 },
        ]);
        assert_eq!(r.to_text(), "H5L1");
    }

    #[test]
    fn char_at_random_access() {
        let rle = RleSeq::encode(b"HHHEELLLLL");
        assert_eq!(rle.char_at(0), Some(b'H'));
        assert_eq!(rle.char_at(2), Some(b'H'));
        assert_eq!(rle.char_at(3), Some(b'E'));
        assert_eq!(rle.char_at(4), Some(b'E'));
        assert_eq!(rle.char_at(5), Some(b'L'));
        assert_eq!(rle.char_at(9), Some(b'L'));
        assert_eq!(rle.char_at(10), None);
    }

    #[test]
    fn run_offsets() {
        let rle = RleSeq::encode(b"HHHEELLLLL");
        assert_eq!(rle.run_offset(0), 0);
        assert_eq!(rle.run_offset(1), 3);
        assert_eq!(rle.run_offset(2), 5);
    }

    #[test]
    fn cmp_suffixes_is_string_order() {
        // "AAB" < "AB" in string order even though pair order would differ.
        let a = RleSeq::encode(b"AAB");
        let b = RleSeq::encode(b"AB");
        assert_eq!(a.cmp_suffixes(0, &b, 0), Ordering::Less);
        assert_eq!(b.cmp_suffixes(0, &a, 0), Ordering::Greater);
        // prefix relation: "AB" < "ABB"
        let c = RleSeq::encode(b"ABB");
        assert_eq!(b.cmp_suffixes(0, &c, 0), Ordering::Less);
        // equality across different run alignments
        let d = RleSeq::encode(b"HHEE");
        let e = RleSeq::encode(b"HHEE");
        assert_eq!(d.cmp_suffixes(0, &e, 0), Ordering::Equal);
        // suffix vs suffix
        let f = RleSeq::encode(b"LLLHHE"); // suffix at run 1 = "HHE"
        let g = RleSeq::encode(b"HHE");
        assert_eq!(f.cmp_suffixes(1, &g, 0), Ordering::Equal);
    }

    #[test]
    fn cmp_suffixes_matches_decoded_comparison() {
        let texts = ["HHHEELLL", "HEL", "LLLL", "EHEHE", "HHHH", "ELLLH", "H", ""];
        let rles: Vec<RleSeq> = texts.iter().map(|t| RleSeq::encode(t.as_bytes())).collect();
        for (i, a) in rles.iter().enumerate() {
            for (j, b) in rles.iter().enumerate() {
                for ra in 0..=a.num_runs() {
                    for rb in 0..=b.num_runs() {
                        let da = &texts[i].as_bytes()[a
                            .offsets
                            .get(ra)
                            .map(|&o| o as usize)
                            .unwrap_or(texts[i].len())..];
                        let db = &texts[j].as_bytes()[b
                            .offsets
                            .get(rb)
                            .map(|&o| o as usize)
                            .unwrap_or(texts[j].len())..];
                        assert_eq!(
                            a.cmp_suffixes(ra, b, rb),
                            da.cmp(db),
                            "texts {i}/{j} runs {ra}/{rb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn suffix_starts_with_walks_runs() {
        let rle = RleSeq::encode(b"HHHEELLLLH");
        assert!(rle.suffix_starts_with(0, b"HHH"));
        assert!(rle.suffix_starts_with(0, b"HHHEE"));
        assert!(!rle.suffix_starts_with(0, b"HHHH"));
        assert!(!rle.suffix_starts_with(0, b"HHE"));
        assert!(rle.suffix_starts_with(1, b"EELL"));
        assert!(rle.suffix_starts_with(2, b"LLLLH"));
        assert!(!rle.suffix_starts_with(2, b"LLLLHH"));
        assert!(rle.suffix_starts_with(3, b"H"));
        assert!(rle.suffix_starts_with(0, b""));
    }

    #[test]
    fn cmp_suffix_bytes_matches_decoded() {
        let texts = ["HHHEELLL", "HEL", "LLLL", "EHEHE", "HHHH", "H", ""];
        let probes: &[&[u8]] = &[
            b"HHH",
            b"HHHE",
            b"HHHEELLL",
            b"HHHEELLLX",
            b"A",
            b"Z",
            b"",
            b"HEL",
            b"LL",
        ];
        for t in texts {
            let rle = RleSeq::encode(t.as_bytes());
            for r in 0..=rle.num_runs() {
                let start = rle.offsets.get(r).map(|&o| o as usize).unwrap_or(t.len());
                let suffix = &t.as_bytes()[start..];
                for p in probes {
                    assert_eq!(
                        rle.cmp_suffix_bytes(r, p),
                        suffix.cmp(p),
                        "text {t:?} run {r} probe {:?}",
                        std::str::from_utf8(p).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_sequence() {
        let rle = RleSeq::encode(b"");
        assert_eq!(rle.num_runs(), 0);
        assert_eq!(rle.decode(), Vec::<u8>::new());
        assert_eq!(rle.compression_ratio(), 0.0);
        assert_eq!(rle.char_at(0), None);
    }

    #[test]
    fn dna_compresses_poorly() {
        // Uniform DNA has short runs: RLE expands it (5 bytes per ~1.3 chars).
        let dna = b"ACGTACGTAACCGGTTACGT";
        let rle = RleSeq::encode(dna);
        assert!(rle.compression_ratio() < 1.0);
        assert_eq!(rle.decode(), dna);
    }
}
