//! A generic, node-instrumented suffix B-tree.
//!
//! Both the uncompressed [`crate::string_btree::StringBTree`] baseline and
//! the [`crate::sbc_tree::SbcTree`] keep their suffixes in this structure:
//! a B+-tree whose entries are *references* into a text store (never
//! copies of the suffixes), compared through a caller-supplied comparator.
//! This mirrors the real String B-tree design, where keys are pointers to
//! strings on disk and comparisons chase those pointers.
//!
//! Query methods take a *classifier* `Fn(E) -> Ordering` that must be
//! monotone with respect to the tree order and partition entries into
//! `Less | Equal | Greater` blocks; `Equal` is the answer set.  Prefix
//! probes, string-range probes, and bound probes are all expressible this
//! way, so one search implementation serves every operation the paper
//! lists (substring, prefix, range).

use std::cmp::Ordering;

use bdbms_common::stats::AccessStats;

type NodeId = usize;

enum Node<E> {
    Inner {
        seps: Vec<E>,
        children: Vec<NodeId>,
    },
    Leaf {
        entries: Vec<E>,
        prev: Option<NodeId>,
        next: Option<NodeId>,
    },
}

/// B+-tree over suffix references with an external comparator.
pub struct SufBTree<E: Copy> {
    nodes: Vec<Node<E>>,
    root: NodeId,
    fanout: usize,
    len: usize,
    stats: AccessStats,
}

impl<E: Copy> SufBTree<E> {
    /// Empty tree with page-realistic fanout.
    pub fn new() -> Self {
        Self::with_fanout(64)
    }

    /// Empty tree with a custom fanout (min 4).
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout >= 4);
        SufBTree {
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
                prev: None,
                next: None,
            }],
            root: 0,
            fanout,
            len: 0,
            stats: AccessStats::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Logical node I/O counters.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Node (≈ page) count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 = root leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return h,
                Node::Inner { children, .. } => {
                    id = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Estimated storage footprint given the per-entry reference size.
    pub fn storage_bytes(&self, entry_bytes: usize) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                16 + match n {
                    Node::Inner { seps, children } => seps.len() * entry_bytes + children.len() * 8,
                    Node::Leaf { entries, .. } => entries.len() * entry_bytes,
                }
            })
            .sum()
    }

    /// Insert `e` under total order `cmp`, returning the in-order
    /// `(predecessor, successor)` of the new entry (used by the SBC-tree to
    /// assign order keys for its 3-sided structure).
    pub fn insert(&mut self, cmp: &impl Fn(E, E) -> Ordering, e: E) -> (Option<E>, Option<E>) {
        let (split, pred, succ) = self.insert_rec(self.root, cmp, e);
        if let Some((sep, right)) = split {
            let old_root = self.root;
            self.nodes.push(Node::Inner {
                seps: vec![sep],
                children: vec![old_root, right],
            });
            self.root = self.nodes.len() - 1;
            self.stats.record_write();
        }
        self.len += 1;
        (pred, succ)
    }

    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &mut self,
        id: NodeId,
        cmp: &impl Fn(E, E) -> Ordering,
        e: E,
    ) -> (Option<(E, NodeId)>, Option<E>, Option<E>) {
        self.stats.record_read();
        match &mut self.nodes[id] {
            Node::Leaf {
                entries,
                prev,
                next,
            } => {
                let pos = entries.partition_point(|x| cmp(*x, e) == Ordering::Less);
                let pred0 = (pos > 0).then(|| entries[pos - 1]);
                let succ0 = entries.get(pos).copied();
                let prev_id = *prev;
                let next_id = *next;
                entries.insert(pos, e);
                self.stats.record_write();
                // Neighbours not found in this leaf live at the edges of the
                // adjacent leaves (doubly-linked leaf chain).
                let pred = pred0.or_else(|| {
                    prev_id.and_then(|p| {
                        self.stats.record_read();
                        match &self.nodes[p] {
                            Node::Leaf { entries, .. } => entries.last().copied(),
                            _ => unreachable!(),
                        }
                    })
                });
                let succ = succ0.or_else(|| {
                    next_id.and_then(|n| {
                        self.stats.record_read();
                        match &self.nodes[n] {
                            Node::Leaf { entries, .. } => entries.first().copied(),
                            _ => unreachable!(),
                        }
                    })
                });
                // split if overfull: detach the right half inside the
                // borrow, then wire pointers with fresh borrows.
                let fanout = self.fanout;
                let right_id = self.nodes.len();
                let detached = match &mut self.nodes[id] {
                    Node::Leaf { entries, next, .. } => {
                        if entries.len() > fanout {
                            let mid = entries.len() / 2;
                            let right_entries = entries.split_off(mid);
                            let old_next = *next;
                            *next = Some(right_id);
                            Some((right_entries, old_next))
                        } else {
                            None
                        }
                    }
                    _ => unreachable!(),
                };
                let split = detached.map(|(right_entries, old_next)| {
                    let sep = right_entries[0];
                    self.nodes.push(Node::Leaf {
                        entries: right_entries,
                        prev: Some(id),
                        next: old_next,
                    });
                    if let Some(onx) = old_next {
                        if let Node::Leaf { prev, .. } = &mut self.nodes[onx] {
                            *prev = Some(right_id);
                        }
                        self.stats.record_write();
                    }
                    self.stats.record_write();
                    (sep, right_id)
                });
                (split, pred, succ)
            }
            Node::Inner { seps, children } => {
                let idx = seps.partition_point(|s| cmp(*s, e) == Ordering::Less);
                let child = children[idx];
                let (split, pred, succ) = self.insert_rec(child, cmp, e);
                let up = if let Some((sep, right)) = split {
                    match &mut self.nodes[id] {
                        Node::Inner { seps, children } => {
                            let idx = seps.partition_point(|s| cmp(*s, sep) == Ordering::Less);
                            seps.insert(idx, sep);
                            children.insert(idx + 1, right);
                            self.stats.record_write();
                            if seps.len() > self.fanout {
                                let mid = seps.len() / 2;
                                let up_sep = seps[mid];
                                let right_seps = seps.split_off(mid + 1);
                                seps.pop();
                                let right_children = children.split_off(mid + 1);
                                self.nodes.push(Node::Inner {
                                    seps: right_seps,
                                    children: right_children,
                                });
                                self.stats.record_write();
                                Some((up_sep, self.nodes.len() - 1))
                            } else {
                                None
                            }
                        }
                        _ => unreachable!(),
                    }
                } else {
                    None
                };
                (up, pred, succ)
            }
        }
    }

    /// Descend to the leaf holding the first entry whose class under
    /// `classify` is not `Less`; returns (leaf id, position).
    fn lower_bound(&self, classify: &impl Fn(E) -> Ordering) -> (NodeId, usize) {
        let mut id = self.root;
        loop {
            self.stats.record_read();
            match &self.nodes[id] {
                Node::Inner { seps, children } => {
                    let idx = seps.partition_point(|s| classify(*s) == Ordering::Less);
                    id = children[idx];
                }
                Node::Leaf { entries, .. } => {
                    let pos = entries.partition_point(|e| classify(*e) == Ordering::Less);
                    return (id, pos);
                }
            }
        }
    }

    /// First entry in the `Equal` class (None when the class is empty).
    pub fn first_in_class(&self, classify: &impl Fn(E) -> Ordering) -> Option<E> {
        let (mut leaf, mut pos) = self.lower_bound(classify);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next, .. } => {
                    if pos < entries.len() {
                        let e = entries[pos];
                        return (classify(e) == Ordering::Equal).then_some(e);
                    }
                    match next {
                        Some(n) => {
                            leaf = *n;
                            pos = 0;
                            self.stats.record_read();
                        }
                        None => return None,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Last entry in the `Equal` class.
    pub fn last_in_class(&self, classify: &impl Fn(E) -> Ordering) -> Option<E> {
        // descend to the first entry classified Greater, then step back
        let upper = |e: E| match classify(e) {
            Ordering::Greater => Ordering::Greater,
            _ => Ordering::Less,
        };
        let (mut leaf, mut pos) = self.lower_bound(&upper);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, prev, .. } => {
                    if pos > 0 {
                        let e = entries[pos - 1];
                        return (classify(e) == Ordering::Equal).then_some(e);
                    }
                    match prev {
                        Some(p) => {
                            self.stats.record_read();
                            leaf = *p;
                            pos = match &self.nodes[leaf] {
                                Node::Leaf { entries, .. } => entries.len(),
                                _ => unreachable!(),
                            };
                        }
                        None => return None,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Every entry in the `Equal` class, in tree order.
    pub fn collect_class(&self, classify: &impl Fn(E) -> Ordering) -> Vec<E> {
        let mut out = Vec::new();
        let (mut leaf, mut pos) = self.lower_bound(classify);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next, .. } => {
                    while pos < entries.len() {
                        match classify(entries[pos]) {
                            Ordering::Less => {}
                            Ordering::Equal => out.push(entries[pos]),
                            Ordering::Greater => return out,
                        }
                        pos += 1;
                    }
                    match next {
                        Some(n) => {
                            leaf = *n;
                            pos = 0;
                            self.stats.record_read();
                        }
                        None => return out,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Like [`collect_class`](Self::collect_class), but abandons the walk
    /// (returning `None`) as soon as the class exceeds `limit` entries.
    /// Callers that only want to *scan* small classes use this to bound
    /// their worst case at `limit` entries' worth of leaf reads.
    pub fn collect_class_bounded(
        &self,
        classify: &impl Fn(E) -> Ordering,
        limit: usize,
    ) -> Option<Vec<E>> {
        let mut out = Vec::new();
        let (mut leaf, mut pos) = self.lower_bound(classify);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next, .. } => {
                    while pos < entries.len() {
                        match classify(entries[pos]) {
                            Ordering::Less => {}
                            Ordering::Equal => {
                                if out.len() == limit {
                                    return None;
                                }
                                out.push(entries[pos]);
                            }
                            Ordering::Greater => return Some(out),
                        }
                        pos += 1;
                    }
                    match next {
                        Some(n) => {
                            leaf = *n;
                            pos = 0;
                            self.stats.record_read();
                        }
                        None => return Some(out),
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Count of entries in the `Equal` class without materializing them.
    pub fn count_class(&self, classify: &impl Fn(E) -> Ordering) -> usize {
        let mut n = 0;
        let (mut leaf, mut pos) = self.lower_bound(classify);
        loop {
            match &self.nodes[leaf] {
                Node::Leaf { entries, next, .. } => {
                    while pos < entries.len() {
                        match classify(entries[pos]) {
                            Ordering::Less => {}
                            Ordering::Equal => n += 1,
                            Ordering::Greater => return n,
                        }
                        pos += 1;
                    }
                    match next {
                        Some(nx) => {
                            leaf = *nx;
                            pos = 0;
                            self.stats.record_read();
                        }
                        None => return n,
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    /// Every entry in tree order (test helper).
    pub fn iter_all(&self) -> Vec<E> {
        let mut id = self.root;
        while let Node::Inner { children, .. } = &self.nodes[id] {
            id = children[0];
        }
        let mut out = Vec::with_capacity(self.len);
        loop {
            match &self.nodes[id] {
                Node::Leaf { entries, next, .. } => {
                    out.extend(entries.iter().copied());
                    match next {
                        Some(n) => id = *n,
                        None => break,
                    }
                }
                _ => unreachable!(),
            }
        }
        out
    }
}

impl<E: Copy> Default for SufBTree<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmp_u32(a: u32, b: u32) -> Ordering {
        a.cmp(&b)
    }

    #[test]
    fn sorted_insert_and_iteration() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(4);
        for v in [5u32, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            t.insert(&cmp_u32, v);
        }
        assert_eq!(t.iter_all(), (0..10).collect::<Vec<u32>>());
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn insert_reports_neighbours() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(4);
        assert_eq!(t.insert(&cmp_u32, 50), (None, None));
        assert_eq!(t.insert(&cmp_u32, 10), (None, Some(50)));
        assert_eq!(t.insert(&cmp_u32, 90), (Some(50), None));
        assert_eq!(t.insert(&cmp_u32, 40), (Some(10), Some(50)));
        assert_eq!(t.insert(&cmp_u32, 45), (Some(40), Some(50)));
    }

    #[test]
    fn neighbours_across_leaf_boundaries() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(4);
        for v in 0..100u32 {
            t.insert(&cmp_u32, v * 2);
        }
        // 51 lands between 50 and 52, very likely in a split leaf landscape
        let (pred, succ) = t.insert(&cmp_u32, 51);
        assert_eq!(pred, Some(50));
        assert_eq!(succ, Some(52));
        assert!(t.height() > 1);
    }

    #[test]
    fn class_queries() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(4);
        for v in 0..200u32 {
            t.insert(&cmp_u32, v);
        }
        // class: Equal for [37, 90)
        let classify = |e: u32| {
            if e < 37 {
                Ordering::Less
            } else if e < 90 {
                Ordering::Equal
            } else {
                Ordering::Greater
            }
        };
        assert_eq!(t.first_in_class(&classify), Some(37));
        assert_eq!(t.last_in_class(&classify), Some(89));
        let all = t.collect_class(&classify);
        assert_eq!(all, (37..90).collect::<Vec<u32>>());
        assert_eq!(t.count_class(&classify), 53);
    }

    #[test]
    fn empty_class() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(4);
        for v in [10u32, 20, 30] {
            t.insert(&cmp_u32, v);
        }
        // the Equal band is empty: everything is strictly Less or Greater
        let classify = |e: u32| {
            if e < 15 {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        };
        assert_eq!(t.first_in_class(&classify), None);
        assert_eq!(t.last_in_class(&classify), None);
        assert!(t.collect_class(&classify).is_empty());
    }

    #[test]
    fn class_at_extremes() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(4);
        for v in 0..50u32 {
            t.insert(&cmp_u32, v);
        }
        let all = |_: u32| Ordering::Equal;
        assert_eq!(t.first_in_class(&all), Some(0));
        assert_eq!(t.last_in_class(&all), Some(49));
        assert_eq!(t.collect_class(&all).len(), 50);
        let none_low = |_: u32| Ordering::Greater;
        assert_eq!(t.first_in_class(&none_low), None);
        assert_eq!(t.last_in_class(&none_low), None);
        let none_high = |_: u32| Ordering::Less;
        assert_eq!(t.first_in_class(&none_high), None);
    }

    #[test]
    fn storage_and_stats() {
        let mut t: SufBTree<u32> = SufBTree::with_fanout(8);
        for v in 0..1000u32 {
            t.insert(&cmp_u32, v);
        }
        assert!(t.storage_bytes(8) > 8000);
        t.stats().reset();
        let classify = |e: u32| {
            if e < 500 {
                Ordering::Less
            } else if e == 500 {
                Ordering::Equal
            } else {
                Ordering::Greater
            }
        };
        let _ = t.first_in_class(&classify);
        assert!(t.stats().reads() >= t.height() as u64);
    }
}
