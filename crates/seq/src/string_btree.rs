//! The String B-tree over **uncompressed** sequences — the baseline of the
//! paper's §7.2 comparison.
//!
//! One suffix reference is indexed per character position of every stored
//! text, so substring search is a prefix probe over the suffix order
//! (suffix-array semantics with B-tree I/O behaviour).  The paper's claim
//! is that the SBC-tree keeps this structure's *optimal search* while
//! storing an order of magnitude less: E12 measures both sides.

use std::cell::Cell;
use std::cmp::Ordering;

use bdbms_common::stats::IoSnapshot;

use crate::sufbtree::SufBTree;

/// Reference to the suffix of text `text` starting at byte `off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SufRef {
    /// Index of the text in the store.
    pub text: u32,
    /// Byte offset where the suffix starts.
    pub off: u32,
}

/// A page-I/O-instrumented String B-tree over raw byte sequences.
pub struct StringBTree {
    texts: Vec<Vec<u8>>,
    tree: SufBTree<SufRef>,
    /// Pages written appending raw text (1 page per 8 KiB, min 1 per text).
    text_write_io: Cell<u64>,
    /// Text pages read while verifying/reporting matches.
    text_read_io: Cell<u64>,
}

impl StringBTree {
    /// Empty index with page-realistic fanout.
    pub fn new() -> Self {
        Self::with_fanout(64)
    }

    /// Empty index with custom B-tree fanout.
    pub fn with_fanout(fanout: usize) -> Self {
        StringBTree {
            texts: Vec::new(),
            tree: SufBTree::with_fanout(fanout),
            text_write_io: Cell::new(0),
            text_read_io: Cell::new(0),
        }
    }

    fn suffix(&self, e: SufRef) -> &[u8] {
        &self.texts[e.text as usize][e.off as usize..]
    }

    /// Insert a text; indexes one suffix per character. Returns the text id.
    pub fn insert_text(&mut self, seq: &[u8]) -> u32 {
        let id = self.texts.len() as u32;
        self.texts.push(seq.to_vec());
        self.text_write_io
            .set(self.text_write_io.get() + (seq.len() as u64 / 8192).max(1));
        // Split borrows: comparisons need &texts while the tree mutates.
        let texts = std::mem::take(&mut self.texts);
        let cmp = |a: SufRef, b: SufRef| {
            let sa = &texts[a.text as usize][a.off as usize..];
            let sb = &texts[b.text as usize][b.off as usize..];
            sa.cmp(sb)
                .then_with(|| (a.text, a.off).cmp(&(b.text, b.off)))
        };
        for off in 0..seq.len() as u32 {
            self.tree.insert(&cmp, SufRef { text: id, off });
        }
        self.texts = texts;
        id
    }

    /// Number of stored texts.
    pub fn num_texts(&self) -> usize {
        self.texts.len()
    }

    /// The raw text by id.
    pub fn text(&self, id: u32) -> &[u8] {
        &self.texts[id as usize]
    }

    /// Classifier: Equal ⟺ the suffix starts with `pat`.
    fn prefix_class<'a>(&'a self, pat: &'a [u8]) -> impl Fn(SufRef) -> Ordering + 'a {
        move |e: SufRef| {
            let s = self.suffix(e);
            if s.starts_with(pat) {
                Ordering::Equal
            } else {
                // a strict prefix of `pat` sorts before every extension
                s.cmp(pat)
            }
        }
    }

    /// All occurrences of `pat` as a substring: `(text, position)` pairs in
    /// suffix order.  Empty patterns return no occurrences.
    pub fn substring_search(&self, pat: &[u8]) -> Vec<(u32, u64)> {
        if pat.is_empty() {
            return Vec::new();
        }
        self.tree
            .collect_class(&self.prefix_class(pat))
            .into_iter()
            .map(|e| (e.text, e.off as u64))
            .collect()
    }

    /// Texts having `pat` as a prefix.
    pub fn prefix_search(&self, pat: &[u8]) -> Vec<u32> {
        if pat.is_empty() {
            return (0..self.texts.len() as u32).collect();
        }
        let mut out: Vec<u32> = self
            .tree
            .collect_class(&self.prefix_class(pat))
            .into_iter()
            .filter(|e| e.off == 0)
            .map(|e| e.text)
            .collect();
        out.sort_unstable();
        out
    }

    /// Texts `t` with `lo <= t < hi` in lexicographic order.
    pub fn range_search(&self, lo: &[u8], hi: &[u8]) -> Vec<u32> {
        let classify = |e: SufRef| {
            let s = self.suffix(e);
            if s < lo {
                Ordering::Less
            } else if s >= hi {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        };
        let mut out: Vec<u32> = self
            .tree
            .collect_class(&classify)
            .into_iter()
            .filter(|e| e.off == 0)
            .map(|e| e.text)
            .collect();
        out.sort_unstable();
        out
    }

    /// Storage footprint: raw text bytes + suffix-tree node bytes
    /// (8-byte suffix references).
    pub fn storage_bytes(&self) -> usize {
        self.texts.iter().map(|t| t.len()).sum::<usize>() + self.tree.storage_bytes(8)
    }

    /// Total logical I/O so far (index nodes + text pages).
    pub fn io_stats(&self) -> IoSnapshot {
        let t = self.tree.stats().snapshot();
        IoSnapshot {
            reads: t.reads + self.text_read_io.get(),
            writes: t.writes + self.text_write_io.get(),
        }
    }

    /// Reset all I/O counters.
    pub fn reset_io(&self) {
        self.tree.stats().reset();
        self.text_write_io.set(0);
        self.text_read_io.set(0);
    }

    /// Number of indexed suffixes.
    pub fn num_suffixes(&self) -> usize {
        self.tree.len()
    }

    /// Index node count (≈ pages).
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }
}

impl Default for StringBTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Naive oracle: all `(text, pos)` occurrences of `pat` in `texts`.
/// Used by tests and by the benchmark harness for result validation.
pub fn naive_substring_search(texts: &[Vec<u8>], pat: &[u8]) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    if pat.is_empty() {
        return out;
    }
    for (t, text) in texts.iter().enumerate() {
        if text.len() < pat.len() {
            continue;
        }
        for pos in 0..=(text.len() - pat.len()) {
            if &text[pos..pos + pat.len()] == pat {
                out.push((t as u32, pos as u64));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(texts: &[&str]) -> StringBTree {
        let mut sbt = StringBTree::with_fanout(4);
        for t in texts {
            sbt.insert_text(t.as_bytes());
        }
        sbt
    }

    fn sorted(mut v: Vec<(u32, u64)>) -> Vec<(u32, u64)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn substring_search_finds_all_occurrences() {
        let texts = ["HHHEELLLHH", "ELLHHH", "LLLL"];
        let sbt = build(&texts);
        let raw: Vec<Vec<u8>> = texts.iter().map(|t| t.as_bytes().to_vec()).collect();
        for pat in ["HH", "LL", "ELL", "HHHEELLLHH", "XYZ", "H", "LLLL"] {
            let got = sorted(sbt.substring_search(pat.as_bytes()));
            let want = sorted(naive_substring_search(&raw, pat.as_bytes()));
            assert_eq!(got, want, "pattern {pat}");
        }
    }

    #[test]
    fn empty_pattern_matches_nothing() {
        let sbt = build(&["ABC"]);
        assert!(sbt.substring_search(b"").is_empty());
    }

    #[test]
    fn prefix_search_only_text_starts() {
        let sbt = build(&["ATGAAA", "ATT", "ATG", "GGG"]);
        assert_eq!(sbt.prefix_search(b"ATG"), vec![0, 2]);
        assert_eq!(sbt.prefix_search(b"AT"), vec![0, 1, 2]);
        assert_eq!(sbt.prefix_search(b"X"), Vec::<u32>::new());
        assert_eq!(sbt.prefix_search(b""), vec![0, 1, 2, 3]);
    }

    #[test]
    fn range_search_on_texts() {
        let sbt = build(&["AAA", "ABC", "BBB", "CCC"]);
        assert_eq!(sbt.range_search(b"AB", b"CC"), vec![1, 2]);
        assert_eq!(sbt.range_search(b"A", b"Z"), vec![0, 1, 2, 3]);
        assert_eq!(sbt.range_search(b"D", b"E"), Vec::<u32>::new());
    }

    #[test]
    fn io_counts_accumulate() {
        let mut sbt = StringBTree::with_fanout(4);
        sbt.insert_text(b"HHHEELLLHHHEELLL");
        let after_insert = sbt.io_stats();
        assert!(after_insert.writes > 0, "insertion must write pages");
        sbt.reset_io();
        let _ = sbt.substring_search(b"EE");
        let s = sbt.io_stats();
        assert!(s.reads > 0);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn storage_includes_text_and_index() {
        let mut sbt = StringBTree::new();
        sbt.insert_text(&vec![b'H'; 10_000]);
        // raw text dominates: at least the text bytes plus index entries
        assert!(sbt.storage_bytes() > 10_000 + 10_000 * 8 / 2);
        assert_eq!(sbt.num_suffixes(), 10_000);
    }

    #[test]
    fn duplicate_texts_are_distinct() {
        let sbt = build(&["HEL", "HEL"]);
        assert_eq!(sbt.prefix_search(b"HEL"), vec![0, 1]);
        assert_eq!(sbt.substring_search(b"EL").len(), 2);
    }
}
