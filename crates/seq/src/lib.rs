//! # bdbms-seq
//!
//! Biological sequence support for bdbms (§7.2 of the paper).
//!
//! The paper stores protein secondary structures (and other repeat-heavy
//! sequences) Run-Length-Encoded and indexes them **without
//! decompressing** with the SBC-tree — a String B-tree over the compressed
//! suffixes plus a 3-sided range structure (prototyped, there and here,
//! with an R-tree).
//!
//! Modules:
//! * [`rle`] — the RLE codec of Figure 12 (`LLLEEE…` → `L3E7H22…`),
//! * [`gen`] — synthetic sequence generators standing in for the paper's
//!   E. coli / protein datasets (documented substitution in DESIGN.md),
//! * [`sufbtree`] — a generic, node-instrumented suffix B-tree,
//! * [`string_btree`] — the *uncompressed* String B-tree baseline the
//!   paper compares against,
//! * [`sbc_tree`] — the SBC-tree itself: substring / prefix / range search
//!   over RLE-compressed sequences.

pub mod gen;
pub mod rle;
pub mod sbc_tree;
pub mod string_btree;
pub mod sufbtree;

pub use rle::RleSeq;
pub use sbc_tree::SbcTree;
pub use string_btree::StringBTree;
