//! Synthetic biological sequence generators.
//!
//! The paper's driving datasets (an E. coli model-organism resource and a
//! protein structure database) are not available, so benchmarks use
//! synthetic equivalents whose *statistics* exercise the same code paths
//! (documented substitution — see DESIGN.md §2):
//!
//! * [`secondary_structure`] — H/E/L sequences with geometrically
//!   distributed run lengths, matching the bursty structure shown in
//!   Figure 12 (helices/strands/loops come in runs of ~4–20 residues).
//!   This is what makes RLE give its order-of-magnitude compression.
//! * [`dna`] — uniform A/C/G/T (short runs: the anti-RLE contrast case).
//! * [`protein`] — uniform 20-letter amino-acid sequences.
//! * [`gene_table`] — rows shaped like the paper's Figure 2 gene tables.

use rand::seq::SliceRandom;
use rand::Rng;

/// Secondary-structure alphabet of Figure 12.
pub const SS_ALPHABET: [u8; 3] = [b'H', b'E', b'L'];
/// DNA alphabet.
pub const DNA_ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];
/// The 20 standard amino acids.
pub const AA_ALPHABET: [u8; 20] = *b"ACDEFGHIKLMNPQRSTVWY";

/// A protein secondary-structure string of exactly `len` characters with
/// geometric run lengths of mean `mean_run` (clamped ≥ 1.01).
///
/// Consecutive runs always switch characters, so the generated string's
/// RLE run-length distribution matches the requested mean.
pub fn secondary_structure(rng: &mut impl Rng, len: usize, mean_run: f64) -> Vec<u8> {
    let mean_run = mean_run.max(1.01);
    // geometric with mean m: success probability 1/m
    let p = 1.0 / mean_run;
    let mut out = Vec::with_capacity(len);
    let mut prev: Option<u8> = None;
    while out.len() < len {
        let ch = loop {
            let c = *SS_ALPHABET.choose(rng).expect("non-empty alphabet");
            if Some(c) != prev {
                break c;
            }
        };
        prev = Some(ch);
        // sample a geometric run length ≥ 1
        let mut run = 1usize;
        while rng.gen::<f64>() > p {
            run += 1;
        }
        let run = run.min(len - out.len());
        out.extend(std::iter::repeat_n(ch, run));
    }
    out
}

/// A uniform DNA sequence of `len` bases.
pub fn dna(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| *DNA_ALPHABET.choose(rng).expect("non-empty alphabet"))
        .collect()
}

/// A uniform protein (primary structure) sequence of `len` residues.
pub fn protein(rng: &mut impl Rng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| *AA_ALPHABET.choose(rng).expect("non-empty alphabet"))
        .collect()
}

/// A gene identifier in the paper's `JWxxxx` style (Figure 2).
pub fn gene_id(i: usize) -> String {
    format!("JW{i:04}")
}

/// A pronounceable-ish gene name like the paper's `fruR` / `yabP` / `mraW`.
pub fn gene_name(rng: &mut impl Rng, i: usize) -> String {
    let consonants = b"bcdfgmnprstvwy";
    let vowels = b"aeiou";
    let c1 = *consonants.choose(rng).unwrap() as char;
    let v = *vowels.choose(rng).unwrap() as char;
    let c2 = *consonants.choose(rng).unwrap() as char;
    let upper = (b'A' + (i % 26) as u8) as char;
    format!("{c1}{v}{c2}{upper}")
}

/// One synthetic gene row: `(GID, GName, GSequence)` — the shape of the
/// paper's `DB1_Gene` / `DB2_Gene` tables.
pub fn gene_row(rng: &mut impl Rng, i: usize, seq_len: usize) -> (String, String, String) {
    let seq = dna(rng, seq_len);
    (
        gene_id(i),
        gene_name(rng, i),
        String::from_utf8(seq).expect("DNA is ASCII"),
    )
}

/// A batch of `n` gene rows with sequence lengths in `[min_len, max_len]`.
pub fn gene_table(
    rng: &mut impl Rng,
    n: usize,
    min_len: usize,
    max_len: usize,
) -> Vec<(String, String, String)> {
    (0..n)
        .map(|i| {
            let len = rng.gen_range(min_len..=max_len);
            gene_row(rng, i, len)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::RleSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secondary_structure_length_and_alphabet() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = secondary_structure(&mut rng, 5000, 8.0);
        assert_eq!(s.len(), 5000);
        assert!(s.iter().all(|c| SS_ALPHABET.contains(c)));
    }

    #[test]
    fn secondary_structure_mean_run_tracks_parameter() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = secondary_structure(&mut rng, 50_000, 10.0);
        let rle = RleSeq::encode(&s);
        let mean = s.len() as f64 / rle.num_runs() as f64;
        assert!(
            (7.0..13.0).contains(&mean),
            "mean run {mean} should be near 10"
        );
        // and it compresses well, as the paper's Figure 12 shows
        assert!(rle.compression_ratio() > 1.5);
    }

    #[test]
    fn dna_is_poorly_compressible() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = dna(&mut rng, 20_000);
        let rle = RleSeq::encode(&s);
        let mean = s.len() as f64 / rle.num_runs() as f64;
        assert!(mean < 2.0, "uniform DNA mean run {mean} should be ≈ 1.33");
    }

    #[test]
    fn protein_uses_20_letters() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = protein(&mut rng, 10_000);
        let distinct: std::collections::HashSet<u8> = s.iter().copied().collect();
        assert!(distinct.len() > 15);
        assert!(s.iter().all(|c| AA_ALPHABET.contains(c)));
    }

    #[test]
    fn gene_rows_have_paper_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows = gene_table(&mut rng, 10, 50, 100);
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].0, "JW0000");
        assert_eq!(rows[7].0, "JW0007");
        for (_, name, seq) in &rows {
            assert_eq!(name.len(), 4);
            assert!((50..=100).contains(&seq.len()));
            assert!(seq.bytes().all(|c| DNA_ALPHABET.contains(&c)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = gene_table(&mut StdRng::seed_from_u64(42), 5, 10, 20);
        let b = gene_table(&mut StdRng::seed_from_u64(42), 5, 10, 20);
        assert_eq!(a, b);
    }
}
