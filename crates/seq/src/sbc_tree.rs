//! The SBC-tree: an index for Run-Length-Compressed sequences (§7.2,
//! Figure 12; Eltabakh et al., technical report CSD TR05-030).
//!
//! *"The SBC-tree is a two-level index structure based on the well-known
//! String B-tree and a 3-sided range query structure [...] The SBC-tree
//! supports substring as well as prefix matching, and range search
//! operations over RLE-compressed sequences [without decompressing
//! them]."*
//!
//! ## How it works (and how this module implements it)
//!
//! Sequences are stored RLE-compressed.  One suffix is indexed **per run
//! boundary** (not per character — this is where the order-of-magnitude
//! storage saving comes from).  A substring pattern `P = p1 p2 … pk`
//! (RLE runs) occurs in a text iff
//!
//! 1. the tail `Q = p2 … pk` matches at some run boundary `j`
//!    (interior runs exactly; the final run may be a prefix of a longer
//!    run), **and**
//! 2. the run *preceding* the boundary has `P`'s first-run character and
//!    length ≥ `p1.len` (the first run of an occurrence may be the tail of
//!    a longer run).
//!
//! Condition 1 is a prefix probe on the String-B-tree component (suffixes
//! in true string order, compared run-wise without decompression).
//! Condition 2 is a **3-sided query** — lexicographic position within the
//! answer range of (1), preceding-run length ≥ `p1.len` — served by an
//! R-tree, exactly the substitution the paper's own prototype made.
//! Single-run patterns use a small run-length index instead.
//!
//! Every component counts logical node I/O, so E12 can compare insertion
//! and search I/O against [`crate::string_btree::StringBTree`].

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;

use bdbms_common::stats::IoSnapshot;
use bdbms_index::bptree::BPlusTree;
use bdbms_index::rtree::{RTree, Rect};

use crate::rle::RleSeq;
use crate::sufbtree::SufBTree;

/// Reference to the suffix of text `text` starting at run boundary `run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRef {
    /// Index of the text in the store.
    pub text: u32,
    /// Run index where the suffix starts (`0` = whole text).
    pub run: u32,
}

/// Sentinel y-coordinate for boundary 0 (no preceding run); chosen above
/// every `char * 2^32 + len` encoding so first-run filters never match it.
const NO_PREV_Y: f64 = 256.0 * 4294967296.0;

/// Initial spacing of lexicographic order keys (see `assign_x`).
const X_GAP: f64 = 1048576.0; // 2^20

/// Class size below which [`SbcTree::substring_search`] verifies the tail
/// class directly instead of probing the 3-sided structure (a handful of
/// leaf pages at the default fanout).
const ADAPTIVE_CLASS_CUTOFF: usize = 256;

/// Which first-run filter `multi_run_search` applies to the tail class.
#[derive(Clone, Copy)]
enum FirstRunFilter {
    /// Scan small classes, 3-sided probe for large ones (production path).
    Adaptive,
    /// Always the 3-sided structure (ablation).
    ThreeSided,
    /// Always scan the class (ablation).
    Scan,
}

/// One substring occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Occurrence {
    /// Text id.
    pub text: u32,
    /// Byte position of the match in the *uncompressed* text.
    pub pos: u64,
}

/// The SBC-tree index over RLE-compressed sequences.
pub struct SbcTree {
    texts: Vec<RleSeq>,
    /// String-B-tree component: suffixes at run boundaries, string order.
    tree: SufBTree<RunRef>,
    /// Lexicographic order key of each indexed suffix (x-axis of the
    /// 3-sided structure). Maintained by neighbour midpoints on insert.
    xkeys: HashMap<(u32, u32), f64>,
    /// 3-sided structure (R-tree, per the paper's own substitution):
    /// point (x = order key, y = preceding-run char·2³² + len).
    rtree: RTree,
    /// Single-run pattern index: (char, run length, text, run) → ().
    runlen_idx: BPlusTree<(u8, u32, u32, u32), ()>,
    text_write_io: Cell<u64>,
    text_read_io: Cell<u64>,
}

impl SbcTree {
    /// Empty index with page-realistic fanouts.
    pub fn new() -> Self {
        Self::with_fanout(64)
    }

    /// Empty index with a custom String-B-tree fanout.
    pub fn with_fanout(fanout: usize) -> Self {
        SbcTree {
            texts: Vec::new(),
            tree: SufBTree::with_fanout(fanout),
            xkeys: HashMap::new(),
            rtree: RTree::with_capacity(fanout.max(8)),
            runlen_idx: BPlusTree::with_fanout(fanout.max(8)),
            text_write_io: Cell::new(0),
            text_read_io: Cell::new(0),
        }
    }

    /// Insert a raw sequence (RLE-compressed on the way in).
    pub fn insert_sequence(&mut self, seq: &[u8]) -> u32 {
        self.insert_rle(RleSeq::encode(seq))
    }

    /// Insert an already-compressed sequence.
    pub fn insert_rle(&mut self, rle: RleSeq) -> u32 {
        let id = self.texts.len() as u32;
        self.text_write_io
            .set(self.text_write_io.get() + (rle.compressed_bytes() as u64 / 8192).max(1));
        self.texts.push(rle);
        let num_runs = self.texts[id as usize].num_runs() as u32;
        // Index one suffix per run boundary, 0..num_runs.
        let texts = std::mem::take(&mut self.texts);
        let cmp = |a: RunRef, b: RunRef| {
            texts[a.text as usize]
                .cmp_suffixes(a.run as usize, &texts[b.text as usize], b.run as usize)
                .then_with(|| (a.text, a.run).cmp(&(b.text, b.run)))
        };
        for run in 0..num_runs {
            let e = RunRef { text: id, run };
            let (pred, succ) = self.tree.insert(&cmp, e);
            let x = self.assign_x(pred, succ);
            self.xkeys.insert((id, run), x);
            let y = if run == 0 {
                NO_PREV_Y
            } else {
                let prev = texts[id as usize].runs()[run as usize - 1];
                encode_y(prev.ch, prev.len)
            };
            self.rtree.insert(Rect::point(x, y), payload(id, run));
            let this_run = texts[id as usize].runs()[run as usize];
            self.runlen_idx
                .insert((this_run.ch, this_run.len, id, run), ());
        }
        self.texts = texts;
        id
    }

    /// Midpoint order-key assignment between the new entry's neighbours.
    /// Collisions after repeated midpointing are harmless: the 3-sided
    /// query result is verified against the texts before being reported.
    fn assign_x(&self, pred: Option<RunRef>, succ: Option<RunRef>) -> f64 {
        let get = |e: RunRef| self.xkeys[&(e.text, e.run)];
        match (pred.map(get), succ.map(get)) {
            (None, None) => 0.0,
            (Some(p), None) => p + X_GAP,
            (None, Some(s)) => s - X_GAP,
            (Some(p), Some(s)) => (p + s) / 2.0,
        }
    }

    /// Number of stored sequences.
    pub fn num_texts(&self) -> usize {
        self.texts.len()
    }

    /// The compressed sequence by id.
    pub fn text(&self, id: u32) -> &RleSeq {
        &self.texts[id as usize]
    }

    /// Decompress a stored sequence (tests / display only — queries never
    /// need this).
    pub fn decompress(&self, id: u32) -> Vec<u8> {
        self.texts[id as usize].decode()
    }

    /// Number of indexed run-boundary suffixes.
    pub fn num_suffixes(&self) -> usize {
        self.tree.len()
    }

    /// Classifier: Equal ⟺ suffix begins (string-wise) with `pat`.
    fn prefix_class<'a>(&'a self, pat: &'a [u8]) -> impl Fn(RunRef) -> Ordering + 'a {
        move |e: RunRef| {
            let t = &self.texts[e.text as usize];
            if t.suffix_starts_with(e.run as usize, pat) {
                Ordering::Equal
            } else {
                t.cmp_suffix_bytes(e.run as usize, pat)
            }
        }
    }

    /// All occurrences of `pat` as a substring.  Empty patterns return no
    /// occurrences.
    ///
    /// The first-run filter is chosen adaptively: when the tail class `Q`
    /// holds at most `ADAPTIVE_CLASS_CUTOFF` (256) suffixes, they are scanned
    /// and verified directly (a few leaf reads); only larger classes go
    /// through the 3-sided (R-tree) structure, which is what it is built
    /// for — pruning a *large* class down to the boundaries whose
    /// preceding run is long enough.  (Midpoint-assigned order keys
    /// collide under heavy insertion, so a 3-sided probe over a tiny
    /// class can touch far more R-tree nodes than the class itself.)
    pub fn substring_search(&self, pat: &[u8]) -> Vec<Occurrence> {
        let prle = RleSeq::encode(pat);
        match prle.num_runs() {
            0 => Vec::new(),
            1 => self.single_run_search(prle.runs()[0].ch, prle.runs()[0].len),
            _ => self.multi_run_search(&prle, FirstRunFilter::Adaptive),
        }
    }

    /// Ablation variant: always use the 3-sided structure, regardless of
    /// class size (E12 — shows what the 3-sided structure buys or costs).
    pub fn substring_search_three_sided(&self, pat: &[u8]) -> Vec<Occurrence> {
        let prle = RleSeq::encode(pat);
        match prle.num_runs() {
            0 => Vec::new(),
            1 => self.single_run_search(prle.runs()[0].ch, prle.runs()[0].len),
            _ => self.multi_run_search(&prle, FirstRunFilter::ThreeSided),
        }
    }

    /// Ablation variant: skip the 3-sided structure and filter candidates
    /// by scanning (E12 ablation — shows what the 3-sided structure buys).
    pub fn substring_search_scan(&self, pat: &[u8]) -> Vec<Occurrence> {
        let prle = RleSeq::encode(pat);
        match prle.num_runs() {
            0 => Vec::new(),
            1 => self.single_run_search(prle.runs()[0].ch, prle.runs()[0].len),
            _ => self.multi_run_search(&prle, FirstRunFilter::Scan),
        }
    }

    /// Single-run pattern `c^l`: every run of char `c` with length ≥ `l`
    /// yields `len - l + 1` occurrences.
    fn single_run_search(&self, ch: u8, len: u32) -> Vec<Occurrence> {
        let lo = (ch, len, 0u32, 0u32);
        let hi = (ch, u32::MAX, u32::MAX, u32::MAX);
        let mut out = Vec::new();
        for ((_, run_len, text, run), _) in self.runlen_idx.range(&lo, &hi) {
            let base = self.texts[text as usize].run_offset(run as usize);
            for d in 0..=(run_len - len) as u64 {
                out.push(Occurrence {
                    text,
                    pos: base + d,
                });
            }
        }
        out.sort_unstable();
        out
    }

    /// Multi-run pattern: String-B-tree probe for the tail `Q`, then the
    /// first-run filter (3-sided, scan, or size-adaptive).
    fn multi_run_search(&self, prle: &RleSeq, filter: FirstRunFilter) -> Vec<Occurrence> {
        let first = prle.runs()[0];
        // Q = pattern minus its first run, as raw bytes.
        let pat_bytes = prle.decode();
        let q = &pat_bytes[first.len as usize..];
        let classify = self.prefix_class(q);
        let mut out = Vec::new();
        let use_three_sided = match filter {
            FirstRunFilter::ThreeSided => true,
            FirstRunFilter::Scan => false,
            FirstRunFilter::Adaptive => {
                match self
                    .tree
                    .collect_class_bounded(&classify, ADAPTIVE_CLASS_CUTOFF)
                {
                    Some(class) => {
                        // Small class: verify its members directly.
                        for e in class {
                            if let Some(occ) =
                                self.verify_occurrence(e.text, e.run, first.ch, first.len, q)
                            {
                                out.push(occ);
                            }
                        }
                        out.sort_unstable();
                        return out;
                    }
                    None => true, // large class: worth the 3-sided probe
                }
            }
        };
        if use_three_sided {
            let Some(first_e) = self.tree.first_in_class(&classify) else {
                return out;
            };
            let last_e = self
                .tree
                .last_in_class(&classify)
                .expect("non-empty class has a last element");
            let x_lo = self.xkeys[&(first_e.text, first_e.run)];
            let x_hi = self.xkeys[&(last_e.text, last_e.run)];
            let y_lo = encode_y(first.ch, first.len);
            let y_hi = encode_y(first.ch, u32::MAX);
            for (_, p) in self.rtree.three_sided(x_lo, x_hi, y_lo) {
                if self.rtree_point_y(p) > y_hi {
                    continue;
                }
                let (text, run) = unpayload(p);
                // Verify against the text (guards against order-key
                // collisions).  Text accesses are not counted as I/O on
                // either side of the E12 comparison: the String B-tree's
                // comparator reads texts just the same.
                if let Some(occ) = self.verify_occurrence(text, run, first.ch, first.len, q) {
                    out.push(occ);
                }
            }
        } else {
            for e in self.tree.collect_class(&classify) {
                if let Some(occ) = self.verify_occurrence(e.text, e.run, first.ch, first.len, q) {
                    out.push(occ);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Check conditions (1) and (2) for a candidate boundary and build the
    /// occurrence.
    fn verify_occurrence(
        &self,
        text: u32,
        run: u32,
        first_ch: u8,
        first_len: u32,
        q: &[u8],
    ) -> Option<Occurrence> {
        if run == 0 {
            return None; // no preceding run
        }
        let t = &self.texts[text as usize];
        let prev = t.runs()[run as usize - 1];
        if prev.ch != first_ch || prev.len < first_len {
            return None;
        }
        if !t.suffix_starts_with(run as usize, q) {
            return None;
        }
        Some(Occurrence {
            text,
            pos: t.run_offset(run as usize) - first_len as u64,
        })
    }

    /// The y-coordinate of an R-tree payload point (recomputed from the
    /// stored text; avoids trusting the rectangle).
    fn rtree_point_y(&self, p: u64) -> f64 {
        let (text, run) = unpayload(p);
        if run == 0 {
            NO_PREV_Y
        } else {
            let prev = self.texts[text as usize].runs()[run as usize - 1];
            encode_y(prev.ch, prev.len)
        }
    }

    /// Texts containing `pat` as a *subsequence* (characters in order,
    /// gaps allowed) — the operation §7.2 lists as planned future work
    /// (*"We plan to extend the supported operations of the SBC-tree index
    /// to include subsequence matching"*).
    ///
    /// Evaluated directly over the compressed form: the greedy two-pointer
    /// walk consumes runs, never decompressing.  The run-length index
    /// prunes texts that lack enough of the pattern's scarcest character.
    pub fn subsequence_search(&self, pat: &[u8]) -> Vec<u32> {
        if pat.is_empty() {
            return (0..self.texts.len() as u32).collect();
        }
        let prle = RleSeq::encode(pat);
        // prune: per-text totals of the pattern's first run character must
        // reach that run's length (cheap necessary condition via run walk)
        let mut out = Vec::new();
        for (id, t) in self.texts.iter().enumerate() {
            if rle_is_subsequence(t, &prle) {
                out.push(id as u32);
            }
        }
        out
    }

    /// Texts having `pat` as a prefix (whole-text suffixes are indexed at
    /// boundary 0, so this is a class probe + boundary filter).
    pub fn prefix_search(&self, pat: &[u8]) -> Vec<u32> {
        if pat.is_empty() {
            return (0..self.texts.len() as u32).collect();
        }
        let classify = self.prefix_class(pat);
        let mut out: Vec<u32> = self
            .tree
            .collect_class(&classify)
            .into_iter()
            .filter(|e| e.run == 0)
            .map(|e| e.text)
            .collect();
        out.sort_unstable();
        out
    }

    /// Texts `t` with `lo <= t < hi` lexicographically (uncompressed
    /// content order, evaluated over the compressed form).
    pub fn range_search(&self, lo: &[u8], hi: &[u8]) -> Vec<u32> {
        let classify = |e: RunRef| {
            let t = &self.texts[e.text as usize];
            match t.cmp_suffix_bytes(e.run as usize, lo) {
                Ordering::Less => Ordering::Less,
                _ => match t.cmp_suffix_bytes(e.run as usize, hi) {
                    Ordering::Less => Ordering::Equal,
                    _ => Ordering::Greater,
                },
            }
        };
        let mut out: Vec<u32> = self
            .tree
            .collect_class(&classify)
            .into_iter()
            .filter(|e| e.run == 0)
            .map(|e| e.text)
            .collect();
        out.sort_unstable();
        out
    }

    /// Modeled on-disk storage footprint, using the packed layouts a disk
    /// SBC-tree would write (the in-memory R-tree/`HashMap` shapes are
    /// build-time artifacts, not the persisted format):
    ///
    /// * compressed text: 5 bytes per run (char + u32 length);
    /// * String-B-tree component: 8 bytes per suffix entry
    ///   (packed text/run reference) plus node overhead;
    /// * 3-sided structure: 9 bytes per point — 4-byte leaf rank (the
    ///   order key is implicit in on-disk position), 1-byte preceding-run
    ///   char, 4-byte preceding-run length.
    ///
    /// The single-run accelerator index is reported separately by
    /// [`runlen_index_bytes`](Self::runlen_index_bytes) since the paper's
    /// SBC-tree handles single-run patterns inside the main structure.
    pub fn storage_bytes(&self) -> usize {
        self.compressed_text_bytes() + self.tree.storage_bytes(8) + self.tree.len() * 9
    }

    /// Bytes of RLE-compressed sequence data alone.
    pub fn compressed_text_bytes(&self) -> usize {
        self.texts.iter().map(|t| t.compressed_bytes()).sum()
    }

    /// Storage of the optional single-run-pattern accelerator (8 packed
    /// bytes per run).
    pub fn runlen_index_bytes(&self) -> usize {
        self.runlen_idx.len() * 8
    }

    /// Total logical I/O so far across all components.
    pub fn io_stats(&self) -> IoSnapshot {
        let a = self.tree.stats().snapshot();
        let b = self.rtree.stats().snapshot();
        let c = self.runlen_idx.stats().snapshot();
        IoSnapshot {
            reads: a.reads + b.reads + c.reads + self.text_read_io.get(),
            writes: a.writes + b.writes + c.writes + self.text_write_io.get(),
        }
    }

    /// Reset all I/O counters.
    pub fn reset_io(&self) {
        self.tree.stats().reset();
        self.rtree.stats().reset();
        self.runlen_idx.stats().reset();
        self.text_write_io.set(0);
        self.text_read_io.set(0);
    }
}

impl Default for SbcTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Greedy subsequence test over two RLE sequences, no decompression:
/// for each pattern run `(c, k)`, consume `k` copies of `c` from the text
/// runs at/after the cursor (greedy matching is optimal for subsequences).
fn rle_is_subsequence(text: &RleSeq, pat: &RleSeq) -> bool {
    let mut ti = 0usize;
    // how much of text run `ti` is already consumed
    let mut used: u64 = 0;
    for pr in pat.runs() {
        let mut need = pr.len as u64;
        while need > 0 {
            let Some(tr) = text.runs().get(ti) else {
                return false;
            };
            if tr.ch == pr.ch {
                let avail = tr.len as u64 - used;
                let take = avail.min(need);
                need -= take;
                used += take;
                if used == tr.len as u64 {
                    ti += 1;
                    used = 0;
                }
            } else {
                ti += 1;
                used = 0;
            }
        }
    }
    true
}

fn encode_y(ch: u8, len: u32) -> f64 {
    ch as f64 * 4294967296.0 + len as f64
}

fn payload(text: u32, run: u32) -> u64 {
    ((text as u64) << 32) | run as u64
}

fn unpayload(p: u64) -> (u32, u32) {
    ((p >> 32) as u32, p as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::string_btree::naive_substring_search;

    fn build(texts: &[&str]) -> SbcTree {
        let mut t = SbcTree::with_fanout(4);
        for s in texts {
            t.insert_sequence(s.as_bytes());
        }
        t
    }

    fn occs(v: Vec<Occurrence>) -> Vec<(u32, u64)> {
        v.into_iter().map(|o| (o.text, o.pos)).collect()
    }

    #[test]
    fn substring_matches_naive_small() {
        let texts = ["HHHEELLLHH", "ELLHHH", "LLLL", "HEL"];
        let t = build(&texts);
        let raw: Vec<Vec<u8>> = texts.iter().map(|s| s.as_bytes().to_vec()).collect();
        for pat in [
            "HH",
            "LL",
            "ELL",
            "HEL",
            "HHH",
            "L",
            "HHHEELLLHH",
            "XYZ",
            "LLLL",
            "EL",
            "HHEE",
            "HHE",
        ] {
            let mut want = naive_substring_search(&raw, pat.as_bytes());
            want.sort_unstable();
            let got = occs(t.substring_search(pat.as_bytes()));
            assert_eq!(got, want, "pattern {pat} (3-sided)");
            let got_scan = occs(t.substring_search_scan(pat.as_bytes()));
            assert_eq!(got_scan, want, "pattern {pat} (scan)");
        }
    }

    #[test]
    fn single_run_pattern_enumerates_positions() {
        let t = build(&["HHHH"]);
        // "HH" occurs at 0, 1, 2
        assert_eq!(
            occs(t.substring_search(b"HH")),
            vec![(0, 0), (0, 1), (0, 2)]
        );
        assert_eq!(occs(t.substring_search(b"HHHH")), vec![(0, 0)]);
        assert!(t.substring_search(b"HHHHH").is_empty());
    }

    #[test]
    fn pattern_first_run_inside_longer_run() {
        // "HHE" inside "HHHHE": first run of the pattern (HH) is the tail
        // of a longer run — the 3-sided y ≥ filter case.
        let t = build(&["HHHHE"]);
        assert_eq!(occs(t.substring_search(b"HHE")), vec![(0, 2)]);
        assert_eq!(occs(t.substring_search(b"HHHHE")), vec![(0, 0)]);
        assert!(t.substring_search(b"HHHHHE").is_empty());
    }

    #[test]
    fn pattern_last_run_prefix_of_longer_run() {
        // "ELL" inside "HELLL": pattern's last run (LL) is a prefix of LLL.
        let t = build(&["HELLL"]);
        assert_eq!(occs(t.substring_search(b"ELL")), vec![(0, 1)]);
        // but interior runs must match exactly:
        let t2 = build(&["HEELL"]);
        assert!(t2.substring_search(b"HEEEL").is_empty());
    }

    #[test]
    fn prefix_search_texts() {
        let t = build(&["HHHE", "HHL", "HH", "EHH"]);
        assert_eq!(t.prefix_search(b"HH"), vec![0, 1, 2]);
        assert_eq!(t.prefix_search(b"HHH"), vec![0]);
        assert_eq!(t.prefix_search(b"E"), vec![3]);
        assert_eq!(t.prefix_search(b""), vec![0, 1, 2, 3]);
    }

    #[test]
    fn range_search_texts() {
        let t = build(&["EEE", "HEL", "HHL", "LLL"]);
        // string order: EEE < HEL < HHL < LLL
        assert_eq!(t.range_search(b"H", b"L"), vec![1, 2]);
        assert_eq!(t.range_search(b"E", b"Z"), vec![0, 1, 2, 3]);
        assert_eq!(t.range_search(b"M", b"N"), Vec::<u32>::new());
    }

    #[test]
    fn storage_is_far_smaller_than_string_btree_on_long_runs() {
        use crate::string_btree::StringBTree;
        // long-run text: 100 runs of length 50
        let mut raw = Vec::new();
        for i in 0..100 {
            let ch = [b'H', b'E', b'L'][i % 3];
            raw.extend(std::iter::repeat_n(ch, 50));
        }
        let mut sbc = SbcTree::new();
        sbc.insert_sequence(&raw);
        let mut sbt = StringBTree::new();
        sbt.insert_text(&raw);
        assert!(
            sbc.storage_bytes() * 5 < sbt.storage_bytes(),
            "sbc {} vs sbt {}",
            sbc.storage_bytes(),
            sbt.storage_bytes()
        );
        // and the suffix count ratio is the run length
        assert_eq!(sbt.num_suffixes(), 5000);
        assert_eq!(sbc.num_suffixes(), 100);
    }

    #[test]
    fn io_counts_insert_and_search() {
        let mut t = SbcTree::new();
        t.insert_sequence(b"HHHEELLLHHHEELLL");
        assert!(t.io_stats().writes > 0);
        t.reset_io();
        let _ = t.substring_search(b"EELL");
        let s = t.io_stats();
        assert!(s.reads > 0);
        assert_eq!(s.writes, 0);
    }

    #[test]
    fn occurrences_across_many_texts() {
        let texts: Vec<String> = (0..30)
            .map(|i| {
                let chars = [b'H', b'E', b'L'];
                let mut s = Vec::new();
                for j in 0..20 {
                    let ch = chars[(i + j) % 3];
                    s.extend(std::iter::repeat_n(ch, 1 + (i * 7 + j * 3) % 5));
                }
                String::from_utf8(s).unwrap()
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let t = build(&refs);
        let raw: Vec<Vec<u8>> = texts.iter().map(|s| s.as_bytes().to_vec()).collect();
        for pat in ["HEL", "EELL", "HHEE", "LLLHH", "EEE"] {
            let mut want = naive_substring_search(&raw, pat.as_bytes());
            want.sort_unstable();
            assert_eq!(occs(t.substring_search(pat.as_bytes())), want, "pat {pat}");
        }
    }

    #[test]
    fn subsequence_search_matches_naive() {
        fn naive_subseq(text: &[u8], pat: &[u8]) -> bool {
            let mut it = text.iter();
            pat.iter().all(|c| it.any(|t| t == c))
        }
        let texts = ["HHHEELLLHH", "ELLHHH", "LLLL", "HEL", "EHEHEH"];
        let t = build(&texts);
        for pat in ["HEL", "HHLL", "LLLLL", "EEH", "HHHHHH", "", "X", "ELH"] {
            let got = t.subsequence_search(pat.as_bytes());
            let want: Vec<u32> = texts
                .iter()
                .enumerate()
                .filter(|(_, s)| naive_subseq(s.as_bytes(), pat.as_bytes()))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want, "pattern {pat:?}");
        }
    }

    #[test]
    fn subsequence_greedy_handles_split_runs() {
        // pattern needs 4 H's spread over two text runs separated by E
        let t = build(&["HHEHH"]);
        assert_eq!(t.subsequence_search(b"HHHH"), vec![0]);
        assert!(t.subsequence_search(b"HHHHH").is_empty());
        // interleaved requirement
        assert_eq!(t.subsequence_search(b"HEH"), vec![0]);
        assert!(t.subsequence_search(b"EHE").is_empty());
    }

    #[test]
    fn empty_and_missing_patterns() {
        let t = build(&["HHEE"]);
        assert!(t.substring_search(b"").is_empty());
        assert!(t.substring_search(b"XY").is_empty());
        assert!(t.prefix_search(b"X").is_empty());
    }
}
