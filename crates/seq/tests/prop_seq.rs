//! Property tests: the SBC-tree (compressed) and String B-tree
//! (uncompressed) must agree with each other and with a naive oracle on
//! every operation, over arbitrary run-structured sequences.

use bdbms_seq::rle::RleSeq;
use bdbms_seq::string_btree::naive_substring_search;
use bdbms_seq::{gen, SbcTree, StringBTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run-structured sequences over {H, E, L} (compressible, like Figure 12).
fn arb_ss_text() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((prop::sample::select(b"HEL".to_vec()), 1usize..6), 1..8).prop_map(
        |runs| {
            let mut out = Vec::new();
            for (ch, len) in runs {
                out.extend(std::iter::repeat_n(ch, len));
            }
            out
        },
    )
}

fn arb_pattern() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((prop::sample::select(b"HEL".to_vec()), 1usize..4), 1..4).prop_map(
        |runs| {
            let mut out = Vec::new();
            for (ch, len) in runs {
                out.extend(std::iter::repeat_n(ch, len));
            }
            out
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RLE encode/decode is the identity; textual form round-trips.
    #[test]
    fn rle_roundtrips(text in arb_ss_text()) {
        let rle = RleSeq::encode(&text);
        prop_assert_eq!(rle.decode(), text.clone());
        let parsed = RleSeq::from_text(&rle.to_text()).unwrap();
        prop_assert_eq!(parsed.decode(), text.clone());
        // random access agrees
        for (i, &c) in text.iter().enumerate() {
            prop_assert_eq!(rle.char_at(i as u64), Some(c));
        }
        prop_assert_eq!(rle.char_at(text.len() as u64), None);
    }

    /// SBC-tree substring search (both paths) == String B-tree == naive.
    #[test]
    fn substring_search_three_way_agreement(
        texts in prop::collection::vec(arb_ss_text(), 1..12),
        pat in arb_pattern(),
    ) {
        let mut sbc = SbcTree::with_fanout(4);
        let mut sbt = StringBTree::with_fanout(4);
        for t in &texts {
            sbc.insert_sequence(t);
            sbt.insert_text(t);
        }
        let mut want = naive_substring_search(&texts, &pat);
        want.sort_unstable();
        let got_sbc: Vec<(u32, u64)> = sbc
            .substring_search(&pat)
            .into_iter()
            .map(|o| (o.text, o.pos))
            .collect();
        let got_scan: Vec<(u32, u64)> = sbc
            .substring_search_scan(&pat)
            .into_iter()
            .map(|o| (o.text, o.pos))
            .collect();
        let got_three: Vec<(u32, u64)> = sbc
            .substring_search_three_sided(&pat)
            .into_iter()
            .map(|o| (o.text, o.pos))
            .collect();
        let mut got_sbt = sbt.substring_search(&pat);
        got_sbt.sort_unstable();
        prop_assert_eq!(&got_sbc, &want, "sbc adaptive");
        prop_assert_eq!(&got_scan, &want, "sbc scan");
        prop_assert_eq!(&got_three, &want, "sbc 3-sided");
        prop_assert_eq!(&got_sbt, &want, "string b-tree");
    }

    /// Generator-built corpora (the shapes E12/E15 run at, scaled down):
    /// every SBC filter strategy and the String B-tree must agree with
    /// the naive decompress-and-scan oracle, both on patterns cut from
    /// the corpus itself (guaranteed hits, arbitrary run alignment) and
    /// on independently generated ones.
    #[test]
    fn gen_corpus_substring_agreement(
        seed in any::<u64>(),
        mean_run in 1.5f64..16.0,
        pat_len in 2usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let texts: Vec<Vec<u8>> = (0..8)
            .map(|_| gen::secondary_structure(&mut rng, 120, mean_run))
            .collect();
        let mut sbc = SbcTree::new();
        let mut sbt = StringBTree::new();
        for t in &texts {
            sbc.insert_sequence(t);
            sbt.insert_text(t);
        }
        let cut = &texts[seed as usize % texts.len()];
        let off = seed as usize % (cut.len() - pat_len.min(cut.len() - 1));
        let cut_pat = cut[off..off + pat_len.min(cut.len() - off)].to_vec();
        let fresh_pat = gen::secondary_structure(&mut rng, pat_len, mean_run);
        for pat in [cut_pat, fresh_pat] {
            let mut want = naive_substring_search(&texts, &pat);
            want.sort_unstable();
            let as_pairs = |occs: Vec<bdbms_seq::sbc_tree::Occurrence>| -> Vec<(u32, u64)> {
                occs.into_iter().map(|o| (o.text, o.pos)).collect()
            };
            prop_assert_eq!(&as_pairs(sbc.substring_search(&pat)), &want, "sbc adaptive");
            prop_assert_eq!(&as_pairs(sbc.substring_search_scan(&pat)), &want, "sbc scan");
            prop_assert_eq!(
                &as_pairs(sbc.substring_search_three_sided(&pat)),
                &want,
                "sbc 3-sided"
            );
            let mut got_sbt = sbt.substring_search(&pat);
            got_sbt.sort_unstable();
            prop_assert_eq!(&got_sbt, &want, "string b-tree");
        }
    }

    /// Prefix and range search agree between the two index structures.
    #[test]
    fn prefix_and_range_agreement(
        texts in prop::collection::vec(arb_ss_text(), 1..12),
        pat in arb_pattern(),
        lo in arb_pattern(),
        hi in arb_pattern(),
    ) {
        let mut sbc = SbcTree::with_fanout(4);
        let mut sbt = StringBTree::with_fanout(4);
        for t in &texts {
            sbc.insert_sequence(t);
            sbt.insert_text(t);
        }
        prop_assert_eq!(sbc.prefix_search(&pat), sbt.prefix_search(&pat));
        let naive_prefix: Vec<u32> = texts
            .iter()
            .enumerate()
            .filter(|(_, t)| t.starts_with(&pat))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(sbc.prefix_search(&pat), naive_prefix);

        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let naive_range: Vec<u32> = texts
            .iter()
            .enumerate()
            .filter(|(_, t)| t.as_slice() >= lo.as_slice() && t.as_slice() < hi.as_slice())
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(sbc.range_search(&lo, &hi), naive_range.clone());
        prop_assert_eq!(sbt.range_search(&lo, &hi), naive_range);
    }

    /// The SBC-tree indexes exactly one suffix per run, the String B-tree
    /// one per character — the structural source of the storage claim.
    #[test]
    fn suffix_count_ratio_is_mean_run_length(texts in prop::collection::vec(arb_ss_text(), 1..8)) {
        let mut sbc = SbcTree::new();
        let mut sbt = StringBTree::new();
        let mut chars = 0usize;
        let mut runs = 0usize;
        for t in &texts {
            sbc.insert_sequence(t);
            sbt.insert_text(t);
            chars += t.len();
            runs += RleSeq::encode(t).num_runs();
        }
        prop_assert_eq!(sbc.num_suffixes(), runs);
        prop_assert_eq!(sbt.num_suffixes(), chars);
    }
}
