//! Deterministic I/O fault injection.
//!
//! Real corruption testing cannot wait for real disks to fail, so this
//! module makes failure *scriptable*: a [`FaultInjector`] counts every
//! instrumented I/O operation (page writes and syncs through a
//! [`FaultStore`], WAL flushes, checkpoint renames) and fires exactly one
//! scripted fault when the armed operation index comes up:
//!
//! * [`FaultKind::TransientError`] — the operation fails once with an
//!   [`Io`](bdbms_common::ErrorCode::Io) error, then the device "heals";
//! * [`FaultKind::PermanentError`] — the operation and every one after
//!   it fails (a dead device) until the injector is disarmed;
//! * [`FaultKind::TornWrite`] — only a prefix of the write takes effect
//!   before the error: the classic torn page / torn log tail;
//! * [`FaultKind::BitFlip`] — one bit of the written payload is flipped
//!   and the write *reports success*: silent corruption, the case page
//!   checksums and WAL frame CRCs exist for.
//!
//! Because the operation counter is deterministic for a deterministic
//! workload, a harness can first run clean to learn the operation count,
//! then replay the workload once per (index, kind) pair — exhaustively
//! visiting every I/O the engine performs.  The crash-recovery suite in
//! `bdbms-core` does exactly that.
//!
//! Sites that cannot honour a data-shaped fault degrade it to an error:
//! a `sync` or a rename has no payload to tear or flip, so `TornWrite`
//! and `BitFlip` there behave like `TransientError`.  The decision is
//! still deterministic — what matters is that *some* fault fires at
//! every index.

use std::sync::Arc;

use parking_lot::Mutex;

use bdbms_common::{BdbmsError, Result};

use crate::pager::{PageId, PageStore, PAGE_SIZE};

/// The failure to inject when the armed operation index is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this one operation with an I/O error; later operations
    /// succeed (a retried write would go through).
    TransientError,
    /// Fail this operation and every operation after it.
    PermanentError,
    /// Apply only the first `bytes` bytes of the write, then fail.
    TornWrite {
        /// How many bytes of the new data reach the medium.
        bytes: usize,
    },
    /// Flip the low bit of byte `byte` (mod the payload length) and
    /// report success — silent corruption.
    BitFlip {
        /// Which payload byte to damage.
        byte: usize,
    },
}

/// What an instrumented site should do with the current operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDecision {
    /// Perform the operation normally.
    Proceed,
    /// Fail with an injected I/O error, touching nothing.
    Fail,
    /// Let only the first `bytes` bytes of the write land, then fail.
    Tear {
        /// Prefix of the new data that survives.
        bytes: usize,
    },
    /// Write with the low bit of byte `byte` flipped, report success.
    Flip {
        /// Which payload byte to damage.
        byte: usize,
    },
}

#[derive(Default)]
struct State {
    ops: u64,
    armed: Option<(u64, FaultKind)>,
    fired: bool,
    /// Latched by a fired [`FaultKind::PermanentError`].
    dead: bool,
}

/// Shared, scriptable fault source.  Cheap to clone via `Arc`; all
/// methods take `&self`.
pub struct FaultInjector {
    state: Mutex<State>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("FaultInjector")
            .field("ops", &s.ops)
            .field("armed", &s.armed)
            .field("fired", &s.fired)
            .finish()
    }
}

impl FaultInjector {
    /// A disarmed injector: counts operations, injects nothing.
    pub fn new() -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            state: Mutex::new(State::default()),
        })
    }

    /// Arm `kind` to fire at operation index `at_op` (0-based), resetting
    /// the operation counter.
    pub fn arm(&self, at_op: u64, kind: FaultKind) {
        let mut s = self.state.lock();
        *s = State {
            ops: 0,
            armed: Some((at_op, kind)),
            fired: false,
            dead: false,
        };
    }

    /// Clear any armed fault (including a latched permanent failure);
    /// the counter keeps running.
    pub fn disarm(&self) {
        let mut s = self.state.lock();
        s.armed = None;
        s.dead = false;
    }

    /// Operations observed since the last [`arm`](Self::arm) (or since
    /// creation).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Has the armed fault fired?
    pub fn fired(&self) -> bool {
        self.state.lock().fired
    }

    /// Count one operation and decide its fate.  Instrumented sites call
    /// this once per I/O they are about to perform.
    pub fn next_op(&self) -> IoDecision {
        let mut s = self.state.lock();
        let idx = s.ops;
        s.ops += 1;
        if s.dead {
            return IoDecision::Fail;
        }
        match s.armed {
            Some((at, kind)) if !s.fired && idx == at => {
                s.fired = true;
                match kind {
                    FaultKind::TransientError => IoDecision::Fail,
                    FaultKind::PermanentError => {
                        s.dead = true;
                        IoDecision::Fail
                    }
                    FaultKind::TornWrite { bytes } => IoDecision::Tear { bytes },
                    FaultKind::BitFlip { byte } => IoDecision::Flip { byte },
                }
            }
            _ => IoDecision::Proceed,
        }
    }

    /// The error an injected failure surfaces as (always
    /// [`Io`](bdbms_common::ErrorCode::Io), so retry logic can tell it
    /// from logical corruption).
    pub fn injected_error(site: &str) -> BdbmsError {
        BdbmsError::io(format!("injected fault: {site}"))
    }
}

/// A [`PageStore`] wrapper that routes every write-shaped operation
/// through a [`FaultInjector`].  Reads pass through uncounted — the
/// write path is where durability is won or lost, and read-side
/// corruption is covered by the checksum sweep tests.
pub struct FaultStore {
    inner: Box<dyn PageStore>,
    injector: Arc<FaultInjector>,
}

impl FaultStore {
    /// Wrap `inner` under `injector`.
    pub fn new(inner: Box<dyn PageStore>, injector: Arc<FaultInjector>) -> FaultStore {
        FaultStore { inner, injector }
    }
}

impl PageStore for FaultStore {
    fn allocate(&mut self) -> Result<PageId> {
        // Allocation extends the backing file — a real write.  Data-shaped
        // faults degrade to an error (the extension either happens or
        // doesn't; the zero fill has nothing meaningful to tear or flip).
        match self.injector.next_op() {
            IoDecision::Proceed => self.inner.allocate(),
            _ => Err(FaultInjector::injected_error("page allocation")),
        }
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        match self.injector.next_op() {
            IoDecision::Proceed => self.inner.write_page(id, buf),
            IoDecision::Fail => Err(FaultInjector::injected_error(&format!("write of {id}"))),
            IoDecision::Tear { bytes } => {
                // First `bytes` bytes of the new data land; the rest of
                // the page keeps its previous contents.
                let n = bytes.min(PAGE_SIZE);
                let mut torn = vec![0u8; PAGE_SIZE];
                self.inner.read_page(id, &mut torn)?;
                torn[..n].copy_from_slice(&buf[..n]);
                self.inner.write_page(id, &torn)?;
                Err(FaultInjector::injected_error(&format!(
                    "torn write of {id} at byte {n}"
                )))
            }
            IoDecision::Flip { byte } => {
                let mut flipped = buf.to_vec();
                let at = byte % flipped.len();
                flipped[at] ^= 0x01;
                self.inner.write_page(id, &flipped)
            }
        }
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn sync(&mut self) -> Result<()> {
        match self.injector.next_op() {
            IoDecision::Proceed => self.inner.sync(),
            _ => Err(FaultInjector::injected_error("page-store fsync")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemStore;

    fn store_with(injector: Arc<FaultInjector>) -> FaultStore {
        FaultStore::new(Box::new(MemStore::new()), injector)
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let inj = FaultInjector::new();
        let mut s = store_with(inj.clone());
        let id = s.allocate().unwrap();
        let page = [7u8; PAGE_SIZE];
        s.write_page(id, &page).unwrap();
        s.sync().unwrap();
        let mut out = [0u8; PAGE_SIZE];
        s.read_page(id, &mut out).unwrap();
        assert_eq!(out, page);
        assert_eq!(inj.op_count(), 3, "allocate + write + sync counted");
        assert!(!inj.fired());
    }

    #[test]
    fn transient_fault_fires_once_then_heals() {
        let inj = FaultInjector::new();
        let mut s = store_with(inj.clone());
        let id = s.allocate().unwrap();
        inj.arm(0, FaultKind::TransientError);
        let err = s.write_page(id, &[1u8; PAGE_SIZE]).unwrap_err();
        assert_eq!(err.code(), bdbms_common::ErrorCode::Io);
        assert!(inj.fired());
        // the retry goes through
        s.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
    }

    #[test]
    fn permanent_fault_keeps_failing_until_disarmed() {
        let inj = FaultInjector::new();
        let mut s = store_with(inj.clone());
        let id = s.allocate().unwrap();
        inj.arm(0, FaultKind::PermanentError);
        assert!(s.write_page(id, &[1u8; PAGE_SIZE]).is_err());
        assert!(s.write_page(id, &[1u8; PAGE_SIZE]).is_err());
        assert!(s.sync().is_err());
        inj.disarm();
        s.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
    }

    #[test]
    fn torn_write_applies_only_the_prefix() {
        let inj = FaultInjector::new();
        let mut s = store_with(inj.clone());
        let id = s.allocate().unwrap();
        s.write_page(id, &[0xAAu8; PAGE_SIZE]).unwrap();
        inj.arm(0, FaultKind::TornWrite { bytes: 100 });
        assert!(s.write_page(id, &[0xBBu8; PAGE_SIZE]).is_err());
        let mut out = [0u8; PAGE_SIZE];
        s.read_page(id, &mut out).unwrap();
        assert!(out[..100].iter().all(|&b| b == 0xBB), "prefix landed");
        assert!(out[100..].iter().all(|&b| b == 0xAA), "tail kept old data");
    }

    #[test]
    fn bit_flip_succeeds_silently_with_one_bit_off() {
        let inj = FaultInjector::new();
        let mut s = store_with(inj.clone());
        let id = s.allocate().unwrap();
        inj.arm(0, FaultKind::BitFlip { byte: 5000 });
        s.write_page(id, &[0u8; PAGE_SIZE]).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        s.read_page(id, &mut out).unwrap();
        assert_eq!(out[5000], 0x01);
        assert_eq!(out.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn fault_at_later_index_waits_for_it() {
        let inj = FaultInjector::new();
        let mut s = store_with(inj.clone());
        let id = s.allocate().unwrap();
        inj.arm(2, FaultKind::TransientError);
        s.write_page(id, &[1u8; PAGE_SIZE]).unwrap(); // op 0
        s.sync().unwrap(); // op 1
        assert!(s.write_page(id, &[2u8; PAGE_SIZE]).is_err()); // op 2
        s.sync().unwrap(); // healed
    }
}
