//! Backing page stores.
//!
//! A [`PageStore`] persists fixed-size pages addressed by [`PageId`].
//! [`MemStore`] keeps pages in memory (deterministic tests, benchmarks);
//! [`FileStore`] maps pages onto a file so a database survives a process.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bdbms_common::{BdbmsError, Result};

/// Size of every page in bytes (8 KiB — PostgreSQL's default).
pub const PAGE_SIZE: usize = 8192;

/// Identifies a page within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// A store of fixed-size pages.
pub trait PageStore: Send {
    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&mut self) -> Result<PageId>;

    /// Read page `id` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` (exactly [`PAGE_SIZE`] bytes) to page `id`.
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Number of pages allocated so far.
    fn num_pages(&self) -> u64;

    /// Force written pages to stable storage (no-op for stores without a
    /// durable backing).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// In-memory page store.
#[derive(Default)]
pub struct MemStore {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl PageStore for MemStore {
    fn allocate(&mut self) -> Result<PageId> {
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(PageId(self.pages.len() as u64 - 1))
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let page = self
            .pages
            .get(id.0 as usize)
            .ok_or_else(|| BdbmsError::storage(format!("read of unallocated {id}")))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| BdbmsError::storage(format!("write of unallocated {id}")))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// File-backed page store; page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileStore {
    file: File,
    num_pages: u64,
}

impl FileStore {
    /// Open (or create) a store at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(BdbmsError::corrupt(format!(
                "page file length {len} is not a multiple of the page size \
                 ({PAGE_SIZE}); the file is truncated or damaged"
            )));
        }
        Ok(FileStore {
            file,
            num_pages: len / PAGE_SIZE as u64,
        })
    }

    /// Create an empty store at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore { file, num_pages: 0 })
    }
}

impl PageStore for FileStore {
    fn allocate(&mut self) -> Result<PageId> {
        let id = PageId(self.num_pages);
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.num_pages += 1;
        Ok(id)
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if id.0 >= self.num_pages {
            return Err(BdbmsError::storage(format!("read of unallocated {id}")));
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if id.0 >= self.num_pages {
            return Err(BdbmsError::storage(format!("write of unallocated {id}")));
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(store.num_pages(), 2);

        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        store.write_page(b, &page).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        store.read_page(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        // page a is still zeroed
        store.read_page(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));

        // unallocated access fails
        assert!(store.read_page(PageId(99), &mut out).is_err());
        assert!(store.write_page(PageId(99), &page).is_err());
    }

    #[test]
    fn mem_store_basics() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn file_store_basics_and_reopen() {
        let dir = std::env::temp_dir().join(format!("bdbms-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut fs = FileStore::open(&path).unwrap();
            exercise(&mut fs);
        }
        {
            // reopen and observe persisted pages
            let mut fs = FileStore::open(&path).unwrap();
            assert_eq!(fs.num_pages(), 2);
            let mut out = [0u8; PAGE_SIZE];
            fs.read_page(PageId(1), &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
        }
        let _ = std::fs::remove_file(&path);
    }
}
