//! Backing page stores.
//!
//! A [`PageStore`] persists fixed-size pages addressed by [`PageId`].
//! [`MemStore`] keeps pages in memory (deterministic tests, benchmarks);
//! [`FileStore`] maps pages onto a file so a database survives a process.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bdbms_common::{BdbmsError, Result};

use crate::wal::crc32;

/// Size of every page in bytes (8 KiB — PostgreSQL's default).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the end of every page for the CRC-32 checksum
/// trailer.  Page users (the slotted layout, and through it the heap)
/// never touch these bytes; the buffer pool stamps them on every flush
/// and verifies them on every read miss, so a scribbled byte anywhere in
/// a persisted page surfaces as [`bdbms_common::ErrorCode::Corrupt`]
/// instead of being served to queries as garbage rows.
pub const PAGE_TRAILER: usize = 4;

/// Bytes of a page covered by the checksum (everything but the trailer).
pub const PAGE_BODY: usize = PAGE_SIZE - PAGE_TRAILER;

/// The CRC-32 a page's trailer should carry for its current body.
pub fn page_checksum(page: &[u8]) -> u32 {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    crc32(&page[..PAGE_BODY])
}

/// Stamp the checksum trailer (done by the buffer pool before any page
/// write reaches the backing store).
pub fn stamp_page_checksum(page: &mut [u8]) {
    let c = page_checksum(page);
    page[PAGE_BODY..PAGE_SIZE].copy_from_slice(&c.to_le_bytes());
}

/// Does the page's trailer match its body?
///
/// An entirely zeroed page is accepted: that is the state of a page the
/// store allocated but never flushed (e.g. [`FileStore::allocate`]
/// extends the file with zeros), and of pre-checksum images.  A zeroed
/// page carries no records, so accepting it serves no garbage — while
/// any single corrupted byte of a *stamped* page fails the match (a flip
/// in the body changes the CRC; a flip in the trailer breaks the stored
/// value; no flip can zero the whole page).
pub fn verify_page_checksum(page: &[u8]) -> bool {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    let stored = u32::from_le_bytes(page[PAGE_BODY..PAGE_SIZE].try_into().unwrap());
    stored == page_checksum(page) || (stored == 0 && page.iter().all(|&b| b == 0))
}

/// Identifies a page within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pg{}", self.0)
    }
}

/// A store of fixed-size pages.
pub trait PageStore: Send {
    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&mut self) -> Result<PageId>;

    /// Read page `id` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` (exactly [`PAGE_SIZE`] bytes) to page `id`.
    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Number of pages allocated so far.
    fn num_pages(&self) -> u64;

    /// Force written pages to stable storage (no-op for stores without a
    /// durable backing).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// In-memory page store.
#[derive(Default)]
pub struct MemStore {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl PageStore for MemStore {
    fn allocate(&mut self) -> Result<PageId> {
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(PageId(self.pages.len() as u64 - 1))
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let page = self
            .pages
            .get(id.0 as usize)
            .ok_or_else(|| BdbmsError::storage(format!("read of unallocated {id}")))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| BdbmsError::storage(format!("write of unallocated {id}")))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// File-backed page store; page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileStore {
    file: File,
    num_pages: u64,
}

impl FileStore {
    /// Open (or create) a store at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(BdbmsError::corrupt(format!(
                "page file length {len} is not a multiple of the page size \
                 ({PAGE_SIZE}); the file is truncated or damaged"
            )));
        }
        Ok(FileStore {
            file,
            num_pages: len / PAGE_SIZE as u64,
        })
    }

    /// Create an empty store at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStore { file, num_pages: 0 })
    }
}

impl PageStore for FileStore {
    fn allocate(&mut self) -> Result<PageId> {
        let id = PageId(self.num_pages);
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.num_pages += 1;
        Ok(id)
    }

    fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if id.0 >= self.num_pages {
            return Err(BdbmsError::storage(format!("read of unallocated {id}")));
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if id.0 >= self.num_pages {
            return Err(BdbmsError::storage(format!("write of unallocated {id}")));
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn PageStore) {
        let a = store.allocate().unwrap();
        let b = store.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(store.num_pages(), 2);

        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        store.write_page(b, &page).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        store.read_page(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        // page a is still zeroed
        store.read_page(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));

        // unallocated access fails
        assert!(store.read_page(PageId(99), &mut out).is_err());
        assert!(store.write_page(PageId(99), &page).is_err());
    }

    #[test]
    fn mem_store_basics() {
        exercise(&mut MemStore::new());
    }

    #[test]
    fn checksum_stamp_verify_roundtrip() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[17] = 0x5A;
        page[4000] = 0xC3;
        stamp_page_checksum(&mut page);
        assert!(verify_page_checksum(&page));
    }

    #[test]
    fn checksum_catches_any_single_byte_flip_of_a_stamped_page() {
        let mut page = vec![0u8; PAGE_SIZE];
        for (i, b) in page.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        stamp_page_checksum(&mut page);
        assert!(verify_page_checksum(&page));
        // Flip one byte in the body, one in the trailer: both must fail.
        for at in [0, 123, PAGE_BODY - 1, PAGE_BODY, PAGE_SIZE - 1] {
            let mut bad = page.clone();
            bad[at] ^= 0x01;
            assert!(!verify_page_checksum(&bad), "flip at {at} went undetected");
        }
    }

    #[test]
    fn all_zero_page_passes_as_never_flushed() {
        let page = vec![0u8; PAGE_SIZE];
        assert!(verify_page_checksum(&page));
        // ...but a zero trailer on a non-zero body does not.
        let mut nonzero = page.clone();
        nonzero[9] = 1;
        assert!(!verify_page_checksum(&nonzero));
    }

    #[test]
    fn file_store_basics_and_reopen() {
        let dir = std::env::temp_dir().join(format!("bdbms-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut fs = FileStore::open(&path).unwrap();
            exercise(&mut fs);
        }
        {
            // reopen and observe persisted pages
            let mut fs = FileStore::open(&path).unwrap();
            assert_eq!(fs.num_pages(), 2);
            let mut out = [0u8; PAGE_SIZE];
            fs.read_page(PageId(1), &mut out).unwrap();
            assert_eq!(out[0], 0xAB);
        }
        let _ = std::fs::remove_file(&path);
    }
}
