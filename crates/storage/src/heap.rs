//! Heap files: unordered collections of variable-length records.
//!
//! Each engine table stores its tuples in one [`HeapFile`].  Records larger
//! than a page (long gene or protein sequences) are transparently split
//! into an overflow chain of fragments, so the value model never has to
//! care about page size.

use std::sync::Arc;

use bdbms_common::{BdbmsError, Result};

use crate::buffer::BufferPool;
use crate::pager::PageId;
use crate::slotted;

/// Record id: page + slot of the head fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the head fragment.
    pub page: PageId,
    /// Slot within that page.
    pub slot: u16,
}

impl std::fmt::Display for Rid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// Fragment header: flags(1) + next_page(8) + next_slot(2).
const FRAG_HEADER: usize = 11;
const FLAG_HAS_NEXT: u8 = 0b01;
const FLAG_IS_HEAD: u8 = 0b10;
/// Payload budget per fragment, sized so a fragment always fits on a page.
const FRAG_PAYLOAD: usize = slotted::MAX_RECORD - FRAG_HEADER;

fn encode_fragment(is_head: bool, next: Option<Rid>, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAG_HEADER + payload.len());
    let mut flags = 0u8;
    if is_head {
        flags |= FLAG_IS_HEAD;
    }
    if next.is_some() {
        flags |= FLAG_HAS_NEXT;
    }
    out.push(flags);
    let n = next.unwrap_or(Rid {
        page: PageId(0),
        slot: 0,
    });
    out.extend_from_slice(&n.page.0.to_le_bytes());
    out.extend_from_slice(&n.slot.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_fragment(rec: &[u8]) -> Result<(bool, Option<Rid>, &[u8])> {
    if rec.len() < FRAG_HEADER {
        return Err(BdbmsError::storage("fragment too short"));
    }
    let flags = rec[0];
    let page = u64::from_le_bytes(rec[1..9].try_into().unwrap());
    let slot = u16::from_le_bytes(rec[9..11].try_into().unwrap());
    let next = if flags & FLAG_HAS_NEXT != 0 {
        Some(Rid {
            page: PageId(page),
            slot,
        })
    } else {
        None
    };
    Ok((flags & FLAG_IS_HEAD != 0, next, &rec[FRAG_HEADER..]))
}

/// An unordered file of records over a shared buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    /// Pages that recently freed space; tried before allocating.
    reuse_candidates: Vec<PageId>,
}

impl HeapFile {
    /// Create an empty heap file on `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Ok(HeapFile {
            pool,
            pages: Vec::new(),
            reuse_candidates: Vec::new(),
        })
    }

    /// Reattach a heap file persisted earlier: `pages` is the page list a
    /// previous incarnation reported via [`pages`](Self::pages), in
    /// order.  Records are readable immediately; inserts continue on the
    /// tail page.
    pub fn attach(pool: Arc<BufferPool>, pages: Vec<PageId>) -> HeapFile {
        HeapFile {
            pool,
            pages,
            // conservative: pages with reusable holes are rediscovered as
            // deletions happen
            reuse_candidates: Vec::new(),
        }
    }

    /// The pages owned by this file, in allocation order (persisted by
    /// checkpoints and handed back to [`attach`](Self::attach)).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// The buffer pool this file lives on.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of pages owned by this file.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn new_page(&mut self) -> Result<PageId> {
        let id = self.pool.allocate()?;
        self.pool.with_page_mut(id, slotted::init)?;
        self.pages.push(id);
        Ok(id)
    }

    /// Insert one fragment, preferring reuse candidates and the tail page.
    fn insert_fragment(&mut self, frag: &[u8]) -> Result<Rid> {
        // Try reuse candidates first (pages that had deletions).
        while let Some(&pid) = self.reuse_candidates.last() {
            let slot = self
                .pool
                .with_page_mut(pid, |pg| slotted::insert(pg, frag))?;
            match slot {
                Some(slot) => return Ok(Rid { page: pid, slot }),
                None => {
                    self.reuse_candidates.pop();
                }
            }
        }
        if let Some(&pid) = self.pages.last() {
            if let Some(slot) = self
                .pool
                .with_page_mut(pid, |pg| slotted::insert(pg, frag))?
            {
                return Ok(Rid { page: pid, slot });
            }
        }
        let pid = self.new_page()?;
        let slot = self
            .pool
            .with_page_mut(pid, |pg| slotted::insert(pg, frag))?
            .ok_or_else(|| BdbmsError::storage("fragment larger than a fresh page"))?;
        Ok(Rid { page: pid, slot })
    }

    /// Insert a record of any length; returns its [`Rid`].
    pub fn insert(&mut self, rec: &[u8]) -> Result<Rid> {
        // Split into fragments; build the chain tail-first so each fragment
        // knows its successor's Rid.
        let chunks: Vec<&[u8]> = if rec.is_empty() {
            vec![rec]
        } else {
            rec.chunks(FRAG_PAYLOAD).collect()
        };
        let mut next: Option<Rid> = None;
        for (i, chunk) in chunks.iter().enumerate().rev() {
            let is_head = i == 0;
            let frag = encode_fragment(is_head, next, chunk);
            next = Some(self.insert_fragment(&frag)?);
        }
        Ok(next.expect("at least one fragment"))
    }

    /// Fetch the full record at `rid`.
    pub fn get(&self, rid: Rid) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur = Some(rid);
        let mut first = true;
        while let Some(r) = cur {
            let frag = self
                .pool
                .with_page(r.page, |pg| slotted::get(pg, r.slot).map(|d| d.to_vec()))?;
            let frag = frag.ok_or_else(|| BdbmsError::storage(format!("no record at {r}")))?;
            let (is_head, next, payload) = decode_fragment(&frag)?;
            if first && !is_head {
                return Err(BdbmsError::storage(format!(
                    "{r} is a continuation fragment, not a record head"
                )));
            }
            first = false;
            out.extend_from_slice(payload);
            cur = next;
        }
        Ok(out)
    }

    /// Run `f(index, record_bytes)` over every record in `rids`, in
    /// order, pinning each underlying page **once per run of same-page
    /// rids** instead of once per record — a vectorized scan's rows are
    /// overwhelmingly contiguous on a page, so this removes the
    /// per-record pool lock, frame lookup, and LRU touch, and
    /// single-fragment records (the common case for table rows) are
    /// handed to `f` in place without copying.  Multi-fragment records
    /// are assembled individually; call order stays strictly by index.
    /// Stops at the first error from `f` or the pool.
    pub fn with_records(
        &self,
        rids: &[Rid],
        mut f: impl FnMut(usize, &[u8]) -> Result<()>,
    ) -> Result<()> {
        let mut i = 0;
        while i < rids.len() {
            let page = rids[i].page;
            let mut j = i;
            while j < rids.len() && rids[j].page == page {
                j += 1;
            }
            // Decode the run [i, j) under one page pin; a multi-fragment
            // record breaks out so it can be assembled (rare), then the
            // run resumes after it.
            let mut k = i;
            while k < j {
                let stopped_at = self.pool.with_page(page, |pg| -> Result<usize> {
                    for (idx, &rid) in rids.iter().enumerate().take(j).skip(k) {
                        let frag = slotted::get(pg, rid.slot)
                            .ok_or_else(|| BdbmsError::storage(format!("no record at {rid}")))?;
                        let (is_head, next, payload) = decode_fragment(frag)?;
                        if !is_head {
                            return Err(BdbmsError::storage(format!(
                                "{rid} is a continuation fragment, not a record head"
                            )));
                        }
                        if next.is_some() {
                            return Ok(idx);
                        }
                        f(idx, payload)?;
                    }
                    Ok(j)
                })??;
                if stopped_at < j {
                    let buf = self.get(rids[stopped_at])?;
                    f(stopped_at, &buf)?;
                    k = stopped_at + 1;
                } else {
                    k = j;
                }
            }
            i = j;
        }
        Ok(())
    }

    /// Delete the record at `rid` (all fragments).  Returns `false` if no
    /// record lives there.
    pub fn delete(&mut self, rid: Rid) -> Result<bool> {
        let head = self.pool.with_page(rid.page, |pg| {
            slotted::get(pg, rid.slot).map(|d| d.to_vec())
        })?;
        let Some(head) = head else {
            return Ok(false);
        };
        let (is_head, _, _) = decode_fragment(&head)?;
        if !is_head {
            return Ok(false);
        }
        let mut cur = Some(rid);
        while let Some(r) = cur {
            let frag = self
                .pool
                .with_page(r.page, |pg| slotted::get(pg, r.slot).map(|d| d.to_vec()))?;
            let frag = frag.ok_or_else(|| BdbmsError::storage(format!("broken chain at {r}")))?;
            let (_, next, _) = decode_fragment(&frag)?;
            self.pool
                .with_page_mut(r.page, |pg| slotted::delete(pg, r.slot))?;
            if !self.reuse_candidates.contains(&r.page) {
                self.reuse_candidates.push(r.page);
            }
            cur = next;
        }
        Ok(true)
    }

    /// Replace the record at `rid`.  Returns the (possibly new) [`Rid`]:
    /// single-fragment records that still fit keep their rid; otherwise the
    /// record is relocated.
    pub fn update(&mut self, rid: Rid, rec: &[u8]) -> Result<Rid> {
        // Fast path: head with no chain, and the new payload fits in place.
        let head = self.pool.with_page(rid.page, |pg| {
            slotted::get(pg, rid.slot).map(|d| d.to_vec())
        })?;
        let head = head.ok_or_else(|| BdbmsError::storage(format!("no record at {rid}")))?;
        let (is_head, next, _) = decode_fragment(&head)?;
        if !is_head {
            return Err(BdbmsError::storage(format!("{rid} is not a record head")));
        }
        if next.is_none() && rec.len() <= FRAG_PAYLOAD {
            let frag = encode_fragment(true, None, rec);
            let ok = self
                .pool
                .with_page_mut(rid.page, |pg| slotted::update(pg, rid.slot, &frag))?;
            if ok {
                return Ok(rid);
            }
        }
        self.delete(rid)?;
        self.insert(rec)
    }

    /// All live record rids in page order.
    pub fn rids(&self) -> Result<Vec<Rid>> {
        let mut out = Vec::new();
        for &pid in &self.pages {
            self.pool.with_page(pid, |pg| {
                for (slot, rec) in slotted::live_records(pg) {
                    if rec.first().map(|f| f & FLAG_IS_HEAD != 0).unwrap_or(false) {
                        out.push(Rid { page: pid, slot });
                    }
                }
            })?;
        }
        Ok(out)
    }

    /// Materialized scan of `(rid, record)` pairs in page order.
    pub fn scan(&self) -> Result<Vec<(Rid, Vec<u8>)>> {
        let rids = self.rids()?;
        rids.into_iter()
            .map(|r| self.get(r).map(|d| (r, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemStore;

    fn file() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), 64));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_small() {
        let mut f = file();
        let r1 = f.insert(b"gene JW0055").unwrap();
        let r2 = f.insert(b"gene JW0080").unwrap();
        assert_eq!(f.get(r1).unwrap(), b"gene JW0055");
        assert_eq!(f.get(r2).unwrap(), b"gene JW0080");
    }

    #[test]
    fn insert_get_overflow_record() {
        let mut f = file();
        // 40 KiB record spans multiple pages.
        let big: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let rid = f.insert(&big).unwrap();
        assert_eq!(f.get(rid).unwrap(), big);
        assert!(f.num_pages() >= 5);
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut f = file();
        let rid = f.insert(b"").unwrap();
        assert_eq!(f.get(rid).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn delete_then_get_fails() {
        let mut f = file();
        let rid = f.insert(b"x").unwrap();
        assert!(f.delete(rid).unwrap());
        assert!(f.get(rid).is_err());
        assert!(!f.delete(rid).unwrap());
    }

    #[test]
    fn delete_overflow_reclaims_all_fragments() {
        let mut f = file();
        let big = vec![5u8; 30_000];
        let rid = f.insert(&big).unwrap();
        let pages_before = f.num_pages();
        assert!(f.delete(rid).unwrap());
        // space is reused: inserting the same record again allocates no new pages
        let _ = f.insert(&big).unwrap();
        assert_eq!(f.num_pages(), pages_before);
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let mut f = file();
        let rid = f.insert(b"before").unwrap();
        let rid2 = f.update(rid, b"after").unwrap();
        assert_eq!(rid, rid2);
        assert_eq!(f.get(rid).unwrap(), b"after");
    }

    #[test]
    fn update_grow_to_overflow_relocates() {
        let mut f = file();
        let rid = f.insert(b"small").unwrap();
        let big = vec![9u8; 20_000];
        let rid2 = f.update(rid, &big).unwrap();
        assert_eq!(f.get(rid2).unwrap(), big);
    }

    #[test]
    fn scan_returns_only_heads_in_order() {
        let mut f = file();
        let mut want = Vec::new();
        for i in 0..50 {
            let rec = format!("record-{i:03}").into_bytes();
            f.insert(&rec).unwrap();
            want.push(rec);
        }
        // interleave an overflow record; scan must yield it once
        let big = vec![1u8; 20_000];
        f.insert(&big).unwrap();
        want.push(big);
        let got: Vec<Vec<u8>> = f.scan().unwrap().into_iter().map(|(_, d)| d).collect();
        assert_eq!(got.len(), want.len());
        for w in &want {
            assert!(got.contains(w));
        }
    }

    #[test]
    fn continuation_fragment_is_not_a_head() {
        let mut f = file();
        let big = vec![2u8; 20_000];
        let head = f.insert(&big).unwrap();
        // find some continuation rid by scanning raw slots
        let rids = f.rids().unwrap();
        assert_eq!(rids, vec![head], "scan sees exactly one head");
    }

    #[test]
    fn many_small_records_fill_pages_densely() {
        let mut f = file();
        for i in 0..2000u32 {
            f.insert(&i.to_le_bytes()).unwrap();
        }
        // 2000 × (11+4+slot 4) ≈ 38 KB → should stay under 10 pages
        assert!(f.num_pages() <= 10, "pages = {}", f.num_pages());
        assert_eq!(f.scan().unwrap().len(), 2000);
    }
}
