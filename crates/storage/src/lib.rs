//! # bdbms-storage
//!
//! The page-based storage substrate under the bdbms engine.
//!
//! The paper prototypes bdbms inside PostgreSQL; this crate is the
//! from-scratch replacement substrate: a pager with pluggable backing
//! stores ([`pager::MemStore`], [`pager::FileStore`]), a buffer pool with
//! LRU eviction and page-level I/O accounting ([`buffer::BufferPool`]),
//! slotted pages for variable-length records ([`slotted`]), and heap files
//! ([`heap::HeapFile`]) that the engine's tables sit on.
//!
//! I/O accounting matters here: the paper's evaluation claims are phrased
//! in I/Os, so the buffer pool counts every page fetched from and flushed
//! to the backing store, and benchmarks read those counters.
//!
//! Durability lives in [`wal`]: a segmented, CRC-framed write-ahead log
//! with `Full`/`NoSync` fsync policies, plus the [`wal::FlushGate`] hook
//! through which the buffer pool enforces WAL-before-data (no dirty page
//! reaches the store ahead of its log record).  See `docs/STORAGE.md`.

pub mod buffer;
pub mod fault;
pub mod heap;
pub mod pager;
pub mod slotted;
pub mod wal;

pub use buffer::BufferPool;
pub use fault::{FaultInjector, FaultKind, FaultStore, IoDecision};
pub use heap::{HeapFile, Rid};
pub use pager::{
    page_checksum, stamp_page_checksum, verify_page_checksum, FileStore, MemStore, PageId,
    PageStore, PAGE_BODY, PAGE_SIZE, PAGE_TRAILER,
};
pub use wal::{
    crc32, scan_segment_bytes, verify_wal_dir, CommitTicket, Durability, FlushGate, GroupCommitter,
    SharedWal, Wal, WalCheck, WalPos,
};
