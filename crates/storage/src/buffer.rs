//! Buffer pool with LRU eviction and I/O accounting.
//!
//! Every page access in bdbms goes through a [`BufferPool`]: a miss costs
//! one read from the backing [`PageStore`], evicting a dirty page costs one
//! write.  Those counters are the ground truth for the paper's I/O-based
//! claims.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) so callers never
//! hold frame guards across other pool calls — a simple way to make the
//! pool safe under any call pattern.

use std::collections::HashMap;

use parking_lot::Mutex;

use bdbms_common::stats::IoSnapshot;
use bdbms_common::{BdbmsError, Result};

use crate::pager::{PageId, PageStore, PAGE_SIZE};

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// Towards the MRU end of the intrusive LRU list.
    prev: Option<PageId>,
    /// Towards the LRU end of the intrusive LRU list.
    next: Option<PageId>,
}

/// Frames double as nodes of an intrusive doubly-linked LRU list
/// (`head` = most recently used, `tail` = eviction victim), so touching a
/// page and picking a victim are both O(1) — the previous implementation
/// scanned every frame per eviction, which made cold scans through a
/// small pool quadratic.
struct Inner {
    store: Box<dyn PageStore>,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    head: Option<PageId>,
    tail: Option<PageId>,
    reads: u64,
    writes: u64,
}

impl Inner {
    /// Unlink `id` from the LRU list (it must be linked).
    fn detach(&mut self, id: PageId) {
        let (prev, next) = {
            let f = self.frames.get(&id).expect("detach of non-resident frame");
            (f.prev, f.next)
        };
        match prev {
            Some(p) => self.frames.get_mut(&p).expect("linked prev").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.frames.get_mut(&n).expect("linked next").prev = prev,
            None => self.tail = prev,
        }
    }

    /// Link `id` at the MRU end (its links must be dangling).
    fn attach_front(&mut self, id: PageId) {
        let old_head = self.head;
        {
            let f = self
                .frames
                .get_mut(&id)
                .expect("attach of non-resident frame");
            f.prev = None;
            f.next = old_head;
        }
        match old_head {
            Some(h) => self.frames.get_mut(&h).expect("old head").prev = Some(id),
            None => self.tail = Some(id),
        }
        self.head = Some(id);
    }

    fn touch(&mut self, id: PageId) {
        if self.head == Some(id) {
            return;
        }
        if self.frames.contains_key(&id) {
            self.detach(id);
            self.attach_front(id);
        }
    }

    /// Ensure `id` is resident, evicting the LRU frame if at capacity.
    fn fault_in(&mut self, id: PageId) -> Result<()> {
        if self.frames.contains_key(&id) {
            return Ok(());
        }
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.store.read_page(id, &mut data[..])?;
        self.reads += 1;
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                prev: None,
                next: None,
            },
        );
        self.attach_front(id);
        Ok(())
    }

    fn evict_one(&mut self) -> Result<()> {
        let victim = self
            .tail
            .ok_or_else(|| BdbmsError::storage("evict from empty pool"))?;
        self.detach(victim);
        let frame = self.frames.remove(&victim).unwrap();
        if frame.dirty {
            self.store.write_page(victim, &frame.data[..])?;
            self.writes += 1;
        }
        Ok(())
    }
}

/// A shared buffer pool over a [`PageStore`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages in memory.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(Inner {
                store,
                frames: HashMap::new(),
                capacity,
                head: None,
                tail: None,
                reads: 0,
                writes: 0,
            }),
        }
    }

    /// Allocate a fresh page (resident and clean).
    pub fn allocate(&self) -> Result<PageId> {
        let mut g = self.inner.lock();
        let id = g.store.allocate()?;
        if g.frames.len() >= g.capacity {
            g.evict_one()?;
        }
        g.frames.insert(
            id,
            Frame {
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                prev: None,
                next: None,
            },
        );
        g.attach_front(id);
        Ok(id)
    }

    /// Run `f` with read access to page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        g.fault_in(id)?;
        g.touch(id);
        let frame = g.frames.get(&id).unwrap();
        Ok(f(&frame.data[..]))
    }

    /// Run `f` with write access to page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        g.fault_in(id)?;
        g.touch(id);
        let frame = g.frames.get_mut(&id).unwrap();
        frame.dirty = true;
        Ok(f(&mut frame.data[..]))
    }

    /// Write every dirty page back to the store.
    pub fn flush_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let dirty: Vec<PageId> = g
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        for id in dirty {
            let frame = g.frames.get(&id).unwrap();
            // copy out to appease the borrow checker: store and frames are
            // both fields of the same Inner.
            let data = frame.data.clone();
            g.store.write_page(id, &data[..])?;
            g.writes += 1;
            g.frames.get_mut(&id).unwrap().dirty = false;
        }
        Ok(())
    }

    /// Total pages ever allocated in the backing store.
    pub fn num_pages(&self) -> u64 {
        self.inner.lock().store.num_pages()
    }

    /// Snapshot of physical I/O performed so far (reads = misses,
    /// writes = dirty evictions + flushes).
    pub fn io_stats(&self) -> IoSnapshot {
        let g = self.inner.lock();
        IoSnapshot {
            reads: g.reads,
            writes: g.writes,
        }
    }

    /// Reset I/O counters (between benchmark phases).
    pub fn reset_io_stats(&self) {
        let mut g = self.inner.lock();
        g.reads = 0;
        g.writes = 0;
    }

    /// Drop every clean frame and flush+drop every dirty frame, so the next
    /// access of each page is a miss.  Benchmarks use this to measure cold
    /// reads.
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        let mut g = self.inner.lock();
        g.frames.clear();
        g.head = None;
        g.tail = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), cap)
    }

    #[test]
    fn read_your_writes() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pg| pg[17] = 42).unwrap();
        let v = p.with_page(id, |pg| pg[17]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 1).unwrap();
        p.with_page_mut(b, |pg| pg[0] = 2).unwrap();
        // Fill the pool with new pages, forcing a and b out.
        let c = p.allocate().unwrap();
        let d = p.allocate().unwrap();
        p.with_page_mut(c, |pg| pg[0] = 3).unwrap();
        p.with_page_mut(d, |pg| pg[0] = 4).unwrap();
        // a and b must round-trip through the store.
        assert_eq!(p.with_page(a, |pg| pg[0]).unwrap(), 1);
        assert_eq!(p.with_page(b, |pg| pg[0]).unwrap(), 2);
    }

    #[test]
    fn io_counting_hits_and_misses() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 9).unwrap();
        p.flush_all().unwrap();
        p.reset_io_stats();

        // Hit: page resident, no I/O.
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.io_stats().total(), 0);

        // Cold read after cache clear: one read.
        p.clear_cache().unwrap();
        p.reset_io_stats();
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.io_stats().reads, 1);
        assert_eq!(p.io_stats().writes, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.flush_all().unwrap();
        // Touch a so b is the LRU victim when c arrives.
        p.with_page(a, |_| ()).unwrap();
        let c = p.allocate().unwrap();
        p.with_page(c, |_| ()).unwrap();
        p.reset_io_stats();
        p.with_page(a, |_| ()).unwrap(); // still resident → hit
        assert_eq!(p.io_stats().reads, 0);
        p.with_page(b, |_| ()).unwrap(); // evicted → miss
        assert_eq!(p.io_stats().reads, 1);
    }

    #[test]
    fn lru_order_tracks_arbitrary_access_patterns() {
        // The resident set must always be the `cap` most recently used
        // pages, whatever the access interleaving — this pins down the
        // linked-list bookkeeping (detach/attach) under churn.
        let cap = 4;
        let p = pool(cap);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.flush_all().unwrap();
        let pattern = [0usize, 3, 5, 1, 7, 2, 0, 6, 4, 3, 3, 0, 5, 7, 1, 2, 6, 0];
        let mut recency: Vec<usize> = Vec::new();
        for &i in &pattern {
            p.with_page(ids[i], |_| ()).unwrap();
            recency.retain(|&r| r != i);
            recency.push(i);
        }
        let resident: Vec<usize> = recency[recency.len() - cap..].to_vec();
        p.reset_io_stats();
        for &i in &resident {
            p.with_page(ids[i], |_| ()).unwrap();
        }
        assert_eq!(
            p.io_stats().reads,
            0,
            "the {cap} most recently used pages must be resident"
        );
    }

    #[test]
    fn clear_cache_makes_reads_cold() {
        let p = pool(8);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg[0] = i as u8).unwrap();
        }
        p.clear_cache().unwrap();
        p.reset_io_stats();
        for id in &ids {
            p.with_page(*id, |_| ()).unwrap();
        }
        assert_eq!(p.io_stats().reads, 4);
    }
}
