//! Buffer pool with LRU eviction and I/O accounting.
//!
//! Every page access in bdbms goes through a [`BufferPool`]: a miss costs
//! one read from the backing [`PageStore`], evicting a dirty page costs one
//! write.  Those counters are the ground truth for the paper's I/O-based
//! claims.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) so callers never
//! hold frame guards across other pool calls — a simple way to make the
//! pool safe under any call pattern.

use std::collections::HashMap;

use parking_lot::Mutex;

use bdbms_common::stats::IoSnapshot;
use bdbms_common::{BdbmsError, Result};

use crate::pager::{PageId, PageStore, PAGE_SIZE};

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// LRU tick of last access.
    last_used: u64,
}

struct Inner {
    store: Box<dyn PageStore>,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    reads: u64,
    writes: u64,
}

impl Inner {
    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.get_mut(&id) {
            f.last_used = tick;
        }
    }

    /// Ensure `id` is resident, evicting the LRU frame if at capacity.
    fn fault_in(&mut self, id: PageId) -> Result<()> {
        if self.frames.contains_key(&id) {
            return Ok(());
        }
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.store.read_page(id, &mut data[..])?;
        self.reads += 1;
        self.tick += 1;
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                last_used: self.tick,
            },
        );
        Ok(())
    }

    fn evict_one(&mut self) -> Result<()> {
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(id, _)| *id)
            .ok_or_else(|| BdbmsError::Storage("evict from empty pool".into()))?;
        let frame = self.frames.remove(&victim).unwrap();
        if frame.dirty {
            self.store.write_page(victim, &frame.data[..])?;
            self.writes += 1;
        }
        Ok(())
    }
}

/// A shared buffer pool over a [`PageStore`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages in memory.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(Inner {
                store,
                frames: HashMap::new(),
                capacity,
                tick: 0,
                reads: 0,
                writes: 0,
            }),
        }
    }

    /// Allocate a fresh page (resident and clean).
    pub fn allocate(&self) -> Result<PageId> {
        let mut g = self.inner.lock();
        let id = g.store.allocate()?;
        if g.frames.len() >= g.capacity {
            g.evict_one()?;
        }
        g.tick += 1;
        let tick = g.tick;
        g.frames.insert(
            id,
            Frame {
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                last_used: tick,
            },
        );
        Ok(id)
    }

    /// Run `f` with read access to page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        g.fault_in(id)?;
        g.touch(id);
        let frame = g.frames.get(&id).unwrap();
        Ok(f(&frame.data[..]))
    }

    /// Run `f` with write access to page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        g.fault_in(id)?;
        g.touch(id);
        let frame = g.frames.get_mut(&id).unwrap();
        frame.dirty = true;
        Ok(f(&mut frame.data[..]))
    }

    /// Write every dirty page back to the store.
    pub fn flush_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let dirty: Vec<PageId> = g
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        for id in dirty {
            let frame = g.frames.get(&id).unwrap();
            // copy out to appease the borrow checker: store and frames are
            // both fields of the same Inner.
            let data = frame.data.clone();
            g.store.write_page(id, &data[..])?;
            g.writes += 1;
            g.frames.get_mut(&id).unwrap().dirty = false;
        }
        Ok(())
    }

    /// Total pages ever allocated in the backing store.
    pub fn num_pages(&self) -> u64 {
        self.inner.lock().store.num_pages()
    }

    /// Snapshot of physical I/O performed so far (reads = misses,
    /// writes = dirty evictions + flushes).
    pub fn io_stats(&self) -> IoSnapshot {
        let g = self.inner.lock();
        IoSnapshot {
            reads: g.reads,
            writes: g.writes,
        }
    }

    /// Reset I/O counters (between benchmark phases).
    pub fn reset_io_stats(&self) {
        let mut g = self.inner.lock();
        g.reads = 0;
        g.writes = 0;
    }

    /// Drop every clean frame and flush+drop every dirty frame, so the next
    /// access of each page is a miss.  Benchmarks use this to measure cold
    /// reads.
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        let mut g = self.inner.lock();
        g.frames.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), cap)
    }

    #[test]
    fn read_your_writes() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pg| pg[17] = 42).unwrap();
        let v = p.with_page(id, |pg| pg[17]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 1).unwrap();
        p.with_page_mut(b, |pg| pg[0] = 2).unwrap();
        // Fill the pool with new pages, forcing a and b out.
        let c = p.allocate().unwrap();
        let d = p.allocate().unwrap();
        p.with_page_mut(c, |pg| pg[0] = 3).unwrap();
        p.with_page_mut(d, |pg| pg[0] = 4).unwrap();
        // a and b must round-trip through the store.
        assert_eq!(p.with_page(a, |pg| pg[0]).unwrap(), 1);
        assert_eq!(p.with_page(b, |pg| pg[0]).unwrap(), 2);
    }

    #[test]
    fn io_counting_hits_and_misses() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 9).unwrap();
        p.flush_all().unwrap();
        p.reset_io_stats();

        // Hit: page resident, no I/O.
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.io_stats().total(), 0);

        // Cold read after cache clear: one read.
        p.clear_cache().unwrap();
        p.reset_io_stats();
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.io_stats().reads, 1);
        assert_eq!(p.io_stats().writes, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.flush_all().unwrap();
        // Touch a so b is the LRU victim when c arrives.
        p.with_page(a, |_| ()).unwrap();
        let c = p.allocate().unwrap();
        p.with_page(c, |_| ()).unwrap();
        p.reset_io_stats();
        p.with_page(a, |_| ()).unwrap(); // still resident → hit
        assert_eq!(p.io_stats().reads, 0);
        p.with_page(b, |_| ()).unwrap(); // evicted → miss
        assert_eq!(p.io_stats().reads, 1);
    }

    #[test]
    fn clear_cache_makes_reads_cold() {
        let p = pool(8);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg[0] = i as u8).unwrap();
        }
        p.clear_cache().unwrap();
        p.reset_io_stats();
        for id in &ids {
            p.with_page(*id, |_| ()).unwrap();
        }
        assert_eq!(p.io_stats().reads, 4);
    }
}
