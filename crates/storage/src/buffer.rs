//! Buffer pool with LRU eviction and I/O accounting.
//!
//! Every page access in bdbms goes through a [`BufferPool`]: a miss costs
//! one read from the backing [`PageStore`], evicting a dirty page costs one
//! write.  Those counters are the ground truth for the paper's I/O-based
//! claims.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) so callers never
//! hold frame guards across other pool calls — a simple way to make the
//! pool safe under any call pattern.
//!
//! ## WAL ordering (page LSNs)
//!
//! A pool backing a durable database is wired to a write-ahead log:
//!
//! * [`set_lsn_source`](BufferPool::set_lsn_source) — every mutation
//!   stamps the frame with the WAL's reserved LSN, an upper bound on the
//!   log record that will describe the change;
//! * [`set_flush_gate`](BufferPool::set_flush_gate) — before *any* dirty
//!   page reaches the backing store (eviction, `flush_all`,
//!   `clear_cache`), the pool calls the gate with the page's LSN so the
//!   WAL is flushed at least that far first.  A dirty page can never
//!   overtake its log record;
//! * [`set_pin_dirty`](BufferPool::set_pin_dirty) — no-steal mode:
//!   eviction only considers *clean* victims and the pool grows past its
//!   capacity rather than write a dirty page mid-transaction.  The
//!   engine's checkpoint is then the only dirty-page writer, which keeps
//!   the on-disk image exactly the last checkpoint until the next one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bdbms_common::metrics::Counter;
use bdbms_common::stats::IoSnapshot;
use bdbms_common::{BdbmsError, Result};

use crate::pager::{stamp_page_checksum, verify_page_checksum, PageId, PageStore, PAGE_SIZE};
use crate::wal::FlushGate;

struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// LSN stamped at the last mutation (0 = never mutated under a log).
    lsn: u64,
    /// Towards the MRU end of the intrusive LRU list.
    prev: Option<PageId>,
    /// Towards the LRU end of the intrusive LRU list.
    next: Option<PageId>,
}

/// Frames double as nodes of an intrusive doubly-linked LRU list
/// (`head` = most recently used, `tail` = eviction victim), so touching a
/// page and picking a victim are both O(1) — the previous implementation
/// scanned every frame per eviction, which made cold scans through a
/// small pool quadratic.
struct Inner {
    store: Box<dyn PageStore>,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    head: Option<PageId>,
    tail: Option<PageId>,
    reads: u64,
    writes: u64,
    /// WAL-before-data hook: called with a frame's LSN before its bytes
    /// may reach the store.
    gate: Option<Arc<dyn FlushGate>>,
    /// Source of LSN stamps for mutated frames (the WAL's reserved LSN).
    lsn_source: Option<Arc<AtomicU64>>,
    /// No-steal mode: never write a dirty page on eviction.
    pin_dirty: bool,
    /// Live-observability counters (hit/miss/eviction/writeback).  The
    /// pool always owns them; a database registers them under
    /// `buffer.*` names.  `metrics_on` gates the recording so the e13
    /// overhead workload can measure the instrumented-vs-bare delta.
    metrics: BufferPoolMetrics,
    metrics_on: bool,
}

/// The pool's always-allocated observability instruments.  Handles are
/// `Arc`-shared so a [`bdbms_common::metrics::MetricsRegistry`] can
/// export them without the pool depending on any registry.
#[derive(Debug, Clone, Default)]
pub struct BufferPoolMetrics {
    /// Page accesses served from a resident frame.
    pub hits: Arc<Counter>,
    /// Page accesses that faulted the page in from the store.
    pub misses: Arc<Counter>,
    /// Frames evicted to make room.
    pub evictions: Arc<Counter>,
    /// Dirty pages written back to the store (evictions + flushes).
    pub dirty_writebacks: Arc<Counter>,
}

impl Inner {
    /// Unlink `id` from the LRU list (it must be linked).
    fn detach(&mut self, id: PageId) {
        let (prev, next) = {
            let f = self.frames.get(&id).expect("detach of non-resident frame");
            (f.prev, f.next)
        };
        match prev {
            Some(p) => self.frames.get_mut(&p).expect("linked prev").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.frames.get_mut(&n).expect("linked next").prev = prev,
            None => self.tail = prev,
        }
    }

    /// Link `id` at the MRU end (its links must be dangling).
    fn attach_front(&mut self, id: PageId) {
        let old_head = self.head;
        {
            let f = self
                .frames
                .get_mut(&id)
                .expect("attach of non-resident frame");
            f.prev = None;
            f.next = old_head;
        }
        match old_head {
            Some(h) => self.frames.get_mut(&h).expect("old head").prev = Some(id),
            None => self.tail = Some(id),
        }
        self.head = Some(id);
    }

    fn touch(&mut self, id: PageId) {
        if self.head == Some(id) {
            return;
        }
        if self.frames.contains_key(&id) {
            self.detach(id);
            self.attach_front(id);
        }
    }

    /// Ensure `id` is resident, evicting the LRU frame if at capacity.
    /// Returns `true` when the page had to be faulted in (a miss).
    fn fault_in(&mut self, id: PageId) -> Result<bool> {
        if self.frames.contains_key(&id) {
            return Ok(false);
        }
        if self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.store.read_page(id, &mut data[..])?;
        self.reads += 1;
        if !verify_page_checksum(&data[..]) {
            return Err(BdbmsError::corrupt(format!(
                "page checksum mismatch reading {id} from the backing store"
            )));
        }
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                lsn: 0,
                prev: None,
                next: None,
            },
        );
        self.attach_front(id);
        Ok(true)
    }

    /// Record a hit or a miss on the access counters.
    #[inline]
    fn note_access(&self, missed: bool) {
        if self.metrics_on {
            if missed {
                self.metrics.misses.inc();
            } else {
                self.metrics.hits.inc();
            }
        }
    }

    /// Write one frame's bytes back to the store, honouring
    /// WAL-before-data: the gate flushes the log up to the frame's LSN
    /// *before* the page write.
    fn write_back(&mut self, id: PageId, lsn: u64) -> Result<()> {
        if lsn > 0 {
            if let Some(gate) = self.gate.clone() {
                gate.flush_to(lsn)?;
            }
        }
        // copy out to appease the borrow checker: store and frames are
        // both fields of the same Inner.
        let mut data = self.frames.get(&id).expect("resident frame").data.clone();
        stamp_page_checksum(&mut data[..]);
        self.store.write_page(id, &data[..])?;
        self.writes += 1;
        if self.metrics_on {
            self.metrics.dirty_writebacks.inc();
        }
        Ok(())
    }

    /// Evict one frame.  In `pin_dirty` mode only clean frames are
    /// candidates; with every frame dirty the pool grows past its
    /// capacity instead of violating no-steal.
    fn evict_one(&mut self) -> Result<()> {
        let mut victim = self
            .tail
            .ok_or_else(|| BdbmsError::storage("evict from empty pool"))?;
        if self.pin_dirty {
            // walk from the LRU end towards MRU looking for a clean frame
            let mut cur = Some(victim);
            loop {
                match cur {
                    Some(id) if self.frames[&id].dirty => {
                        cur = self.frames[&id].prev;
                    }
                    Some(id) => {
                        victim = id;
                        break;
                    }
                    // every frame is dirty: grow rather than steal
                    None => return Ok(()),
                }
            }
        }
        self.detach(victim);
        let frame = self.frames.get(&victim).unwrap();
        if frame.dirty {
            let lsn = frame.lsn;
            self.write_back(victim, lsn)?;
        }
        self.frames.remove(&victim);
        if self.metrics_on {
            self.metrics.evictions.inc();
        }
        Ok(())
    }

    /// The LSN stamp a mutation happening now should carry.
    fn current_lsn(&self) -> u64 {
        self.lsn_source
            .as_ref()
            .map(|s| s.load(Ordering::Acquire))
            .unwrap_or(0)
    }
}

/// A shared buffer pool over a [`PageStore`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Create a pool holding at most `capacity` pages in memory.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(Inner {
                store,
                frames: HashMap::new(),
                capacity,
                head: None,
                tail: None,
                reads: 0,
                writes: 0,
                gate: None,
                lsn_source: None,
                pin_dirty: false,
                metrics: BufferPoolMetrics::default(),
                metrics_on: true,
            }),
        }
    }

    /// Handles to the pool's observability counters (for registry
    /// export).
    pub fn metrics(&self) -> BufferPoolMetrics {
        self.inner.lock().metrics.clone()
    }

    /// Toggle metric recording.  Only the e13 instrumentation-overhead
    /// workload turns this off; production pools leave it on.
    pub fn set_metrics_enabled(&self, on: bool) {
        self.inner.lock().metrics_on = on;
    }

    /// Install the WAL-before-data hook: every dirty-page write is
    /// preceded by `gate.flush_to(page lsn)`.
    pub fn set_flush_gate(&self, gate: Arc<dyn FlushGate>) {
        self.inner.lock().gate = Some(gate);
    }

    /// Install the LSN stamp source (the WAL's reserved-LSN counter).
    pub fn set_lsn_source(&self, source: Arc<AtomicU64>) {
        self.inner.lock().lsn_source = Some(source);
    }

    /// Switch no-steal mode on/off: when on, eviction never writes a
    /// dirty page (clean victims only; the pool grows when all frames
    /// are dirty).
    pub fn set_pin_dirty(&self, pin: bool) {
        self.inner.lock().pin_dirty = pin;
    }

    /// The LSN stamped on a resident page (0 if clean-loaded or not
    /// resident) — observability for the WAL-ordering tests.
    pub fn page_lsn(&self, id: PageId) -> u64 {
        self.inner
            .lock()
            .frames
            .get(&id)
            .map(|f| f.lsn)
            .unwrap_or(0)
    }

    /// Allocate a fresh page (resident and clean).
    pub fn allocate(&self) -> Result<PageId> {
        let mut g = self.inner.lock();
        let id = g.store.allocate()?;
        if g.frames.len() >= g.capacity {
            g.evict_one()?;
        }
        let lsn = g.current_lsn();
        g.frames.insert(
            id,
            Frame {
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                lsn,
                prev: None,
                next: None,
            },
        );
        g.attach_front(id);
        Ok(id)
    }

    /// Run `f` with read access to page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        let missed = g.fault_in(id)?;
        g.note_access(missed);
        g.touch(id);
        let frame = g.frames.get(&id).unwrap();
        Ok(f(&frame.data[..]))
    }

    /// Run `f` with write access to page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut g = self.inner.lock();
        let missed = g.fault_in(id)?;
        g.note_access(missed);
        g.touch(id);
        let lsn = g.current_lsn();
        let frame = g.frames.get_mut(&id).unwrap();
        frame.dirty = true;
        frame.lsn = frame.lsn.max(lsn);
        Ok(f(&mut frame.data[..]))
    }

    /// Write every dirty page back to the store, flushing the WAL past
    /// each page's LSN first (WAL-before-data holds here exactly as it
    /// does for eviction).
    pub fn flush_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let mut dirty: Vec<(PageId, u64)> = g
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, f)| (*id, f.lsn))
            .collect();
        dirty.sort_unstable_by_key(|&(id, _)| id);
        for (id, lsn) in dirty {
            g.write_back(id, lsn)?;
            g.frames.get_mut(&id).unwrap().dirty = false;
        }
        Ok(())
    }

    /// Fsync the backing store (durable checkpoint barrier).
    pub fn sync_store(&self) -> Result<()> {
        self.inner.lock().store.sync()
    }

    /// Total pages ever allocated in the backing store.
    pub fn num_pages(&self) -> u64 {
        self.inner.lock().store.num_pages()
    }

    /// Snapshot of physical I/O performed so far (reads = misses,
    /// writes = dirty evictions + flushes).
    pub fn io_stats(&self) -> IoSnapshot {
        let g = self.inner.lock();
        IoSnapshot {
            reads: g.reads,
            writes: g.writes,
        }
    }

    /// Reset I/O counters (between benchmark phases).
    pub fn reset_io_stats(&self) {
        let mut g = self.inner.lock();
        g.reads = 0;
        g.writes = 0;
    }

    /// Drop every clean frame and flush+drop every dirty frame, so the next
    /// access of each page is a miss.  Benchmarks use this to measure cold
    /// reads.
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        let mut g = self.inner.lock();
        g.frames.clear();
        g.head = None;
        g.tail = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemStore;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), cap)
    }

    #[test]
    fn read_your_writes() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pg| pg[17] = 42).unwrap();
        let v = p.with_page(id, |pg| pg[17]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_persists_dirty_pages() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 1).unwrap();
        p.with_page_mut(b, |pg| pg[0] = 2).unwrap();
        // Fill the pool with new pages, forcing a and b out.
        let c = p.allocate().unwrap();
        let d = p.allocate().unwrap();
        p.with_page_mut(c, |pg| pg[0] = 3).unwrap();
        p.with_page_mut(d, |pg| pg[0] = 4).unwrap();
        // a and b must round-trip through the store.
        assert_eq!(p.with_page(a, |pg| pg[0]).unwrap(), 1);
        assert_eq!(p.with_page(b, |pg| pg[0]).unwrap(), 2);
    }

    #[test]
    fn io_counting_hits_and_misses() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 9).unwrap();
        p.flush_all().unwrap();
        p.reset_io_stats();

        // Hit: page resident, no I/O.
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.io_stats().total(), 0);

        // Cold read after cache clear: one read.
        p.clear_cache().unwrap();
        p.reset_io_stats();
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(p.io_stats().reads, 1);
        assert_eq!(p.io_stats().writes, 0);
    }

    #[test]
    fn metrics_count_hits_misses_evictions_writebacks() {
        let p = pool(2);
        let m = p.metrics();
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 1).unwrap();
        p.with_page_mut(b, |pg| pg[0] = 2).unwrap();
        assert_eq!(m.hits.get(), 2, "both pages resident after allocate");
        assert_eq!(m.misses.get(), 0);
        // Two more dirty pages force both originals out (dirty writeback).
        let c = p.allocate().unwrap();
        let d = p.allocate().unwrap();
        p.with_page_mut(c, |pg| pg[0] = 3).unwrap();
        p.with_page_mut(d, |pg| pg[0] = 4).unwrap();
        assert_eq!(m.evictions.get(), 2);
        assert_eq!(m.dirty_writebacks.get(), 2);
        // Re-reading an evicted page is a miss.
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(m.misses.get(), 1);
        // The toggle stops recording without disturbing existing values.
        let hits_before = m.hits.get();
        p.set_metrics_enabled(false);
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(m.hits.get(), hits_before);
        p.set_metrics_enabled(true);
        p.with_page(a, |_| ()).unwrap();
        assert_eq!(m.hits.get(), hits_before + 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.flush_all().unwrap();
        // Touch a so b is the LRU victim when c arrives.
        p.with_page(a, |_| ()).unwrap();
        let c = p.allocate().unwrap();
        p.with_page(c, |_| ()).unwrap();
        p.reset_io_stats();
        p.with_page(a, |_| ()).unwrap(); // still resident → hit
        assert_eq!(p.io_stats().reads, 0);
        p.with_page(b, |_| ()).unwrap(); // evicted → miss
        assert_eq!(p.io_stats().reads, 1);
    }

    #[test]
    fn lru_order_tracks_arbitrary_access_patterns() {
        // The resident set must always be the `cap` most recently used
        // pages, whatever the access interleaving — this pins down the
        // linked-list bookkeeping (detach/attach) under churn.
        let cap = 4;
        let p = pool(cap);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        p.flush_all().unwrap();
        let pattern = [0usize, 3, 5, 1, 7, 2, 0, 6, 4, 3, 3, 0, 5, 7, 1, 2, 6, 0];
        let mut recency: Vec<usize> = Vec::new();
        for &i in &pattern {
            p.with_page(ids[i], |_| ()).unwrap();
            recency.retain(|&r| r != i);
            recency.push(i);
        }
        let resident: Vec<usize> = recency[recency.len() - cap..].to_vec();
        p.reset_io_stats();
        for &i in &resident {
            p.with_page(ids[i], |_| ()).unwrap();
        }
        assert_eq!(
            p.io_stats().reads,
            0,
            "the {cap} most recently used pages must be resident"
        );
    }

    /// Shared event trace: the order of WAL flushes and page writes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Event {
        WalFlushedTo(u64),
        PageWritten(PageId),
    }

    /// A gate that records when it runs and what the WAL has flushed.
    struct RecordingGate {
        events: Arc<Mutex<Vec<Event>>>,
        flushed: AtomicU64,
    }

    impl FlushGate for RecordingGate {
        fn flush_to(&self, lsn: u64) -> Result<()> {
            let prev = self.flushed.load(Ordering::SeqCst);
            if prev < lsn {
                self.flushed.store(lsn, Ordering::SeqCst);
                self.events.lock().push(Event::WalFlushedTo(lsn));
            }
            Ok(())
        }
    }

    /// A store that records every page write into the shared trace.
    struct RecordingStore {
        inner: MemStore,
        events: Arc<Mutex<Vec<Event>>>,
    }

    impl PageStore for RecordingStore {
        fn allocate(&mut self) -> Result<PageId> {
            self.inner.allocate()
        }
        fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
            self.inner.read_page(id, buf)
        }
        fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
            self.events.lock().push(Event::PageWritten(id));
            self.inner.write_page(id, buf)
        }
        fn num_pages(&self) -> u64 {
            self.inner.num_pages()
        }
    }

    /// A pool wired to a recording gate + store, with `lsn` as the
    /// mutation stamp source.
    fn gated_pool(cap: usize) -> (BufferPool, Arc<Mutex<Vec<Event>>>, Arc<AtomicU64>) {
        let events = Arc::new(Mutex::new(Vec::new()));
        let p = BufferPool::new(
            Box::new(RecordingStore {
                inner: MemStore::new(),
                events: events.clone(),
            }),
            cap,
        );
        let lsn = Arc::new(AtomicU64::new(0));
        p.set_lsn_source(lsn.clone());
        p.set_flush_gate(Arc::new(RecordingGate {
            events: events.clone(),
            flushed: AtomicU64::new(0),
        }));
        (p, events, lsn)
    }

    /// For every page write in the trace, a WAL flush covering that
    /// page's stamp must have happened earlier.
    fn assert_wal_before_data(events: &[Event], stamps: &HashMap<PageId, u64>) {
        let mut flushed = 0u64;
        for e in events {
            match e {
                Event::WalFlushedTo(lsn) => flushed = flushed.max(*lsn),
                Event::PageWritten(id) => {
                    let stamp = stamps.get(id).copied().unwrap_or(0);
                    assert!(
                        flushed >= stamp,
                        "page {id} (lsn {stamp}) reached the store with only \
                         {flushed} flushed: WAL-before-data violated\n{events:?}"
                    );
                }
            }
        }
    }

    /// Regression: `flush_all` must flush the WAL up to each page's LSN
    /// before writing that page.
    #[test]
    fn flush_all_orders_wal_before_data() {
        let (p, events, lsn) = gated_pool(8);
        let mut stamps = HashMap::new();
        for i in 1..=4u64 {
            lsn.store(i, Ordering::SeqCst);
            let id = p.allocate().unwrap();
            p.with_page_mut(id, |pg| pg[0] = i as u8).unwrap();
            stamps.insert(id, i);
        }
        p.flush_all().unwrap();
        let trace = events.lock().clone();
        assert_eq!(
            trace
                .iter()
                .filter(|e| matches!(e, Event::PageWritten(_)))
                .count(),
            4
        );
        assert_wal_before_data(&trace, &stamps);
    }

    /// Regression: evicting a dirty page must flush its WAL record
    /// first.  (This is the bug class the page-LSN gate exists for: a
    /// steal-mode eviction racing ahead of the log.)
    #[test]
    fn dirty_eviction_orders_wal_before_data() {
        let (p, events, lsn) = gated_pool(2);
        let mut stamps = HashMap::new();
        lsn.store(7, Ordering::SeqCst);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg[0] = 1).unwrap();
        stamps.insert(a, 7);
        lsn.store(9, Ordering::SeqCst);
        let b = p.allocate().unwrap();
        p.with_page_mut(b, |pg| pg[0] = 2).unwrap();
        stamps.insert(b, 9);
        // allocating two more pages forces both dirty pages out
        let _c = p.allocate().unwrap();
        let _d = p.allocate().unwrap();
        let trace = events.lock().clone();
        assert!(
            trace.contains(&Event::PageWritten(a)),
            "a must have been evicted: {trace:?}"
        );
        assert_wal_before_data(&trace, &stamps);
    }

    /// In pin-dirty (no-steal) mode, eviction never writes a dirty page:
    /// clean frames are evicted first and the pool grows past capacity
    /// when everything is dirty.
    #[test]
    fn pin_dirty_never_writes_on_eviction() {
        let (p, events, lsn) = gated_pool(2);
        p.set_pin_dirty(true);
        lsn.store(3, Ordering::SeqCst);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg[0] = i as u8).unwrap();
        }
        assert!(
            events
                .lock()
                .iter()
                .all(|e| !matches!(e, Event::PageWritten(_))),
            "no dirty page may reach the store before a checkpoint flush"
        );
        // all four dirty pages are still readable (pool grew)
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.with_page(*id, |pg| pg[0]).unwrap(), i as u8);
        }
        // an explicit flush (the checkpoint) writes them, WAL first
        p.flush_all().unwrap();
        let stamps: HashMap<PageId, u64> = ids.iter().map(|&id| (id, 3)).collect();
        assert_wal_before_data(&events.lock(), &stamps);
        // once clean, frames evict without further writes
        events.lock().clear();
        let _ = p.allocate().unwrap();
        let _ = p.allocate().unwrap();
        assert!(events
            .lock()
            .iter()
            .all(|e| !matches!(e, Event::PageWritten(_))));
    }

    /// A store whose backing [`MemStore`] the test keeps a handle to, so
    /// it can scribble on persisted bytes behind the pool's back.
    struct SharedStore {
        inner: Arc<Mutex<MemStore>>,
    }

    impl PageStore for SharedStore {
        fn allocate(&mut self) -> Result<PageId> {
            self.inner.lock().allocate()
        }
        fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
            self.inner.lock().read_page(id, buf)
        }
        fn write_page(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
            self.inner.lock().write_page(id, buf)
        }
        fn num_pages(&self) -> u64 {
            self.inner.lock().num_pages()
        }
    }

    #[test]
    fn cold_read_of_a_corrupted_page_is_an_error_not_garbage() {
        let backing = Arc::new(Mutex::new(MemStore::new()));
        let p = BufferPool::new(
            Box::new(SharedStore {
                inner: backing.clone(),
            }),
            4,
        );
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pg| pg[100] = 0xEE).unwrap();
        p.clear_cache().unwrap();
        // A stamped page reloads cleanly.
        assert_eq!(p.with_page(id, |pg| pg[100]).unwrap(), 0xEE);
        p.clear_cache().unwrap();
        // Flip one persisted byte behind the pool's back.
        {
            let mut g = backing.lock();
            let mut buf = [0u8; PAGE_SIZE];
            g.read_page(id, &mut buf).unwrap();
            buf[100] ^= 0xFF;
            g.write_page(id, &buf).unwrap();
        }
        let err = p.with_page(id, |_| ()).unwrap_err();
        assert_eq!(err.code(), bdbms_common::ErrorCode::Corrupt);
        assert!(err.to_string().contains("pg0"), "names the page: {err}");
    }

    #[test]
    fn clear_cache_makes_reads_cold() {
        let p = pool(8);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg[0] = i as u8).unwrap();
        }
        p.clear_cache().unwrap();
        p.reset_io_stats();
        for id in &ids {
            p.with_page(*id, |_| ()).unwrap();
        }
        assert_eq!(p.io_stats().reads, 4);
    }
}
