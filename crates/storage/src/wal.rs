//! Write-ahead log: an append-only, segmented redo log.
//!
//! The WAL is the durability half of the engine's crash story (the other
//! half is the atomically-renamed checkpoint image written by
//! `bdbms-core`).  This module is deliberately *byte-oriented*: it frames,
//! checksums, segments, fsyncs, and replays opaque payloads, while the
//! record vocabulary (logical redo operations) lives upstairs in
//! `bdbms_core::durability`.
//!
//! ## On-disk format
//!
//! A WAL is a directory of segment files `wal-NNNNNNNN.log`.  Each segment
//! starts with a 16-byte header:
//!
//! ```text
//! [0..8)   magic  b"BDBMSWAL"
//! [8..16)  lsn of the first record in this segment (u64 LE)
//! ```
//!
//! followed by frames:
//!
//! ```text
//! [0..4)   payload length (u32 LE)
//! [4..8)   CRC-32 over (lsn bytes || payload)
//! [8..16)  lsn (u64 LE), strictly increasing across segments
//! [16..)   payload
//! ```
//!
//! LSNs are allocated densely starting at 1.  A frame that fails its
//! length or CRC check in the **final** segment is a *torn tail* — the
//! expected signature of a crash mid-append — and is truncated away
//! (with everything after it).  The same failure in a non-final segment
//! means bytes rotted *behind* durable data and surfaces as
//! [`ErrorCode::Corrupt`](bdbms_common::ErrorCode::Corrupt) instead: a
//! later segment may hold committed records that silently truncating
//! would throw away.
//!
//! ## Fsync policy
//!
//! [`Durability::Full`] fsyncs the active segment on every
//! [`Wal::flush`] (the commit path) — a committed transaction survives
//! power loss.  [`Durability::NoSync`] only writes the OS buffer: commits
//! survive a process crash but a machine crash may lose the most recent
//! ones (PostgreSQL's `synchronous_commit = off` trade).
//!
//! ## WAL-before-data
//!
//! [`SharedWal`] implements [`FlushGate`], the hook the buffer pool calls
//! before writing any page whose [`page LSN`](crate::BufferPool) exceeds
//! the flushed LSN — no data page can reach the store ahead of its log
//! record.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bdbms_common::metrics::{Counter, Gauge, Histogram};
use bdbms_common::{BdbmsError, Result};

use crate::fault::{FaultInjector, IoDecision};

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum used by WAL
/// frames and the database header page.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table-free implementation; the WAL is not the bottleneck and
    // the container has no external crc crate.
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// When does a committed transaction actually reach the platter?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Fsync the WAL on every commit: commits survive power loss.
    #[default]
    Full,
    /// Write the OS buffer only: commits survive a process crash, not
    /// necessarily a machine crash.
    NoSync,
}

/// The ordering hook between a WAL and a buffer pool: before writing a
/// dirty page stamped with `lsn`, the pool calls
/// [`flush_to`](FlushGate::flush_to) so the page's log record is
/// durable first.
pub trait FlushGate: Send + Sync {
    /// Make every appended record with an LSN ≤ `lsn` durable (to the
    /// extent the durability policy promises).  Records not yet appended
    /// cannot be waited for — the gate flushes what exists.
    fn flush_to(&self, lsn: u64) -> Result<()>;
}

const SEG_MAGIC: &[u8; 8] = b"BDBMSWAL";
const SEG_HEADER: u64 = 16;
const FRAME_HEADER: usize = 16;
/// Rotate to a fresh segment once the active one exceeds this.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

/// One recovered record: its LSN and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Log sequence number (dense, starting at 1).
    pub lsn: u64,
    /// Opaque payload as appended.
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every valid record, in LSN order.
    pub entries: Vec<WalEntry>,
    /// Bytes discarded from a torn tail (0 on a clean log).
    pub torn_bytes: u64,
}

/// The append-only segmented log.
pub struct Wal {
    dir: PathBuf,
    durability: Durability,
    segment_bytes: u64,
    /// Index of the active segment file.
    active_index: u64,
    /// Buffered writer over the active segment.
    writer: BufWriter<File>,
    /// Bytes written to the active segment (including its header).
    active_len: u64,
    /// Next LSN to allocate.
    next_lsn: u64,
    /// Highest LSN guaranteed written to the OS (and fsynced under
    /// `Full`).
    flushed_lsn: u64,
    /// Latched when a failed append could not be rewound: the log's
    /// tail is in an unknown state and further appends could make a
    /// dead transaction's frames replayable.  Everything write-shaped
    /// errors until the database is reopened (which re-scans and
    /// truncates the tail).
    damaged: bool,
    /// Bytes of the active segment known written to the OS — an injected
    /// torn flush may only damage bytes past this point (a real torn
    /// write can only tear the bytes being written, never earlier ones).
    flushed_len: u64,
    /// Fault-injection hook on the flush path (armed only by tests).
    hook: Option<Arc<FaultInjector>>,
    /// Count of fsyncs issued against the log (flush, rotate, reset) —
    /// the observable group commit amortizes.  Shared so servers and
    /// benchmarks can watch it without holding the WAL lock.
    sync_count: Arc<AtomicU64>,
    /// Live-observability instruments (appends, fsync count + latency).
    /// Always allocated; a database registers them under `wal.*` names.
    metrics: WalMetrics,
}

/// The log's always-allocated observability instruments, `Arc`-shared
/// so a [`bdbms_common::metrics::MetricsRegistry`] can export them.
#[derive(Debug, Clone, Default)]
pub struct WalMetrics {
    /// Records appended (buffered, not necessarily durable yet).
    pub appends: Arc<Counter>,
    /// Fsyncs issued (mirrors [`Wal::sync_count`] for registry export).
    pub fsyncs: Arc<Counter>,
    /// Wall time of each fsync, in nanoseconds.
    pub fsync_latency_ns: Arc<Histogram>,
}

/// An opaque append position, taken with [`Wal::position`] before a
/// commit's appends and handed back to [`Wal::rewind`] if any of them
/// (or the flush) fails — the half-written commit must not linger,
/// because a *later* successful commit would otherwise make its frames
/// replayable.
#[derive(Debug, Clone, Copy)]
pub struct WalPos {
    index: u64,
    len: u64,
    next_lsn: u64,
}

impl Wal {
    /// Open (or create) the log directory, scan every segment, truncate a
    /// torn tail, and position the writer after the last valid frame.
    ///
    /// The caller decides which recovered entries are *committed*; the
    /// WAL itself only vouches for their integrity.  After replaying,
    /// the caller truncates the log with [`reset`](Wal::reset) (the
    /// post-recovery checkpoint), which also drops any uncommitted
    /// entries for good.
    pub fn open(dir: impl Into<PathBuf>, durability: Durability) -> Result<(Wal, WalScan)> {
        Self::open_sized(dir, durability, DEFAULT_SEGMENT_BYTES)
    }

    /// [`open`](Wal::open) with an explicit segment-rotation threshold.
    pub fn open_sized(
        dir: impl Into<PathBuf>,
        durability: Durability,
        segment_bytes: u64,
    ) -> Result<(Wal, WalScan)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut indexes = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                indexes.push(idx);
            }
        }
        indexes.sort_unstable();

        let mut scan = WalScan::default();
        let mut next_lsn = 1u64;
        for (pos, &idx) in indexes.iter().enumerate() {
            let last = pos + 1 == indexes.len();
            let path = segment_path(&dir, idx);
            let bytes = fs::read(&path)?;
            match scan_segment(&bytes, &mut scan.entries) {
                Ok(()) => {}
                Err(valid_up_to) if last => {
                    // torn tail: truncate the file at the last valid frame
                    scan.torn_bytes = bytes.len() as u64 - valid_up_to;
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(valid_up_to)?;
                    f.sync_all()?;
                }
                Err(_) => {
                    return Err(BdbmsError::corrupt(format!(
                        "WAL segment {} is damaged before the final segment; \
                         refusing to silently drop possibly-committed records",
                        path.display()
                    )));
                }
            }
        }
        if let Some(e) = scan.entries.last() {
            next_lsn = e.lsn + 1;
        }

        // append into the last segment (or a fresh first one)
        let active_index = indexes.last().copied().unwrap_or(0);
        let path = segment_path(&dir, active_index);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let active_len = if len == 0 {
            file.write_all(SEG_MAGIC)?;
            file.write_all(&next_lsn.to_le_bytes())?;
            SEG_HEADER
        } else {
            file.seek(SeekFrom::End(0))?;
            len
        };
        let wal = Wal {
            dir,
            durability,
            segment_bytes,
            active_index,
            writer: BufWriter::new(file),
            active_len,
            next_lsn,
            flushed_lsn: next_lsn - 1,
            damaged: false,
            flushed_len: active_len,
            hook: None,
            sync_count: Arc::new(AtomicU64::new(0)),
            metrics: WalMetrics::default(),
        };
        Ok((wal, scan))
    }

    /// The current append position (see [`WalPos`]).
    pub fn position(&self) -> WalPos {
        WalPos {
            index: self.active_index,
            len: self.active_len,
            next_lsn: self.next_lsn,
        }
    }

    /// Discard everything appended after `pos` — the error path of a
    /// commit whose append/flush failed partway.  Buffered bytes are
    /// dropped without flushing, segments created since `pos` are
    /// deleted, and the active segment is truncated back.  If the
    /// rewind itself fails the log is latched `damaged`: the tail
    /// state is unknown and appending more would risk replaying the
    /// dead transaction, so every later write errors until reopen.
    pub fn rewind(&mut self, pos: WalPos) -> Result<()> {
        let r = (|| -> Result<()> {
            let path = segment_path(&self.dir, pos.index);
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            // swap first and drop the old writer via into_parts: a plain
            // drop would flush its buffered (dead) bytes into the file
            let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
            let _ = old.into_parts();
            for idx in (pos.index + 1)..=self.active_index {
                let _ = fs::remove_file(segment_path(&self.dir, idx));
            }
            self.writer.get_ref().set_len(pos.len)?;
            self.writer.get_mut().seek(SeekFrom::Start(pos.len))?;
            self.active_index = pos.index;
            self.active_len = pos.len;
            self.next_lsn = pos.next_lsn;
            self.flushed_lsn = self.flushed_lsn.min(pos.next_lsn - 1);
            self.flushed_len = self.flushed_len.min(pos.len);
            Ok(())
        })();
        match r {
            // a completed rewind leaves the tail in a known state, even
            // if an earlier failure (e.g. an injected torn flush) had
            // latched it damaged
            Ok(()) => self.damaged = false,
            Err(_) => self.damaged = true,
        }
        r
    }

    /// Route the flush path through `injector` — deterministic
    /// fault-injection tests only; see [`crate::fault`].
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.hook = Some(injector);
    }

    fn check_damage(&self) -> Result<()> {
        if self.damaged {
            Err(BdbmsError::storage(
                "WAL tail is in an unknown state after a failed commit \
                 rewind; reopen the database to recover",
            ))
        } else {
            Ok(())
        }
    }

    /// The durability policy in force.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The next LSN [`append`](Wal::append) would allocate.  Data pages
    /// dirtied *now* are stamped with this: whatever record describes the
    /// change will get an LSN ≥ it.
    pub fn reserved_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Highest LSN made durable so far.
    pub fn flushed_lsn(&self) -> u64 {
        self.flushed_lsn
    }

    /// Shared handle on the fsync counter (see [`Wal::sync_count`]).
    pub fn sync_counter(&self) -> Arc<AtomicU64> {
        self.sync_count.clone()
    }

    /// Number of fsyncs this log has issued (flush, rotation, reset).
    /// This is the denominator group commit divides: N commits riding
    /// one flush tick this once.
    pub fn sync_count(&self) -> u64 {
        self.sync_count.load(Ordering::Relaxed)
    }

    /// Handles to the log's observability instruments (for registry
    /// export).
    pub fn metrics(&self) -> WalMetrics {
        self.metrics.clone()
    }

    fn sync_file(&self, f: &File) -> std::io::Result<()> {
        self.sync_count.fetch_add(1, Ordering::Relaxed);
        self.metrics.fsyncs.inc();
        let started = std::time::Instant::now();
        let r = f.sync_all();
        self.metrics.fsync_latency_ns.record_duration(started.elapsed());
        r
    }

    /// Number of live segment files (observability for checkpoint tests).
    pub fn segment_count(&self) -> Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") && name.ends_with(".log") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Append one record; returns its LSN.  The bytes are buffered — call
    /// [`flush`](Wal::flush) (commit) to make them durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        self.check_damage()?;
        if self.active_len >= self.segment_bytes + SEG_HEADER {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(payload);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&crc_input).to_le_bytes())?;
        self.writer.write_all(&crc_input)?;
        self.active_len += (FRAME_HEADER + payload.len()) as u64;
        self.metrics.appends.inc();
        Ok(lsn)
    }

    fn rotate(&mut self) -> Result<()> {
        self.writer.flush()?;
        if self.durability == Durability::Full {
            self.sync_file(self.writer.get_ref())?;
        }
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(SEG_MAGIC)?;
        file.write_all(&self.next_lsn.to_le_bytes())?;
        self.writer = BufWriter::new(file);
        self.active_len = SEG_HEADER;
        self.flushed_len = SEG_HEADER;
        Ok(())
    }

    /// Run the fault-injection hook on the flush path (armed only by
    /// tests); shared by [`flush`](Wal::flush) and
    /// [`begin_flush`](Wal::begin_flush).
    fn run_flush_hook(&mut self) -> Result<()> {
        if let Some(h) = self.hook.clone() {
            match h.next_op() {
                IoDecision::Proceed => {}
                IoDecision::Fail | IoDecision::Flip { .. } => {
                    // Nothing reached the medium; buffered bytes stay
                    // buffered and a failed commit rewinds them away.
                    // (A flush has no payload to flip, so Flip degrades
                    // to a plain failure.)
                    return Err(FaultInjector::injected_error("WAL flush"));
                }
                IoDecision::Tear { bytes } => {
                    // Part of the buffered tail reaches the medium, the
                    // rest vanishes: flush, then chop the un-durable end.
                    // The in-memory tail no longer matches the file, so
                    // the log latches damaged until a rewind (the commit
                    // error path) or a reopen restores a known state.
                    self.writer.flush()?;
                    let keep = self
                        .active_len
                        .saturating_sub(bytes as u64)
                        .max(self.flushed_len);
                    self.writer.get_ref().set_len(keep)?;
                    self.damaged = true;
                    return Err(FaultInjector::injected_error("torn WAL flush"));
                }
            }
        }
        Ok(())
    }

    /// Push buffered frames to the OS and, under [`Durability::Full`],
    /// fsync them.  This is the commit barrier.
    pub fn flush(&mut self) -> Result<()> {
        self.check_damage()?;
        self.run_flush_hook()?;
        self.writer.flush()?;
        if self.durability == Durability::Full {
            self.sync_file(self.writer.get_ref())?;
        }
        self.flushed_lsn = self.next_lsn - 1;
        self.flushed_len = self.active_len;
        Ok(())
    }

    /// Phase one of a two-phase flush: push buffered frames to the OS
    /// *under the WAL lock* and hand back a [`FlushHandle`] whose
    /// [`sync`](FlushHandle::sync) performs the fsync — designed to run
    /// *outside* the lock, so committers keep appending into the next
    /// group while the barrier is in flight.  This is what makes group
    /// commit actually group: holding the lock across the fsync would
    /// cap every group at whatever queued between fsyncs.
    ///
    /// Complete the protocol by calling
    /// [`complete_flush`](Wal::complete_flush) (with the lock retaken)
    /// after a successful sync.
    pub fn begin_flush(&mut self) -> Result<FlushHandle> {
        self.check_damage()?;
        self.run_flush_hook()?;
        self.writer.flush()?;
        let file = self.writer.get_ref().try_clone()?;
        Ok(FlushHandle {
            file,
            index: self.active_index,
            lsn: self.next_lsn - 1,
            len: self.active_len,
            sync_count: self.sync_count.clone(),
            metrics: self.metrics.clone(),
            durability: self.durability,
        })
    }

    /// Phase two of a two-phase flush: record what
    /// [`FlushHandle::sync`] made durable.  Rewinds and rotations that
    /// ran while the fsync was in flight shrink what the handle can
    /// vouch for, hence the clamps.
    pub fn complete_flush(&mut self, handle: &FlushHandle) {
        self.flushed_lsn = self
            .flushed_lsn
            .max(handle.lsn.min(self.next_lsn.saturating_sub(1)));
        if self.active_index == handle.index {
            self.flushed_len = self.flushed_len.max(handle.len.min(self.active_len));
        }
    }

    /// Drop every segment and start over with an empty log (checkpoint:
    /// the image now carries everything).  LSNs keep counting — they
    /// never restart, so page LSN stamps stay comparable.
    pub fn reset(&mut self) -> Result<()> {
        // flush so the writer's drop order can't resurrect bytes
        self.writer.flush()?;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.starts_with("wal-") && name.ends_with(".log") {
                fs::remove_file(entry.path())?;
            }
        }
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(SEG_MAGIC)?;
        file.write_all(&self.next_lsn.to_le_bytes())?;
        if self.durability == Durability::Full {
            self.sync_file(&file)?;
            File::open(&self.dir)?.sync_all()?;
        }
        self.writer = BufWriter::new(file);
        self.active_len = SEG_HEADER;
        self.flushed_len = SEG_HEADER;
        self.flushed_lsn = self.next_lsn - 1;
        // a completed reset is a known-good state from scratch
        self.damaged = false;
        Ok(())
    }
}

/// Scan one segment's bytes, pushing valid entries.  `Err(offset)` means
/// the segment is valid up to `offset` and damaged after it.
///
/// Every slice below is guarded: the frame header is taken with `get`
/// (so a truncated header is a torn tail, not a panic) and the frame end
/// is computed with checked arithmetic (so a garbage length field that
/// would overflow `usize` is damage, not a panic).  The follow-up
/// `unwrap`s convert provably-sized slices and are unreachable for any
/// input — the property-fuzz suite in `tests/prop_wal.rs` holds this to
/// arbitrary byte strings.
fn scan_segment(bytes: &[u8], out: &mut Vec<WalEntry>) -> std::result::Result<(), u64> {
    if bytes.is_empty() {
        return Ok(());
    }
    if bytes.len() < SEG_HEADER as usize || &bytes[..8] != SEG_MAGIC {
        return Err(0);
    }
    let mut pos = SEG_HEADER as usize;
    while pos < bytes.len() {
        let valid_up_to = pos as u64;
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER) else {
            return Err(valid_up_to);
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            return Err(valid_up_to);
        };
        // end ≥ pos + 8 always holds here, so the range is well-formed;
        // `get` rejects an end past the buffer.
        let Some(crc_input) = bytes.get(pos + 8..end) else {
            return Err(valid_up_to);
        };
        if crc32(crc_input) != crc {
            return Err(valid_up_to);
        }
        let lsn = u64::from_le_bytes(crc_input[..8].try_into().unwrap());
        out.push(WalEntry {
            lsn,
            payload: crc_input[8..].to_vec(),
        });
        pos = end;
    }
    Ok(())
}

/// Parse one segment's bytes read-only: the valid entries plus, when the
/// segment is damaged, the byte offset at which damage starts.  Public
/// surface for the fuzz suite and [`verify_wal_dir`].
pub fn scan_segment_bytes(bytes: &[u8]) -> (Vec<WalEntry>, Option<u64>) {
    let mut out = Vec::new();
    match scan_segment(bytes, &mut out) {
        Ok(()) => (out, None),
        Err(off) => (out, Some(off)),
    }
}

/// A read-only integrity report over a WAL directory (the WAL half of
/// the engine's `CHECK` statement).
#[derive(Debug, Default)]
pub struct WalCheck {
    /// Segment files inspected.
    pub segments: usize,
    /// Valid frames found across all segments.
    pub frames: usize,
    /// Human-readable integrity problems (empty = clean).
    pub problems: Vec<String>,
}

/// Walk every segment in `dir` without mutating anything: frame CRCs,
/// segment-index contiguity, header/first-frame agreement, and dense LSN
/// chaining across segments.  Unlike [`Wal::open`], damage is *reported*
/// rather than repaired — a torn tail is a finding here, not a
/// truncation.
pub fn verify_wal_dir(dir: impl AsRef<Path>) -> Result<WalCheck> {
    let dir = dir.as_ref();
    let mut check = WalCheck::default();
    if !dir.is_dir() {
        check
            .problems
            .push(format!("WAL directory `{}` is missing", dir.display()));
        return Ok(check);
    }
    let mut indexes = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            indexes.push(idx);
        }
    }
    indexes.sort_unstable();
    for w in indexes.windows(2) {
        if w[1] != w[0] + 1 {
            check.problems.push(format!(
                "segment gap: wal-{:08} follows wal-{:08}",
                w[1], w[0]
            ));
        }
    }
    let mut expect_lsn: Option<u64> = None;
    for (i, &idx) in indexes.iter().enumerate() {
        check.segments += 1;
        let path = segment_path(dir, idx);
        let bytes = fs::read(&path)?;
        let (entries, damage) = scan_segment_bytes(&bytes);
        if bytes.len() >= SEG_HEADER as usize && &bytes[..8] == SEG_MAGIC {
            let hdr_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            if let Some(first) = entries.first() {
                if first.lsn != hdr_lsn {
                    check.problems.push(format!(
                        "segment {idx}: header claims first LSN {hdr_lsn}, \
                         first frame carries {}",
                        first.lsn
                    ));
                }
            }
        }
        if let Some(off) = damage {
            let last = i + 1 == indexes.len();
            check.problems.push(format!(
                "segment {idx}: damaged at byte {off}{}",
                if last { " (torn tail)" } else { "" }
            ));
        }
        for e in &entries {
            check.frames += 1;
            if let Some(want) = expect_lsn {
                if e.lsn != want {
                    check.problems.push(format!(
                        "LSN chain broken: expected {want}, found {}",
                        e.lsn
                    ));
                }
            }
            expect_lsn = Some(e.lsn + 1);
        }
    }
    Ok(check)
}

/// A clonable, thread-safe handle over a [`Wal`], shared between the
/// engine (appends, commits) and the buffer pool (the
/// [`FlushGate`] ordering hook).
#[derive(Clone)]
pub struct SharedWal(Arc<Mutex<Wal>>);

impl SharedWal {
    /// Wrap a WAL for sharing.
    pub fn new(wal: Wal) -> SharedWal {
        SharedWal(Arc::new(Mutex::new(wal)))
    }

    /// Run `f` with exclusive access to the log.
    pub fn with<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut self.0.lock())
    }
}

impl FlushGate for SharedWal {
    fn flush_to(&self, lsn: u64) -> Result<()> {
        let mut wal = self.0.lock();
        // Records up to `lsn` that exist are flushed; a stamp ahead of
        // the log (dirtied by an op whose record is still buffered in the
        // transaction) flushes everything appended so far — the missing
        // records belong to an uncommitted transaction, which recovery
        // discards regardless of what the data page holds.
        if wal.flushed_lsn() < lsn.min(wal.reserved_lsn() - 1) {
            wal.flush()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

/// Completion state shared between one committer and the flusher.
struct TicketInner {
    state: std::sync::Mutex<Option<Result<u64>>>,
    cond: std::sync::Condvar,
}

/// The out-of-lock half of a two-phase WAL flush (see
/// [`Wal::begin_flush`]): a cloned handle on the active segment file
/// plus the high-water marks the eventual fsync will cover.
pub struct FlushHandle {
    file: File,
    index: u64,
    lsn: u64,
    len: u64,
    sync_count: Arc<AtomicU64>,
    metrics: WalMetrics,
    durability: Durability,
}

impl FlushHandle {
    /// Highest LSN this flush makes durable.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Issue the fsync (a no-op under anything weaker than
    /// [`Durability::Full`] — the OS-level write already happened in
    /// [`Wal::begin_flush`]).  Call **without** holding the WAL lock.
    pub fn sync(&self) -> Result<()> {
        if self.durability == Durability::Full {
            self.sync_count.fetch_add(1, Ordering::Relaxed);
            self.metrics.fsyncs.inc();
            let started = std::time::Instant::now();
            let r = self.file.sync_all();
            self.metrics
                .fsync_latency_ns
                .record_duration(started.elapsed());
            r?;
        }
        Ok(())
    }
}

/// One committer's place in the group-commit queue.
///
/// Handed out by [`GroupCommitter::submit`] after the commit's frames
/// (including its commit record) are *appended* to the log.  The ticket
/// resolves once a flush with `flushed_lsn ≥ lsn` completes — that flush
/// may have been triggered by this committer, by a later one, or by a
/// checkpoint; whoever pays the fsync, everyone queued behind it rides
/// along.  Waiting is the *acknowledgment* barrier: a commit must not be
/// confirmed to a client before its ticket resolves.
pub struct CommitTicket {
    lsn: u64,
    inner: Arc<TicketInner>,
}

impl CommitTicket {
    /// The commit-record LSN this ticket waits on.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Block until the commit is durable (returns the flushed LSN) or
    /// the flush failed.  An error means the commit's durability is
    /// *unknown* — the frames may or may not have reached the platter —
    /// which callers must surface as a failed commit.
    pub fn wait(self) -> Result<u64> {
        let mut st = self.inner.state.lock().expect("ticket mutex");
        while st.is_none() {
            st = self.inner.cond.wait(st).expect("ticket mutex");
        }
        st.take().expect("resolved above")
    }
}

/// State shared between committers and the flusher thread.
struct GroupShared {
    /// LSNs waiting for durability, paired with their wakeup handles.
    pending: std::sync::Mutex<Vec<(u64, Arc<TicketInner>)>>,
    cond: std::sync::Condvar,
    shutdown: std::sync::atomic::AtomicBool,
}

/// The group-commit gate: one background flusher amortizes the fsync
/// barrier over every committer that reached the log before it.
///
/// Protocol: a committer appends its frames (commit record last) under
/// the WAL lock, then [`submit`](GroupCommitter::submit)s the commit
/// LSN and gets a [`CommitTicket`] back.  The flusher thread wakes,
/// snapshots the queue, issues **one** [`Wal::flush`], and resolves
/// every ticket whose LSN the flush covered.  Committers that arrive
/// while the fsync is in flight queue up for the next round — under N
/// concurrent committers each round carries ~N commits, so each commit
/// pays ~1/N of the barrier (the e14 experiment measures this as
/// fsyncs-per-commit).
pub struct GroupCommitter {
    wal: SharedWal,
    shared: Arc<GroupShared>,
    metrics: GroupCommitMetrics,
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// The flusher's observability instruments: the group-size distribution
/// and the live fsync-cost EMA that drives the adaptive gather window.
/// These used to be locals inside [`GroupCommitter::flush_loop`]; the
/// registry export makes e14's commits-per-fsync claim observable on a
/// live server.
#[derive(Debug, Clone, Default)]
pub struct GroupCommitMetrics {
    /// Commits carried per flush round.
    pub group_sizes: Arc<Histogram>,
    /// Exponential moving average of fsync wall time, nanoseconds.
    pub fsync_ema_ns: Arc<Gauge>,
}

impl GroupCommitter {
    /// Spawn the flusher thread over `wal`.
    pub fn new(wal: SharedWal) -> GroupCommitter {
        let shared = Arc::new(GroupShared {
            pending: std::sync::Mutex::new(Vec::new()),
            cond: std::sync::Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let metrics = GroupCommitMetrics::default();
        let thread_shared = shared.clone();
        let thread_wal = wal.clone();
        let thread_metrics = metrics.clone();
        let flusher = std::thread::Builder::new()
            .name("bdbms-group-commit".into())
            .spawn(move || Self::flush_loop(thread_wal, thread_shared, thread_metrics))
            .expect("spawn group-commit flusher");
        GroupCommitter {
            wal,
            shared,
            metrics,
            flusher: Some(flusher),
        }
    }

    /// Handles to the flusher's observability instruments (for registry
    /// export).
    pub fn metrics(&self) -> GroupCommitMetrics {
        self.metrics.clone()
    }

    /// Queue a committed-but-unflushed LSN at the flush gate.  Call
    /// *after* the commit record is appended.
    pub fn submit(&self, lsn: u64) -> CommitTicket {
        let inner = Arc::new(TicketInner {
            state: std::sync::Mutex::new(None),
            cond: std::sync::Condvar::new(),
        });
        {
            let mut pending = self.shared.pending.lock().expect("group mutex");
            pending.push((lsn, inner.clone()));
        }
        self.shared.cond.notify_all();
        CommitTicket { lsn, inner }
    }

    /// The underlying shared WAL handle.
    pub fn wal(&self) -> &SharedWal {
        &self.wal
    }

    fn flush_loop(wal: SharedWal, shared: Arc<GroupShared>, metrics: GroupCommitMetrics) {
        // Adaptive gather: when the previous group carried more than one
        // commit (concurrent committers), linger for about half the
        // measured fsync cost before flushing, so commits the engine is
        // executing *right now* join this group instead of forcing the
        // next fsync.  A lone committer (previous group of one) never
        // waits — sequential workloads keep zero-delay flushes.
        let mut last_group = 1usize;
        let mut fsync_ema = std::time::Duration::from_micros(200);
        loop {
            // wait for work (or shutdown)
            let mut batch: Vec<(u64, Arc<TicketInner>)> = {
                let mut pending = shared.pending.lock().expect("group mutex");
                while pending.is_empty() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    pending = shared.cond.wait(pending).expect("group mutex");
                }
                std::mem::take(&mut *pending)
            };
            if last_group > 1 {
                // Sleep, don't spin: on a single core a yield loop
                // competes with the very committers this window is
                // waiting for.  One sleep takes the flusher off the
                // runqueue; late arrivals are drained in a single sweep.
                let gather = (fsync_ema / 2).min(std::time::Duration::from_millis(1));
                std::thread::sleep(gather);
                let mut pending = shared.pending.lock().expect("group mutex");
                batch.append(&mut pending);
            }
            last_group = batch.len();
            metrics.group_sizes.record(batch.len() as u64);
            // one flush covers the whole batch — committers appended
            // before submitting, so every batched LSN is in the log.
            // Skip the flush entirely if something else (a checkpoint,
            // the buffer pool's WAL-before-data gate) already made the
            // batch durable.  The flush itself is two-phase: buffered
            // bytes reach the OS under the WAL lock, but the fsync runs
            // with the lock *released*, so committers keep appending
            // into the next group while this one's barrier is in
            // flight — that concurrency is the whole amortization.
            let top = batch.iter().map(|(l, _)| *l).max().unwrap_or(0);
            let prepared = wal.with(|w| {
                if w.flushed_lsn() >= top {
                    Ok(None)
                } else {
                    w.begin_flush().map(Some)
                }
            });
            let outcome = match prepared {
                Ok(None) => Ok(top),
                Ok(Some(handle)) => {
                    let started = std::time::Instant::now();
                    match handle.sync() {
                        Ok(()) => {
                            fsync_ema = (fsync_ema * 7 + started.elapsed()) / 8;
                            metrics
                                .fsync_ema_ns
                                .set(fsync_ema.as_nanos().min(u64::MAX as u128) as u64);
                            Ok(wal.with(|w| {
                                w.complete_flush(&handle);
                                w.flushed_lsn()
                            }))
                        }
                        Err(e) => Err(e),
                    }
                }
                Err(e) => Err(e),
            };
            for (lsn, ticket) in batch {
                let r = match &outcome {
                    Ok(flushed) if *flushed >= lsn => Ok(*flushed),
                    // flushed short of this LSN without an error should
                    // be impossible (the frames were appended first);
                    // treat it as unknown durability rather than hang
                    Ok(flushed) => Err(BdbmsError::storage(format!(
                        "group flush stopped at LSN {flushed}, commit at {lsn} not covered"
                    ))),
                    Err(e) => Err(e.clone()),
                };
                *ticket.state.lock().expect("ticket mutex") = Some(r);
                ticket.cond.notify_all();
            }
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cond.notify_all();
        if let Some(t) = self.flusher.take() {
            let _ = t.join();
        }
        // resolve any stragglers that raced the shutdown flag with one
        // final flush, so no waiter hangs forever
        let leftovers: Vec<(u64, Arc<TicketInner>)> =
            std::mem::take(&mut *self.shared.pending.lock().expect("group mutex"));
        if !leftovers.is_empty() {
            let outcome = self.wal.with(|w| w.flush().map(|()| w.flushed_lsn()));
            for (lsn, ticket) in leftovers {
                let r = match &outcome {
                    Ok(flushed) if *flushed >= lsn => Ok(*flushed),
                    Ok(_) | Err(_) => Err(BdbmsError::storage(
                        "group committer shut down before the commit was flushed",
                    )),
                };
                *ticket.state.lock().expect("ticket mutex") = Some(r);
                ticket.cond.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdbms-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_flush_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        {
            let (mut wal, scan) = Wal::open(&dir, Durability::Full).unwrap();
            assert!(scan.entries.is_empty());
            assert_eq!(wal.append(b"alpha").unwrap(), 1);
            assert_eq!(wal.append(b"beta").unwrap(), 2);
            wal.flush().unwrap();
            assert_eq!(wal.flushed_lsn(), 2);
        }
        let (wal, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(
            scan.entries,
            vec![
                WalEntry {
                    lsn: 1,
                    payload: b"alpha".to_vec()
                },
                WalEntry {
                    lsn: 2,
                    payload: b"beta".to_vec()
                },
            ]
        );
        assert_eq!(wal.reserved_lsn(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&dir, Durability::Full).unwrap();
            wal.append(b"kept").unwrap();
            wal.append(b"torn-away").unwrap();
            wal.flush().unwrap();
        }
        // chop bytes off the tail: the second frame becomes unreadable
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].payload, b"kept");
        assert!(scan.torn_bytes > 0);
        // the truncation is persistent: a second open sees a clean log
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_in_final_segment_truncates_from_there() {
        let dir = tmp("bitflip");
        {
            let (mut wal, _) = Wal::open(&dir, Durability::Full).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.flush().unwrap();
        }
        // flip the first payload byte of the second frame
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let off = SEG_HEADER as usize + (FRAME_HEADER + 5) + FRAME_HEADER;
        bytes[off] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1, "bad frame and its tail dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_in_non_final_segment_is_corrupt() {
        let dir = tmp("midrot");
        {
            // tiny segments force rotation
            let (mut wal, _) = Wal::open_sized(&dir, Durability::Full, 32).unwrap();
            for i in 0..8 {
                wal.append(format!("record-{i}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
            assert!(wal.segment_count().unwrap() > 1);
        }
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let err = match Wal::open(&dir, Durability::Full) {
            Ok(_) => panic!("damaged middle segment must not open"),
            Err(e) => e,
        };
        assert_eq!(err.code(), bdbms_common::ErrorCode::Corrupt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_preserves_lsn_order_across_segments() {
        let dir = tmp("rotate");
        {
            let (mut wal, _) = Wal::open_sized(&dir, Durability::NoSync, 64).unwrap();
            for i in 0..50u64 {
                assert_eq!(wal.append(&i.to_le_bytes()).unwrap(), i + 1);
            }
            wal.flush().unwrap();
            assert!(wal.segment_count().unwrap() >= 3, "rotated");
        }
        let (_, scan) = Wal::open(&dir, Durability::NoSync).unwrap();
        let lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        assert_eq!(lsns, (1..=50).collect::<Vec<u64>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_truncates_segments_and_keeps_lsns_monotonic() {
        let dir = tmp("reset");
        let (mut wal, _) = Wal::open_sized(&dir, Durability::Full, 64).unwrap();
        for _ in 0..20 {
            wal.append(b"padding-padding").unwrap();
        }
        wal.flush().unwrap();
        assert!(wal.segment_count().unwrap() > 1);
        let before = wal.reserved_lsn();
        wal.reset().unwrap();
        assert_eq!(wal.segment_count().unwrap(), 1, "old segments deleted");
        assert_eq!(wal.reserved_lsn(), before, "LSNs never restart");
        let lsn = wal.append(b"after-reset").unwrap();
        assert_eq!(lsn, before);
        wal.flush().unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].lsn, before);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression: a commit whose append/flush fails must be rewindable
    /// — without the rewind, a later successful commit would make the
    /// dead frames replayable.
    #[test]
    fn rewind_discards_a_half_written_commit() {
        let dir = tmp("rewind");
        {
            let (mut wal, _) = Wal::open(&dir, Durability::Full).unwrap();
            wal.append(b"committed-1").unwrap();
            wal.flush().unwrap();
            let pos = wal.position();
            // a commit that "fails": two frames appended, then rewound
            wal.append(b"dead-op").unwrap();
            wal.append(b"dead-op-2").unwrap();
            wal.rewind(pos).unwrap();
            // the next commit reuses the LSNs and must be the only
            // thing that follows the first one
            assert_eq!(wal.append(b"committed-2").unwrap(), 2);
            wal.flush().unwrap();
        }
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        let payloads: Vec<&[u8]> = scan.entries.iter().map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"committed-1".as_slice(), b"committed-2"]);
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Rewind across a segment rotation deletes the segments the dead
    /// commit created.
    #[test]
    fn rewind_across_rotation_deletes_new_segments() {
        let dir = tmp("rewind-rot");
        let (mut wal, _) = Wal::open_sized(&dir, Durability::NoSync, 48).unwrap();
        wal.append(b"keep").unwrap();
        wal.flush().unwrap();
        let pos = wal.position();
        for _ in 0..10 {
            wal.append(b"dead-padding-padding").unwrap();
        }
        assert!(wal.segment_count().unwrap() > 1, "rotated");
        wal.rewind(pos).unwrap();
        assert_eq!(wal.segment_count().unwrap(), 1);
        wal.append(b"after").unwrap();
        wal.flush().unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&dir, Durability::NoSync).unwrap();
        let payloads: Vec<&[u8]> = scan.entries.iter().map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"keep".as_slice(), b"after"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_resolves_tickets_and_amortizes_fsyncs() {
        let dir = tmp("group");
        let (wal, _) = Wal::open(&dir, Durability::Full).unwrap();
        let shared = SharedWal::new(wal);
        let group = GroupCommitter::new(shared.clone());
        // a batch of "commits": append, then submit; all must resolve
        let mut tickets = Vec::new();
        for i in 0..8u64 {
            let lsn = shared
                .with(|w| w.append(format!("commit-{i}").as_bytes()))
                .unwrap();
            tickets.push(group.submit(lsn));
        }
        for t in tickets {
            let flushed = t.wait().unwrap();
            assert!(flushed >= 1);
        }
        // all 8 commits flushed; the flusher batches, so strictly fewer
        // fsyncs than commits (usually 1-2 for a burst this tight)
        let syncs = shared.with(|w| w.sync_count());
        assert!(syncs >= 1, "at least one real fsync");
        assert!(syncs < 8, "fsyncs amortized across the batch, got {syncs}");
        assert_eq!(shared.with(|w| w.flushed_lsn()), 8);
        drop(group);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_ticket_waits_from_other_threads() {
        let dir = tmp("group-threads");
        let (wal, _) = Wal::open(&dir, Durability::Full).unwrap();
        let shared = SharedWal::new(wal);
        let group = Arc::new(GroupCommitter::new(shared.clone()));
        let mut joins = Vec::new();
        for i in 0..4u64 {
            let shared = shared.clone();
            let group = group.clone();
            joins.push(std::thread::spawn(move || {
                let lsn = shared
                    .with(|w| w.append(format!("t-{i}").as_bytes()))
                    .unwrap();
                group.submit(lsn).wait().unwrap()
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(shared.with(|w| w.flushed_lsn()), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_drop_resolves_stragglers() {
        let dir = tmp("group-drop");
        let (wal, _) = Wal::open(&dir, Durability::Full).unwrap();
        let shared = SharedWal::new(wal);
        let group = GroupCommitter::new(shared.clone());
        let lsn = shared.with(|w| w.append(b"late")).unwrap();
        let ticket = group.submit(lsn);
        drop(group);
        // the ticket resolves either via the flusher's last round or the
        // drop-time sweep; either way it must not hang, and on Ok the
        // record is durable
        if let Ok(flushed) = ticket.wait() {
            assert!(flushed >= lsn);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_count_ticks_on_full_flush_only() {
        let dir = tmp("sync-count");
        let (mut wal, _) = Wal::open(&dir, Durability::NoSync).unwrap();
        wal.append(b"x").unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.sync_count(), 0, "NoSync never fsyncs");
        drop(wal);
        let dir2 = tmp("sync-count-full");
        let (mut wal, _) = Wal::open(&dir2, Durability::Full).unwrap();
        wal.append(b"x").unwrap();
        wal.flush().unwrap();
        wal.append(b"y").unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.sync_count(), 2, "one fsync per Full flush");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn shared_wal_gate_flushes_up_to_stamp() {
        let dir = tmp("gate");
        let (wal, _) = Wal::open(&dir, Durability::NoSync).unwrap();
        let shared = SharedWal::new(wal);
        shared.with(|w| w.append(b"one").map(|_| ())).unwrap();
        assert_eq!(shared.with(|w| w.flushed_lsn()), 0);
        shared.flush_to(1).unwrap();
        assert_eq!(shared.with(|w| w.flushed_lsn()), 1);
        // a stamp ahead of the log flushes what exists and succeeds
        shared.flush_to(99).unwrap();
        assert_eq!(shared.with(|w| w.flushed_lsn()), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
