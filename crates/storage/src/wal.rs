//! Write-ahead log: an append-only, segmented redo log.
//!
//! The WAL is the durability half of the engine's crash story (the other
//! half is the atomically-renamed checkpoint image written by
//! `bdbms-core`).  This module is deliberately *byte-oriented*: it frames,
//! checksums, segments, fsyncs, and replays opaque payloads, while the
//! record vocabulary (logical redo operations) lives upstairs in
//! `bdbms_core::durability`.
//!
//! ## On-disk format
//!
//! A WAL is a directory of segment files `wal-NNNNNNNN.log`.  Each segment
//! starts with a 16-byte header:
//!
//! ```text
//! [0..8)   magic  b"BDBMSWAL"
//! [8..16)  lsn of the first record in this segment (u64 LE)
//! ```
//!
//! followed by frames:
//!
//! ```text
//! [0..4)   payload length (u32 LE)
//! [4..8)   CRC-32 over (lsn bytes || payload)
//! [8..16)  lsn (u64 LE), strictly increasing across segments
//! [16..)   payload
//! ```
//!
//! LSNs are allocated densely starting at 1.  A frame that fails its
//! length or CRC check in the **final** segment is a *torn tail* — the
//! expected signature of a crash mid-append — and is truncated away
//! (with everything after it).  The same failure in a non-final segment
//! means bytes rotted *behind* durable data and surfaces as
//! [`ErrorCode::Corrupt`](bdbms_common::ErrorCode::Corrupt) instead: a
//! later segment may hold committed records that silently truncating
//! would throw away.
//!
//! ## Fsync policy
//!
//! [`Durability::Full`] fsyncs the active segment on every
//! [`Wal::flush`] (the commit path) — a committed transaction survives
//! power loss.  [`Durability::NoSync`] only writes the OS buffer: commits
//! survive a process crash but a machine crash may lose the most recent
//! ones (PostgreSQL's `synchronous_commit = off` trade).
//!
//! ## WAL-before-data
//!
//! [`SharedWal`] implements [`FlushGate`], the hook the buffer pool calls
//! before writing any page whose [`page LSN`](crate::BufferPool) exceeds
//! the flushed LSN — no data page can reach the store ahead of its log
//! record.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use bdbms_common::{BdbmsError, Result};

use crate::fault::{FaultInjector, IoDecision};

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum used by WAL
/// frames and the database header page.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table-free implementation; the WAL is not the bottleneck and
    // the container has no external crc crate.
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// When does a committed transaction actually reach the platter?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Fsync the WAL on every commit: commits survive power loss.
    #[default]
    Full,
    /// Write the OS buffer only: commits survive a process crash, not
    /// necessarily a machine crash.
    NoSync,
}

/// The ordering hook between a WAL and a buffer pool: before writing a
/// dirty page stamped with `lsn`, the pool calls
/// [`flush_to`](FlushGate::flush_to) so the page's log record is
/// durable first.
pub trait FlushGate: Send + Sync {
    /// Make every appended record with an LSN ≤ `lsn` durable (to the
    /// extent the durability policy promises).  Records not yet appended
    /// cannot be waited for — the gate flushes what exists.
    fn flush_to(&self, lsn: u64) -> Result<()>;
}

const SEG_MAGIC: &[u8; 8] = b"BDBMSWAL";
const SEG_HEADER: u64 = 16;
const FRAME_HEADER: usize = 16;
/// Rotate to a fresh segment once the active one exceeds this.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.log"))
}

/// One recovered record: its LSN and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Log sequence number (dense, starting at 1).
    pub lsn: u64,
    /// Opaque payload as appended.
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every valid record, in LSN order.
    pub entries: Vec<WalEntry>,
    /// Bytes discarded from a torn tail (0 on a clean log).
    pub torn_bytes: u64,
}

/// The append-only segmented log.
pub struct Wal {
    dir: PathBuf,
    durability: Durability,
    segment_bytes: u64,
    /// Index of the active segment file.
    active_index: u64,
    /// Buffered writer over the active segment.
    writer: BufWriter<File>,
    /// Bytes written to the active segment (including its header).
    active_len: u64,
    /// Next LSN to allocate.
    next_lsn: u64,
    /// Highest LSN guaranteed written to the OS (and fsynced under
    /// `Full`).
    flushed_lsn: u64,
    /// Latched when a failed append could not be rewound: the log's
    /// tail is in an unknown state and further appends could make a
    /// dead transaction's frames replayable.  Everything write-shaped
    /// errors until the database is reopened (which re-scans and
    /// truncates the tail).
    damaged: bool,
    /// Bytes of the active segment known written to the OS — an injected
    /// torn flush may only damage bytes past this point (a real torn
    /// write can only tear the bytes being written, never earlier ones).
    flushed_len: u64,
    /// Fault-injection hook on the flush path (armed only by tests).
    hook: Option<Arc<FaultInjector>>,
}

/// An opaque append position, taken with [`Wal::position`] before a
/// commit's appends and handed back to [`Wal::rewind`] if any of them
/// (or the flush) fails — the half-written commit must not linger,
/// because a *later* successful commit would otherwise make its frames
/// replayable.
#[derive(Debug, Clone, Copy)]
pub struct WalPos {
    index: u64,
    len: u64,
    next_lsn: u64,
}

impl Wal {
    /// Open (or create) the log directory, scan every segment, truncate a
    /// torn tail, and position the writer after the last valid frame.
    ///
    /// The caller decides which recovered entries are *committed*; the
    /// WAL itself only vouches for their integrity.  After replaying,
    /// the caller truncates the log with [`reset`](Wal::reset) (the
    /// post-recovery checkpoint), which also drops any uncommitted
    /// entries for good.
    pub fn open(dir: impl Into<PathBuf>, durability: Durability) -> Result<(Wal, WalScan)> {
        Self::open_sized(dir, durability, DEFAULT_SEGMENT_BYTES)
    }

    /// [`open`](Wal::open) with an explicit segment-rotation threshold.
    pub fn open_sized(
        dir: impl Into<PathBuf>,
        durability: Durability,
        segment_bytes: u64,
    ) -> Result<(Wal, WalScan)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut indexes = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                indexes.push(idx);
            }
        }
        indexes.sort_unstable();

        let mut scan = WalScan::default();
        let mut next_lsn = 1u64;
        for (pos, &idx) in indexes.iter().enumerate() {
            let last = pos + 1 == indexes.len();
            let path = segment_path(&dir, idx);
            let bytes = fs::read(&path)?;
            match scan_segment(&bytes, &mut scan.entries) {
                Ok(()) => {}
                Err(valid_up_to) if last => {
                    // torn tail: truncate the file at the last valid frame
                    scan.torn_bytes = bytes.len() as u64 - valid_up_to;
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(valid_up_to)?;
                    f.sync_all()?;
                }
                Err(_) => {
                    return Err(BdbmsError::corrupt(format!(
                        "WAL segment {} is damaged before the final segment; \
                         refusing to silently drop possibly-committed records",
                        path.display()
                    )));
                }
            }
        }
        if let Some(e) = scan.entries.last() {
            next_lsn = e.lsn + 1;
        }

        // append into the last segment (or a fresh first one)
        let active_index = indexes.last().copied().unwrap_or(0);
        let path = segment_path(&dir, active_index);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let active_len = if len == 0 {
            file.write_all(SEG_MAGIC)?;
            file.write_all(&next_lsn.to_le_bytes())?;
            SEG_HEADER
        } else {
            file.seek(SeekFrom::End(0))?;
            len
        };
        let wal = Wal {
            dir,
            durability,
            segment_bytes,
            active_index,
            writer: BufWriter::new(file),
            active_len,
            next_lsn,
            flushed_lsn: next_lsn - 1,
            damaged: false,
            flushed_len: active_len,
            hook: None,
        };
        Ok((wal, scan))
    }

    /// The current append position (see [`WalPos`]).
    pub fn position(&self) -> WalPos {
        WalPos {
            index: self.active_index,
            len: self.active_len,
            next_lsn: self.next_lsn,
        }
    }

    /// Discard everything appended after `pos` — the error path of a
    /// commit whose append/flush failed partway.  Buffered bytes are
    /// dropped without flushing, segments created since `pos` are
    /// deleted, and the active segment is truncated back.  If the
    /// rewind itself fails the log is latched `damaged`: the tail
    /// state is unknown and appending more would risk replaying the
    /// dead transaction, so every later write errors until reopen.
    pub fn rewind(&mut self, pos: WalPos) -> Result<()> {
        let r = (|| -> Result<()> {
            let path = segment_path(&self.dir, pos.index);
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            // swap first and drop the old writer via into_parts: a plain
            // drop would flush its buffered (dead) bytes into the file
            let old = std::mem::replace(&mut self.writer, BufWriter::new(file));
            let _ = old.into_parts();
            for idx in (pos.index + 1)..=self.active_index {
                let _ = fs::remove_file(segment_path(&self.dir, idx));
            }
            self.writer.get_ref().set_len(pos.len)?;
            self.writer.get_mut().seek(SeekFrom::Start(pos.len))?;
            self.active_index = pos.index;
            self.active_len = pos.len;
            self.next_lsn = pos.next_lsn;
            self.flushed_lsn = self.flushed_lsn.min(pos.next_lsn - 1);
            self.flushed_len = self.flushed_len.min(pos.len);
            Ok(())
        })();
        match r {
            // a completed rewind leaves the tail in a known state, even
            // if an earlier failure (e.g. an injected torn flush) had
            // latched it damaged
            Ok(()) => self.damaged = false,
            Err(_) => self.damaged = true,
        }
        r
    }

    /// Route the flush path through `injector` — deterministic
    /// fault-injection tests only; see [`crate::fault`].
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.hook = Some(injector);
    }

    fn check_damage(&self) -> Result<()> {
        if self.damaged {
            Err(BdbmsError::storage(
                "WAL tail is in an unknown state after a failed commit \
                 rewind; reopen the database to recover",
            ))
        } else {
            Ok(())
        }
    }

    /// The durability policy in force.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The next LSN [`append`](Wal::append) would allocate.  Data pages
    /// dirtied *now* are stamped with this: whatever record describes the
    /// change will get an LSN ≥ it.
    pub fn reserved_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Highest LSN made durable so far.
    pub fn flushed_lsn(&self) -> u64 {
        self.flushed_lsn
    }

    /// Number of live segment files (observability for checkpoint tests).
    pub fn segment_count(&self) -> Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") && name.ends_with(".log") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Append one record; returns its LSN.  The bytes are buffered — call
    /// [`flush`](Wal::flush) (commit) to make them durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        self.check_damage()?;
        if self.active_len >= self.segment_bytes + SEG_HEADER {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(payload);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&crc_input).to_le_bytes())?;
        self.writer.write_all(&crc_input)?;
        self.active_len += (FRAME_HEADER + payload.len()) as u64;
        Ok(lsn)
    }

    fn rotate(&mut self) -> Result<()> {
        self.writer.flush()?;
        if self.durability == Durability::Full {
            self.writer.get_ref().sync_all()?;
        }
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(SEG_MAGIC)?;
        file.write_all(&self.next_lsn.to_le_bytes())?;
        self.writer = BufWriter::new(file);
        self.active_len = SEG_HEADER;
        self.flushed_len = SEG_HEADER;
        Ok(())
    }

    /// Push buffered frames to the OS and, under [`Durability::Full`],
    /// fsync them.  This is the commit barrier.
    pub fn flush(&mut self) -> Result<()> {
        self.check_damage()?;
        if let Some(h) = self.hook.clone() {
            match h.next_op() {
                IoDecision::Proceed => {}
                IoDecision::Fail | IoDecision::Flip { .. } => {
                    // Nothing reached the medium; buffered bytes stay
                    // buffered and a failed commit rewinds them away.
                    // (A flush has no payload to flip, so Flip degrades
                    // to a plain failure.)
                    return Err(FaultInjector::injected_error("WAL flush"));
                }
                IoDecision::Tear { bytes } => {
                    // Part of the buffered tail reaches the medium, the
                    // rest vanishes: flush, then chop the un-durable end.
                    // The in-memory tail no longer matches the file, so
                    // the log latches damaged until a rewind (the commit
                    // error path) or a reopen restores a known state.
                    self.writer.flush()?;
                    let keep = self
                        .active_len
                        .saturating_sub(bytes as u64)
                        .max(self.flushed_len);
                    self.writer.get_ref().set_len(keep)?;
                    self.damaged = true;
                    return Err(FaultInjector::injected_error("torn WAL flush"));
                }
            }
        }
        self.writer.flush()?;
        if self.durability == Durability::Full {
            self.writer.get_ref().sync_all()?;
        }
        self.flushed_lsn = self.next_lsn - 1;
        self.flushed_len = self.active_len;
        Ok(())
    }

    /// Drop every segment and start over with an empty log (checkpoint:
    /// the image now carries everything).  LSNs keep counting — they
    /// never restart, so page LSN stamps stay comparable.
    pub fn reset(&mut self) -> Result<()> {
        // flush so the writer's drop order can't resurrect bytes
        self.writer.flush()?;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.starts_with("wal-") && name.ends_with(".log") {
                fs::remove_file(entry.path())?;
            }
        }
        self.active_index += 1;
        let path = segment_path(&self.dir, self.active_index);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(SEG_MAGIC)?;
        file.write_all(&self.next_lsn.to_le_bytes())?;
        if self.durability == Durability::Full {
            file.sync_all()?;
            File::open(&self.dir)?.sync_all()?;
        }
        self.writer = BufWriter::new(file);
        self.active_len = SEG_HEADER;
        self.flushed_len = SEG_HEADER;
        self.flushed_lsn = self.next_lsn - 1;
        // a completed reset is a known-good state from scratch
        self.damaged = false;
        Ok(())
    }
}

/// Scan one segment's bytes, pushing valid entries.  `Err(offset)` means
/// the segment is valid up to `offset` and damaged after it.
///
/// Every slice below is guarded: the frame header is taken with `get`
/// (so a truncated header is a torn tail, not a panic) and the frame end
/// is computed with checked arithmetic (so a garbage length field that
/// would overflow `usize` is damage, not a panic).  The follow-up
/// `unwrap`s convert provably-sized slices and are unreachable for any
/// input — the property-fuzz suite in `tests/prop_wal.rs` holds this to
/// arbitrary byte strings.
fn scan_segment(bytes: &[u8], out: &mut Vec<WalEntry>) -> std::result::Result<(), u64> {
    if bytes.is_empty() {
        return Ok(());
    }
    if bytes.len() < SEG_HEADER as usize || &bytes[..8] != SEG_MAGIC {
        return Err(0);
    }
    let mut pos = SEG_HEADER as usize;
    while pos < bytes.len() {
        let valid_up_to = pos as u64;
        let Some(header) = bytes.get(pos..pos + FRAME_HEADER) else {
            return Err(valid_up_to);
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let Some(end) = pos
            .checked_add(FRAME_HEADER)
            .and_then(|p| p.checked_add(len))
        else {
            return Err(valid_up_to);
        };
        // end ≥ pos + 8 always holds here, so the range is well-formed;
        // `get` rejects an end past the buffer.
        let Some(crc_input) = bytes.get(pos + 8..end) else {
            return Err(valid_up_to);
        };
        if crc32(crc_input) != crc {
            return Err(valid_up_to);
        }
        let lsn = u64::from_le_bytes(crc_input[..8].try_into().unwrap());
        out.push(WalEntry {
            lsn,
            payload: crc_input[8..].to_vec(),
        });
        pos = end;
    }
    Ok(())
}

/// Parse one segment's bytes read-only: the valid entries plus, when the
/// segment is damaged, the byte offset at which damage starts.  Public
/// surface for the fuzz suite and [`verify_wal_dir`].
pub fn scan_segment_bytes(bytes: &[u8]) -> (Vec<WalEntry>, Option<u64>) {
    let mut out = Vec::new();
    match scan_segment(bytes, &mut out) {
        Ok(()) => (out, None),
        Err(off) => (out, Some(off)),
    }
}

/// A read-only integrity report over a WAL directory (the WAL half of
/// the engine's `CHECK` statement).
#[derive(Debug, Default)]
pub struct WalCheck {
    /// Segment files inspected.
    pub segments: usize,
    /// Valid frames found across all segments.
    pub frames: usize,
    /// Human-readable integrity problems (empty = clean).
    pub problems: Vec<String>,
}

/// Walk every segment in `dir` without mutating anything: frame CRCs,
/// segment-index contiguity, header/first-frame agreement, and dense LSN
/// chaining across segments.  Unlike [`Wal::open`], damage is *reported*
/// rather than repaired — a torn tail is a finding here, not a
/// truncation.
pub fn verify_wal_dir(dir: impl AsRef<Path>) -> Result<WalCheck> {
    let dir = dir.as_ref();
    let mut check = WalCheck::default();
    if !dir.is_dir() {
        check
            .problems
            .push(format!("WAL directory `{}` is missing", dir.display()));
        return Ok(check);
    }
    let mut indexes = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            indexes.push(idx);
        }
    }
    indexes.sort_unstable();
    for w in indexes.windows(2) {
        if w[1] != w[0] + 1 {
            check.problems.push(format!(
                "segment gap: wal-{:08} follows wal-{:08}",
                w[1], w[0]
            ));
        }
    }
    let mut expect_lsn: Option<u64> = None;
    for (i, &idx) in indexes.iter().enumerate() {
        check.segments += 1;
        let path = segment_path(dir, idx);
        let bytes = fs::read(&path)?;
        let (entries, damage) = scan_segment_bytes(&bytes);
        if bytes.len() >= SEG_HEADER as usize && &bytes[..8] == SEG_MAGIC {
            let hdr_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            if let Some(first) = entries.first() {
                if first.lsn != hdr_lsn {
                    check.problems.push(format!(
                        "segment {idx}: header claims first LSN {hdr_lsn}, \
                         first frame carries {}",
                        first.lsn
                    ));
                }
            }
        }
        if let Some(off) = damage {
            let last = i + 1 == indexes.len();
            check.problems.push(format!(
                "segment {idx}: damaged at byte {off}{}",
                if last { " (torn tail)" } else { "" }
            ));
        }
        for e in &entries {
            check.frames += 1;
            if let Some(want) = expect_lsn {
                if e.lsn != want {
                    check.problems.push(format!(
                        "LSN chain broken: expected {want}, found {}",
                        e.lsn
                    ));
                }
            }
            expect_lsn = Some(e.lsn + 1);
        }
    }
    Ok(check)
}

/// A clonable, thread-safe handle over a [`Wal`], shared between the
/// engine (appends, commits) and the buffer pool (the
/// [`FlushGate`] ordering hook).
#[derive(Clone)]
pub struct SharedWal(Arc<Mutex<Wal>>);

impl SharedWal {
    /// Wrap a WAL for sharing.
    pub fn new(wal: Wal) -> SharedWal {
        SharedWal(Arc::new(Mutex::new(wal)))
    }

    /// Run `f` with exclusive access to the log.
    pub fn with<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut self.0.lock())
    }
}

impl FlushGate for SharedWal {
    fn flush_to(&self, lsn: u64) -> Result<()> {
        let mut wal = self.0.lock();
        // Records up to `lsn` that exist are flushed; a stamp ahead of
        // the log (dirtied by an op whose record is still buffered in the
        // transaction) flushes everything appended so far — the missing
        // records belong to an uncommitted transaction, which recovery
        // discards regardless of what the data page holds.
        if wal.flushed_lsn() < lsn.min(wal.reserved_lsn() - 1) {
            wal.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdbms-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_flush_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        {
            let (mut wal, scan) = Wal::open(&dir, Durability::Full).unwrap();
            assert!(scan.entries.is_empty());
            assert_eq!(wal.append(b"alpha").unwrap(), 1);
            assert_eq!(wal.append(b"beta").unwrap(), 2);
            wal.flush().unwrap();
            assert_eq!(wal.flushed_lsn(), 2);
        }
        let (wal, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(
            scan.entries,
            vec![
                WalEntry {
                    lsn: 1,
                    payload: b"alpha".to_vec()
                },
                WalEntry {
                    lsn: 2,
                    payload: b"beta".to_vec()
                },
            ]
        );
        assert_eq!(wal.reserved_lsn(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        {
            let (mut wal, _) = Wal::open(&dir, Durability::Full).unwrap();
            wal.append(b"kept").unwrap();
            wal.append(b"torn-away").unwrap();
            wal.flush().unwrap();
        }
        // chop bytes off the tail: the second frame becomes unreadable
        let seg = segment_path(&dir, 0);
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].payload, b"kept");
        assert!(scan.torn_bytes > 0);
        // the truncation is persistent: a second open sees a clean log
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.torn_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_in_final_segment_truncates_from_there() {
        let dir = tmp("bitflip");
        {
            let (mut wal, _) = Wal::open(&dir, Durability::Full).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.flush().unwrap();
        }
        // flip the first payload byte of the second frame
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let off = SEG_HEADER as usize + (FRAME_HEADER + 5) + FRAME_HEADER;
        bytes[off] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1, "bad frame and its tail dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_in_non_final_segment_is_corrupt() {
        let dir = tmp("midrot");
        {
            // tiny segments force rotation
            let (mut wal, _) = Wal::open_sized(&dir, Durability::Full, 32).unwrap();
            for i in 0..8 {
                wal.append(format!("record-{i}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
            assert!(wal.segment_count().unwrap() > 1);
        }
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        let err = match Wal::open(&dir, Durability::Full) {
            Ok(_) => panic!("damaged middle segment must not open"),
            Err(e) => e,
        };
        assert_eq!(err.code(), bdbms_common::ErrorCode::Corrupt);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_preserves_lsn_order_across_segments() {
        let dir = tmp("rotate");
        {
            let (mut wal, _) = Wal::open_sized(&dir, Durability::NoSync, 64).unwrap();
            for i in 0..50u64 {
                assert_eq!(wal.append(&i.to_le_bytes()).unwrap(), i + 1);
            }
            wal.flush().unwrap();
            assert!(wal.segment_count().unwrap() >= 3, "rotated");
        }
        let (_, scan) = Wal::open(&dir, Durability::NoSync).unwrap();
        let lsns: Vec<u64> = scan.entries.iter().map(|e| e.lsn).collect();
        assert_eq!(lsns, (1..=50).collect::<Vec<u64>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_truncates_segments_and_keeps_lsns_monotonic() {
        let dir = tmp("reset");
        let (mut wal, _) = Wal::open_sized(&dir, Durability::Full, 64).unwrap();
        for _ in 0..20 {
            wal.append(b"padding-padding").unwrap();
        }
        wal.flush().unwrap();
        assert!(wal.segment_count().unwrap() > 1);
        let before = wal.reserved_lsn();
        wal.reset().unwrap();
        assert_eq!(wal.segment_count().unwrap(), 1, "old segments deleted");
        assert_eq!(wal.reserved_lsn(), before, "LSNs never restart");
        let lsn = wal.append(b"after-reset").unwrap();
        assert_eq!(lsn, before);
        wal.flush().unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].lsn, before);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression: a commit whose append/flush fails must be rewindable
    /// — without the rewind, a later successful commit would make the
    /// dead frames replayable.
    #[test]
    fn rewind_discards_a_half_written_commit() {
        let dir = tmp("rewind");
        {
            let (mut wal, _) = Wal::open(&dir, Durability::Full).unwrap();
            wal.append(b"committed-1").unwrap();
            wal.flush().unwrap();
            let pos = wal.position();
            // a commit that "fails": two frames appended, then rewound
            wal.append(b"dead-op").unwrap();
            wal.append(b"dead-op-2").unwrap();
            wal.rewind(pos).unwrap();
            // the next commit reuses the LSNs and must be the only
            // thing that follows the first one
            assert_eq!(wal.append(b"committed-2").unwrap(), 2);
            wal.flush().unwrap();
        }
        let (_, scan) = Wal::open(&dir, Durability::Full).unwrap();
        let payloads: Vec<&[u8]> = scan.entries.iter().map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"committed-1".as_slice(), b"committed-2"]);
        assert_eq!(
            scan.entries.iter().map(|e| e.lsn).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Rewind across a segment rotation deletes the segments the dead
    /// commit created.
    #[test]
    fn rewind_across_rotation_deletes_new_segments() {
        let dir = tmp("rewind-rot");
        let (mut wal, _) = Wal::open_sized(&dir, Durability::NoSync, 48).unwrap();
        wal.append(b"keep").unwrap();
        wal.flush().unwrap();
        let pos = wal.position();
        for _ in 0..10 {
            wal.append(b"dead-padding-padding").unwrap();
        }
        assert!(wal.segment_count().unwrap() > 1, "rotated");
        wal.rewind(pos).unwrap();
        assert_eq!(wal.segment_count().unwrap(), 1);
        wal.append(b"after").unwrap();
        wal.flush().unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&dir, Durability::NoSync).unwrap();
        let payloads: Vec<&[u8]> = scan.entries.iter().map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"keep".as_slice(), b"after"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_wal_gate_flushes_up_to_stamp() {
        let dir = tmp("gate");
        let (wal, _) = Wal::open(&dir, Durability::NoSync).unwrap();
        let shared = SharedWal::new(wal);
        shared.with(|w| w.append(b"one").map(|_| ())).unwrap();
        assert_eq!(shared.with(|w| w.flushed_lsn()), 0);
        shared.flush_to(1).unwrap();
        assert_eq!(shared.with(|w| w.flushed_lsn()), 1);
        // a stamp ahead of the log flushes what exists and succeeds
        shared.flush_to(99).unwrap();
        assert_eq!(shared.with(|w| w.flushed_lsn()), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
