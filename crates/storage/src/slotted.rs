//! Slotted page layout for variable-length records.
//!
//! Layout of one [`PAGE_SIZE`] page:
//!
//! ```text
//! +--------------+-----------+------------------->      <-------------+
//! | slot_count   | free_end  | slot array (4 B/slot)  free   records  |
//! | u16 LE       | u16 LE    | [offset u16][len u16]                  |
//! +--------------+-----------+------------------->      <-------------+
//! 0              2           4
//! ```
//!
//! Records are packed from the end of the usable region downward; the
//! slot array grows from the header upward.  A deleted slot has
//! `offset == DEAD` and is reused by later inserts.  [`compact`] squeezes
//! out holes left by deletions so the free region is contiguous again.
//!
//! The last [`PAGE_TRAILER`] bytes of every
//! page are reserved for the buffer pool's CRC-32 checksum and never hold
//! record bytes — the usable region ends at `PAGE_SIZE - PAGE_TRAILER`.

use crate::pager::{PAGE_SIZE, PAGE_TRAILER};

const HEADER: usize = 4;
const SLOT_BYTES: usize = 4;
/// Sentinel offset marking a dead (deleted) slot.
const DEAD: u16 = u16::MAX;
/// One past the last byte records may occupy (the checksum trailer
/// starts here).
const PAGE_END: usize = PAGE_SIZE - PAGE_TRAILER;

/// Largest record payload a single page can hold.
pub const MAX_RECORD: usize = PAGE_END - HEADER - SLOT_BYTES;

fn read_u16(page: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([page[at], page[at + 1]])
}

fn write_u16(page: &mut [u8], at: usize, v: u16) {
    page[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Initialize an empty slotted page.
pub fn init(page: &mut [u8]) {
    debug_assert_eq!(page.len(), PAGE_SIZE);
    write_u16(page, 0, 0);
    write_u16(page, 2, PAGE_END as u16);
}

/// Number of slots (live + dead) on the page.
pub fn slot_count(page: &[u8]) -> u16 {
    read_u16(page, 0)
}

fn free_end(page: &[u8]) -> usize {
    read_u16(page, 2) as usize
}

fn slot(page: &[u8], i: u16) -> (u16, u16) {
    let at = HEADER + i as usize * SLOT_BYTES;
    (read_u16(page, at), read_u16(page, at + 2))
}

fn set_slot(page: &mut [u8], i: u16, offset: u16, len: u16) {
    let at = HEADER + i as usize * SLOT_BYTES;
    write_u16(page, at, offset);
    write_u16(page, at + 2, len);
}

/// Contiguous free bytes between the slot array and the record area.
fn contiguous_free(page: &[u8]) -> usize {
    free_end(page) - (HEADER + slot_count(page) as usize * SLOT_BYTES)
}

/// Bytes reclaimable by [`compact`] (holes left by deleted records).
fn dead_bytes(page: &[u8]) -> usize {
    let n = slot_count(page);
    let live: usize = (0..n)
        .map(|i| slot(page, i))
        .filter(|(off, _)| *off != DEAD)
        .map(|(_, len)| len as usize)
        .sum();
    (PAGE_END - free_end(page)) - live
}

/// Can a record of `len` bytes be inserted (possibly after compaction)?
pub fn can_insert(page: &[u8], len: usize) -> bool {
    if len > MAX_RECORD {
        return false;
    }
    let has_dead_slot = (0..slot_count(page)).any(|i| slot(page, i).0 == DEAD);
    let slot_cost = if has_dead_slot { 0 } else { SLOT_BYTES };
    contiguous_free(page) + dead_bytes(page) >= len + slot_cost
}

/// Insert a record, compacting first if needed.  Returns the slot number,
/// or `None` if the record cannot fit on this page.
pub fn insert(page: &mut [u8], rec: &[u8]) -> Option<u16> {
    if !can_insert(page, rec.len()) {
        return None;
    }
    let has_dead_slot = (0..slot_count(page)).any(|i| slot(page, i).0 == DEAD);
    let slot_cost = if has_dead_slot { 0 } else { SLOT_BYTES };
    if contiguous_free(page) < rec.len() + slot_cost {
        compact(page);
    }
    let n = slot_count(page);
    let slot_no = (0..n).find(|&i| slot(page, i).0 == DEAD).unwrap_or(n);
    if slot_no == n {
        write_u16(page, 0, n + 1);
    }
    let new_end = free_end(page) - rec.len();
    page[new_end..new_end + rec.len()].copy_from_slice(rec);
    write_u16(page, 2, new_end as u16);
    set_slot(page, slot_no, new_end as u16, rec.len() as u16);
    Some(slot_no)
}

/// Read the record in `slot_no`, if live.
pub fn get(page: &[u8], slot_no: u16) -> Option<&[u8]> {
    if slot_no >= slot_count(page) {
        return None;
    }
    let (off, len) = slot(page, slot_no);
    if off == DEAD {
        return None;
    }
    Some(&page[off as usize..off as usize + len as usize])
}

/// Delete the record in `slot_no`. Returns whether a live record was removed.
pub fn delete(page: &mut [u8], slot_no: u16) -> bool {
    if slot_no >= slot_count(page) || slot(page, slot_no).0 == DEAD {
        return false;
    }
    set_slot(page, slot_no, DEAD, 0);
    true
}

/// Replace the record in `slot_no` with `rec`, keeping the slot number.
/// Returns `false` (leaving the page unchanged) if `rec` cannot fit.
pub fn update(page: &mut [u8], slot_no: u16, rec: &[u8]) -> bool {
    if slot_no >= slot_count(page) {
        return false;
    }
    let (off, len) = slot(page, slot_no);
    if off == DEAD {
        return false;
    }
    if rec.len() <= len as usize {
        // Shrinking in place: rewrite at the same offset, leak the tail
        // (reclaimed by the next compaction).
        let off = off as usize;
        page[off..off + rec.len()].copy_from_slice(rec);
        set_slot(page, slot_no, off as u16, rec.len() as u16);
        return true;
    }
    // Need a larger home: logically delete, then re-insert into this slot.
    set_slot(page, slot_no, DEAD, 0);
    if !can_insert(page, rec.len()) {
        // Roll back the tombstone; caller will relocate to another page.
        set_slot(page, slot_no, off, len);
        return false;
    }
    if contiguous_free(page) < rec.len() {
        compact(page);
    }
    let new_end = free_end(page) - rec.len();
    page[new_end..new_end + rec.len()].copy_from_slice(rec);
    write_u16(page, 2, new_end as u16);
    set_slot(page, slot_no, new_end as u16, rec.len() as u16);
    true
}

/// Rewrite live records contiguously at the end of the page, making all
/// dead bytes reusable.
pub fn compact(page: &mut [u8]) {
    let n = slot_count(page);
    let mut live: Vec<(u16, Vec<u8>)> = (0..n)
        .filter_map(|i| get(page, i).map(|d| (i, d.to_vec())))
        .collect();
    // Pack from the end of the usable region downward.
    let mut end = PAGE_END;
    // Write larger offsets first to keep record order stable-ish; order
    // doesn't matter for correctness.
    for (slot_no, data) in live.drain(..) {
        end -= data.len();
        page[end..end + data.len()].copy_from_slice(&data);
        set_slot(page, slot_no, end as u16, data.len() as u16);
    }
    write_u16(page, 2, end as u16);
}

/// Iterate live `(slot, record)` pairs.
pub fn live_records(page: &[u8]) -> impl Iterator<Item = (u16, &[u8])> + '_ {
    (0..slot_count(page)).filter_map(move |i| get(page, i).map(|d| (i, d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        init(&mut p);
        p
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = fresh();
        let s1 = insert(&mut p, b"hello").unwrap();
        let s2 = insert(&mut p, b"world!").unwrap();
        assert_ne!(s1, s2);
        assert_eq!(get(&p, s1).unwrap(), b"hello");
        assert_eq!(get(&p, s2).unwrap(), b"world!");
        assert_eq!(get(&p, 99), None);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = fresh();
        let s1 = insert(&mut p, b"aaaa").unwrap();
        let _s2 = insert(&mut p, b"bbbb").unwrap();
        assert!(delete(&mut p, s1));
        assert!(!delete(&mut p, s1), "double delete is a no-op");
        assert_eq!(get(&p, s1), None);
        let s3 = insert(&mut p, b"cccc").unwrap();
        assert_eq!(s3, s1, "dead slot is reused");
        assert_eq!(slot_count(&p), 2);
    }

    #[test]
    fn fill_page_then_reject() {
        let mut p = fresh();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while insert(&mut p, &rec).is_some() {
            n += 1;
        }
        assert!(n >= 8, "should fit at least 8 1000-byte records, fit {n}");
        assert!(!can_insert(&p, 1000));
        // but a tiny record still fits in the tail
        assert!(can_insert(&p, 8) || contiguous_free(&p) < 12);
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut p = fresh();
        let rec = vec![7u8; 1500];
        let slots: Vec<u16> = (0..5).map(|_| insert(&mut p, &rec).unwrap()).collect();
        // Delete alternating records to fragment the page.
        delete(&mut p, slots[0]);
        delete(&mut p, slots[2]);
        delete(&mut p, slots[4]);
        // A 4000-byte record doesn't fit contiguously but does after compact.
        let big = vec![9u8; 4000];
        let s = insert(&mut p, &big).expect("insert after implicit compact");
        assert_eq!(get(&p, s).unwrap(), &big[..]);
        // survivors intact
        assert_eq!(get(&p, slots[1]).unwrap(), &rec[..]);
        assert_eq!(get(&p, slots[3]).unwrap(), &rec[..]);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = fresh();
        let s = insert(&mut p, b"small").unwrap();
        assert!(update(&mut p, s, b"tiny"));
        assert_eq!(get(&p, s).unwrap(), b"tiny");
        assert!(update(&mut p, s, b"much larger record payload"));
        assert_eq!(get(&p, s).unwrap(), b"much larger record payload");
    }

    #[test]
    fn update_too_big_rolls_back() {
        let mut p = fresh();
        let s = insert(&mut p, b"keepme").unwrap();
        let huge = vec![1u8; PAGE_SIZE];
        assert!(!update(&mut p, s, &huge));
        assert_eq!(
            get(&p, s).unwrap(),
            b"keepme",
            "failed update must not corrupt"
        );
    }

    #[test]
    fn live_records_iterates_only_live() {
        let mut p = fresh();
        let a = insert(&mut p, b"a").unwrap();
        let b = insert(&mut p, b"b").unwrap();
        let c = insert(&mut p, b"c").unwrap();
        delete(&mut p, b);
        let live: Vec<u16> = live_records(&p).map(|(s, _)| s).collect();
        assert_eq!(live, vec![a, c]);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = fresh();
        let rec = vec![3u8; MAX_RECORD];
        let s = insert(&mut p, &rec).unwrap();
        assert_eq!(get(&p, s).unwrap().len(), MAX_RECORD);
        assert!(insert(&mut p, b"x").is_none());
    }
}
