//! Property fuzz of the WAL frame scanner.
//!
//! [`scan_segment_bytes`] is the one routine that parses bytes straight
//! off the medium during recovery, so its contract is absolute: for
//! *any* input it returns — never panics, never over-reads — and
//! whatever entries it does return were covered by a valid CRC.  The
//! suite drives it with arbitrary garbage, magic-prefixed garbage,
//! hand-built valid segments, truncations, and single-bit flips (which
//! CRC-32 is guaranteed to detect within a frame).

use bdbms_storage::{crc32, scan_segment_bytes};
use proptest::prelude::*;

const SEG_MAGIC: &[u8; 8] = b"BDBMSWAL";
const SEG_HEADER: usize = 16;
const FRAME_HEADER: usize = 16;

/// Build a well-formed segment: magic + first-lsn header, then one
/// frame per payload with dense LSNs.  Returns the bytes and each
/// frame's `(start, end)` span.
fn build_segment(first_lsn: u64, payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<(usize, usize)>) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(SEG_MAGIC);
    bytes.extend_from_slice(&first_lsn.to_le_bytes());
    let mut spans = Vec::new();
    for (i, p) in payloads.iter().enumerate() {
        let start = bytes.len();
        let lsn = first_lsn + i as u64;
        let mut crc_input = Vec::with_capacity(8 + p.len());
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(p);
        bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        bytes.extend_from_slice(&crc_input);
        spans.push((start, bytes.len()));
    }
    (bytes, spans)
}

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total garbage: the scanner must return (not panic), report a
    /// sane damage offset, and only yield entries whose bytes fit in
    /// the input.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let (entries, damage) = scan_segment_bytes(&bytes);
        if let Some(off) = damage {
            prop_assert!(off as usize <= bytes.len());
        }
        let consumed: usize = entries
            .iter()
            .map(|e| FRAME_HEADER + e.payload.len())
            .sum();
        prop_assert!(consumed <= bytes.len().saturating_sub(
            if bytes.is_empty() { 0 } else { SEG_HEADER }));
    }

    /// Garbage behind a real magic + header: the scanner gets past the
    /// header and must still survive whatever follows.
    #[test]
    fn magic_prefixed_garbage_never_panics(
        first_lsn in any::<u64>(),
        tail in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEG_MAGIC);
        bytes.extend_from_slice(&first_lsn.to_le_bytes());
        bytes.extend_from_slice(&tail);
        let (entries, damage) = scan_segment_bytes(&bytes);
        // a damage offset always lands inside the frame area
        if let Some(off) = damage {
            prop_assert!((off as usize) <= bytes.len());
        }
        for w in entries.windows(2) {
            prop_assert_eq!(w[1].lsn, w[0].lsn + 1, "LSNs stay dense");
        }
    }

    /// Round trip: a hand-built valid segment scans back exactly, with
    /// dense LSNs and no damage.
    #[test]
    fn valid_segment_roundtrips(first_lsn in 1u64..1 << 48, payloads in arb_payloads()) {
        let (bytes, _) = build_segment(first_lsn, &payloads);
        let (entries, damage) = scan_segment_bytes(&bytes);
        prop_assert_eq!(damage, None);
        prop_assert_eq!(entries.len(), payloads.len());
        for (i, e) in entries.iter().enumerate() {
            prop_assert_eq!(e.lsn, first_lsn + i as u64);
            prop_assert_eq!(&e.payload, &payloads[i]);
        }
    }

    /// Truncation at any byte: the scanner yields a clean prefix of the
    /// full entry list — exactly what crash recovery relies on for torn
    /// tails.
    #[test]
    fn truncation_yields_a_prefix(
        first_lsn in 1u64..1 << 48,
        payloads in arb_payloads(),
        cut_seed in any::<u64>(),
    ) {
        let (bytes, _) = build_segment(first_lsn, &payloads);
        let (full, _) = scan_segment_bytes(&bytes);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let (entries, damage) = scan_segment_bytes(&bytes[..cut]);
        prop_assert!(entries.len() <= full.len());
        prop_assert_eq!(&entries[..], &full[..entries.len()], "prefix property");
        if cut < bytes.len() && damage.is_none() {
            // a clean scan of a shorter input only happens on an exact
            // frame boundary (or an empty file)
            prop_assert!(
                cut == 0
                    || entries
                        .iter()
                        .map(|e| FRAME_HEADER + e.payload.len())
                        .sum::<usize>()
                        + SEG_HEADER
                        == cut
            );
        }
    }

    /// Single-bit flips: frames before the flipped frame survive intact,
    /// and a flip inside a frame's CRC-covered region (stored CRC or
    /// crc-input) is *guaranteed* caught — CRC-32 detects all single-bit
    /// errors.
    #[test]
    fn bit_flips_are_detected(
        first_lsn in 1u64..1 << 48,
        payloads in arb_payloads(),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let (mut bytes, spans) = build_segment(first_lsn, &payloads);
        let (full, _) = scan_segment_bytes(&bytes);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let (entries, damage) = scan_segment_bytes(&bytes);

        if pos < 8 {
            // magic destroyed: nothing recoverable
            prop_assert!(entries.is_empty());
            prop_assert_eq!(damage, Some(0));
        } else if pos < SEG_HEADER {
            // the header's first-lsn field is not frame data
            prop_assert_eq!(entries, full);
            prop_assert_eq!(damage, None);
        } else {
            let hit = spans.iter().position(|&(s, e)| pos >= s && pos < e).unwrap();
            // everything before the flipped frame scans identically
            prop_assert!(entries.len() >= hit || entries.len() == full.len());
            prop_assert_eq!(&entries[..hit], &full[..hit]);
            let (start, _) = spans[hit];
            if pos >= start + 4 {
                // flip in the stored CRC or the CRC-covered bytes:
                // detection is certain, the scan stops at this frame
                prop_assert_eq!(entries.len(), hit);
                prop_assert_eq!(damage, Some(start as u64));
            }
        }
    }
}
