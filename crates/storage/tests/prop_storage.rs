//! Property tests: the heap file behaves like a `HashMap<Rid, Vec<u8>>`
//! under arbitrary interleavings of insert / update / delete, including
//! records large enough to overflow pages.

use std::collections::HashMap;
use std::sync::Arc;

use bdbms_storage::{BufferPool, HeapFile, MemStore, Rid};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn arb_record() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // small records
        prop::collection::vec(any::<u8>(), 0..64),
        // page-straddling records
        prop::collection::vec(any::<u8>(), 8000..9000),
        // multi-page overflow records
        Just(vec![0xAAu8; 20_000]),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_record().prop_map(Op::Insert),
        (any::<usize>(), arb_record()).prop_map(|(i, r)| Op::Update(i, r)),
        any::<usize>().prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn heap_file_matches_model(ops in prop::collection::vec(arb_op(), 1..60), cap in 2usize..32) {
        let pool = Arc::new(BufferPool::new(Box::new(MemStore::new()), cap));
        let mut heap = HeapFile::create(pool).unwrap();
        let mut model: HashMap<Rid, Vec<u8>> = HashMap::new();
        let mut live: Vec<Rid> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(rec) => {
                    let rid = heap.insert(&rec).unwrap();
                    prop_assert!(!model.contains_key(&rid), "rid reuse while live");
                    model.insert(rid, rec);
                    live.push(rid);
                }
                Op::Update(i, rec) => {
                    if live.is_empty() { continue; }
                    let rid = live[i % live.len()];
                    let new_rid = heap.update(rid, &rec).unwrap();
                    model.remove(&rid);
                    live.retain(|&r| r != rid);
                    model.insert(new_rid, rec);
                    live.push(new_rid);
                }
                Op::Delete(i) => {
                    if live.is_empty() { continue; }
                    let rid = live[i % live.len()];
                    prop_assert!(heap.delete(rid).unwrap());
                    model.remove(&rid);
                    live.retain(|&r| r != rid);
                }
            }
        }

        // Point lookups agree with the model.
        for (rid, rec) in &model {
            prop_assert_eq!(&heap.get(*rid).unwrap(), rec);
        }
        // Scan sees exactly the live records.
        let mut scanned: Vec<(Rid, Vec<u8>)> = heap.scan().unwrap();
        scanned.sort_by_key(|(r, _)| *r);
        let mut expect: Vec<(Rid, Vec<u8>)> =
            model.iter().map(|(r, d)| (*r, d.clone())).collect();
        expect.sort_by_key(|(r, _)| *r);
        prop_assert_eq!(scanned, expect);
    }
}
