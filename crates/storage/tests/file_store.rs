//! `FileStore` behaviour as seen from outside the crate: reopen
//! round-trips, damaged files surfacing structured errors (never a
//! panic), and out-of-bounds access.  Until the durability work the
//! file-backed store was dead code outside `bdbms-storage`; these tests
//! pin the contract the engine's checkpoint/recovery path now relies on.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use bdbms_common::ErrorCode;
use bdbms_storage::{BufferPool, FileStore, HeapFile, PageId, PageStore, PAGE_SIZE};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bdbms-fstest-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

#[test]
fn reopen_round_trips_every_page() {
    let path = tmp("roundtrip.db");
    let n = 5u64;
    {
        let mut fs_ = FileStore::create(&path).unwrap();
        for i in 0..n {
            let id = fs_.allocate().unwrap();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = i as u8;
            page[PAGE_SIZE - 1] = 0xA0 | i as u8;
            fs_.write_page(id, &page).unwrap();
        }
        fs_.sync().unwrap();
    }
    let mut fs_ = FileStore::open(&path).unwrap();
    assert_eq!(fs_.num_pages(), n);
    let mut buf = [0u8; PAGE_SIZE];
    for i in 0..n {
        fs_.read_page(PageId(i), &mut buf).unwrap();
        assert_eq!(buf[0], i as u8);
        assert_eq!(buf[PAGE_SIZE - 1], 0xA0 | i as u8);
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn truncated_file_is_a_structured_corrupt_error() {
    let path = tmp("truncated.db");
    {
        let mut fs_ = FileStore::create(&path).unwrap();
        let id = fs_.allocate().unwrap();
        fs_.write_page(id, &[7u8; PAGE_SIZE]).unwrap();
    }
    // chop the file mid-page: a torn write / partial copy
    let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(PAGE_SIZE as u64 - 100).unwrap();
    drop(f);
    let err = match FileStore::open(&path) {
        Ok(_) => panic!("a torn page file must not open"),
        Err(e) => e,
    };
    assert_eq!(err.code(), ErrorCode::Corrupt, "got: {err}");
    let _ = fs::remove_file(&path);
}

#[test]
fn short_garbage_file_is_a_structured_error_not_a_panic() {
    let path = tmp("garbage.db");
    fs::write(&path, b"this is not a page file").unwrap();
    let err = match FileStore::open(&path) {
        Ok(_) => panic!("garbage must not open"),
        Err(e) => e,
    };
    assert_eq!(err.code(), ErrorCode::Corrupt);
    let _ = fs::remove_file(&path);
}

#[test]
fn read_and_write_past_eof_error() {
    let path = tmp("eof.db");
    let mut fs_ = FileStore::create(&path).unwrap();
    let id = fs_.allocate().unwrap();
    let mut buf = [0u8; PAGE_SIZE];
    fs_.read_page(id, &mut buf).unwrap();
    let err = fs_.read_page(PageId(1), &mut buf).unwrap_err();
    assert_eq!(err.code(), ErrorCode::Storage);
    let err = fs_.write_page(PageId(99), &buf).unwrap_err();
    assert_eq!(err.code(), ErrorCode::Storage);
    let _ = fs::remove_file(&path);
}

#[test]
fn heap_file_survives_reopen_through_a_file_backed_pool() {
    let path = tmp("heap.db");
    let records: Vec<Vec<u8>> = (0..100u32)
        .map(|i| format!("record-{i:04}").into_bytes())
        .chain(std::iter::once(vec![0xEE; 30_000])) // overflow chain
        .collect();
    let (pages, rids) = {
        let pool = Arc::new(BufferPool::new(
            Box::new(FileStore::create(&path).unwrap()),
            8, // tiny pool: most traffic round-trips through the file
        ));
        let mut heap = HeapFile::create(pool.clone()).unwrap();
        let rids: Vec<_> = records.iter().map(|r| heap.insert(r).unwrap()).collect();
        pool.flush_all().unwrap();
        pool.sync_store().unwrap();
        (heap.pages().to_vec(), rids)
    };
    // a brand-new process image: fresh store, fresh pool, reattached heap
    let pool = Arc::new(BufferPool::new(
        Box::new(FileStore::open(&path).unwrap()),
        8,
    ));
    let heap = HeapFile::attach(pool, pages);
    for (rid, want) in rids.iter().zip(&records) {
        assert_eq!(&heap.get(*rid).unwrap(), want);
    }
    assert_eq!(heap.scan().unwrap().len(), records.len());
    let _ = fs::remove_file(&path);
}
